"""Fault injector unit tests on the small fast machine."""

import pytest

from repro.core.satin import install_satin
from repro.errors import FaultInjectionError
from repro.faults.injector import FaultInjector, OUTCOMES
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.kernel.os import boot_rich_os

from tests.conftest import small_config


def _plan(*specs, duration=10.0):
    return FaultPlan(name="test", specs=tuple(specs), duration=duration)


def _hardened_stack(seed=1234, **satin_kwargs):
    machine = build_machine(small_config(seed, **satin_kwargs))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    satin.harden()
    return machine, satin


def test_schedule_is_deterministic():
    plan = _plan(FaultSpec("timer_drop", 0.5), FaultSpec("bitflip", 0.3))
    schedules = []
    for _ in range(2):
        machine, satin = _hardened_stack()
        injector = FaultInjector(machine, satin, plan, fault_seed=7).install()
        schedules.append(
            [(i.fault_class, i.time, i.core_index, dict(i.details))
             for i in injector.injections]
        )
    assert schedules[0] == schedules[1]
    assert schedules[0]  # the plan actually scheduled something


def test_different_fault_seed_different_schedule():
    plan = _plan(FaultSpec("timer_drop", 0.5))
    machine_a, satin_a = _hardened_stack()
    machine_b, satin_b = _hardened_stack()
    a = FaultInjector(machine_a, satin_a, plan, fault_seed=1).install()
    b = FaultInjector(machine_b, satin_b, plan, fault_seed=2).install()
    assert [i.time for i in a.injections] != [i.time for i in b.injections]


def test_double_install_raises():
    plan = _plan(FaultSpec("timer_drop", 0.5))
    machine, satin = _hardened_stack()
    injector = FaultInjector(machine, satin, plan, fault_seed=7).install()
    with pytest.raises(FaultInjectionError, match="already installed"):
        injector.install()
    with pytest.raises(FaultInjectionError, match="already has a fault injector"):
        FaultInjector(machine, satin, plan, fault_seed=8).install()


def test_bad_horizon_raises():
    plan = _plan(FaultSpec("timer_drop", 0.5))
    machine, satin = _hardened_stack()
    with pytest.raises(FaultInjectionError, match="horizon"):
        FaultInjector(machine, satin, plan, fault_seed=7, horizon=0.0)


def test_timer_drops_are_recovered_by_watchdog():
    plan = _plan(FaultSpec("timer_drop", 0.8), duration=8.0)
    machine, satin = _hardened_stack()
    injector = FaultInjector(machine, satin, plan, fault_seed=3).install()
    machine.run(until=plan.duration)
    injector.deactivate()
    machine.run(until=plan.duration + 2.0)
    assert injector.timer_drops > 0
    assert satin.watchdog.missed_wakes > 0
    result = injector.classify()
    assert result["classes"]["timer_drop"]["missed"] == 0
    # The engine kept scanning through the drops.
    assert satin.round_count > 0


def test_bitflips_revert_and_leave_kernel_clean():
    plan = _plan(
        FaultSpec("bitflip", 0.6, (("revert_after", 1.0),)), duration=6.0
    )
    machine, satin = _hardened_stack()
    image = satin.rich_os.image
    before = bytes(image.read(0, image.size, World.SECURE))
    injector = FaultInjector(machine, satin, plan, fault_seed=5).install()
    machine.run(until=plan.duration + 2.0)
    assert injector.bitflips > 0
    assert injector.bitflip_reverts == injector.bitflips
    after = bytes(image.read(0, image.size, World.SECURE))
    assert after == before


def test_wakeup_corruption_is_validated_or_refreshed():
    plan = _plan(
        FaultSpec("wakeup_corrupt", 0.8, (("stale_fraction", 0.5),)),
        duration=8.0,
    )
    machine, satin = _hardened_stack()
    injector = FaultInjector(machine, satin, plan, fault_seed=11).install()
    machine.run(until=plan.duration)
    injector.deactivate()
    machine.run(until=plan.duration + 2.0)
    assert injector.wakeup_corruptions > 0
    result = injector.classify()
    row = result["classes"]["wakeup_corrupt"]
    assert row["missed"] == 0
    assert row["detected"] + row["degraded"] == row["injected"]


def test_deactivate_voids_pending_decisions():
    plan = _plan(FaultSpec("smc_spike", 5.0), duration=4.0)
    machine, satin = _hardened_stack()
    injector = FaultInjector(machine, satin, plan, fault_seed=13).install()
    machine.run(until=plan.duration)
    injector.deactivate()
    pending_notes = [
        i.note for i in injector.injections
        if not i.consumed and i.note
    ]
    # Every unconsumed-but-armed spike got an explanatory note.
    armed = [i for i in injector.injections
             if not i.consumed and i.time <= machine.sim.now]
    assert len(pending_notes) >= len(armed) - len(
        [i for i in armed if i.note == "injector inactive at arrival"]
    )


def test_classify_accounts_for_every_injection():
    plan = _plan(
        FaultSpec("timer_drop", 0.4),
        FaultSpec("timer_late", 0.4, (("min_delay", 0.05), ("max_delay", 0.5))),
        FaultSpec("smc_spike", 1.0),
        FaultSpec("core_stall", 0.2, (("min_window", 0.2), ("max_window", 1.0))),
        duration=8.0,
    )
    machine, satin = _hardened_stack()
    injector = FaultInjector(machine, satin, plan, fault_seed=17).install()
    machine.run(until=plan.duration)
    injector.deactivate()
    machine.run(until=plan.duration + 2.0)
    result = injector.classify()
    assert result["totals"]["injected"] == len(injector.injections)
    assert result["totals"]["injected"] == sum(
        result["totals"][key] for key in OUTCOMES
    )
    for injection in result["injections"]:
        assert injection["outcome"] in OUTCOMES


def test_injected_metrics_are_registered():
    plan = _plan(FaultSpec("timer_drop", 0.5), duration=6.0)
    machine, satin = _hardened_stack()
    FaultInjector(machine, satin, plan, fault_seed=19).install()
    machine.run(until=plan.duration)
    snapshot = machine.metrics.snapshot()
    assert "faults.injected" in snapshot["counters"]
    assert "faults.injected.timer_drop" in snapshot["counters"]
