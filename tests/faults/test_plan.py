"""Fault plan registry and validation tests."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FAULT_CLASSES,
    FaultPlan,
    FaultSpec,
    SMOKE_PLAN,
    plan_by_name,
    plan_names,
)


def test_builtin_plans_registered():
    names = plan_names()
    for expected in ("smoke", "timers", "memory", "queue", "full"):
        assert expected in names
    assert names == tuple(sorted(names))


def test_unknown_plan_raises():
    with pytest.raises(FaultPlanError, match="unknown fault plan"):
        plan_by_name("does-not-exist")


def test_unknown_fault_class_raises():
    with pytest.raises(FaultPlanError, match="unknown fault class"):
        FaultSpec("cosmic_ray", 0.1)


def test_nonpositive_rate_raises():
    with pytest.raises(FaultPlanError, match="positive rate"):
        FaultSpec("timer_drop", 0.0)
    with pytest.raises(FaultPlanError, match="positive rate"):
        FaultSpec("timer_drop", -1.0)


def test_spec_params_sorted_and_defaulted():
    spec = FaultSpec("timer_late", 1.0, (("max_delay", 2.0), ("min_delay", 0.1)))
    assert spec.params == (("max_delay", 2.0), ("min_delay", 0.1))
    assert spec.param("min_delay", 99.0) == 0.1
    assert spec.param("not_there", 42.0) == 42.0


def test_plan_validation():
    drop = FaultSpec("timer_drop", 0.1)
    with pytest.raises(FaultPlanError, match="no specs"):
        FaultPlan(name="empty", specs=(), duration=10.0)
    with pytest.raises(FaultPlanError, match="positive duration"):
        FaultPlan(name="flat", specs=(drop,), duration=0.0)
    with pytest.raises(FaultPlanError, match="twice"):
        FaultPlan(name="dup", specs=(drop, FaultSpec("timer_drop", 0.2)),
                  duration=10.0)


def test_plan_digest_is_stable_and_sensitive():
    drop = FaultSpec("timer_drop", 0.1)
    a = FaultPlan(name="p", specs=(drop,), duration=10.0)
    b = FaultPlan(name="p", specs=(FaultSpec("timer_drop", 0.1),), duration=10.0)
    c = FaultPlan(name="p", specs=(FaultSpec("timer_drop", 0.2),), duration=10.0)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert a.digest() != FaultPlan(name="p", specs=(drop,), duration=11.0).digest()


def test_smoke_plan_covers_every_class_with_meaningful_rates():
    assert SMOKE_PLAN.fault_classes == FAULT_CLASSES
    for spec in SMOKE_PLAN.specs:
        assert spec.rate * SMOKE_PLAN.duration >= 2.0, spec.fault_class


def test_needs_snapshot():
    assert SMOKE_PLAN.needs_snapshot
    assert not plan_by_name("timers").needs_snapshot


def test_spec_for_and_describe():
    spec = SMOKE_PLAN.spec_for("bitflip")
    assert spec.fault_class == "bitflip"
    with pytest.raises(FaultPlanError, match="no 'timer_drop'"):
        plan_by_name("memory").spec_for("timer_drop")
    text = SMOKE_PLAN.describe()
    for cls in FAULT_CLASSES:
        assert cls in text
