"""Chaos sweep tests: determinism goldens and supervisor plumbing.

The golden determinism contract (ISSUE 5): the same
``(config_digest, fault_seed)`` pair must produce the identical
``(time, seq)`` event checksum and alarm stream on every run and at every
``--jobs`` level.
"""

import json

import pytest

from repro.errors import CampaignError, FaultInjectionError, FaultPlanError
from repro.faults.chaos import ChaosSpec, run_chaos, run_chaos_trial

#: Short injection horizon: enough simulated time for several faults of
#: every class without slowing the suite down.
_FAST_DURATION = 20.0


def _task(seed=0, fault_seed=0, scenario="baseline", plan="smoke",
          duration=_FAST_DURATION):
    return {
        "key": f"test-{scenario}-{seed}-{fault_seed}",
        "scenario": scenario,
        "seed": seed,
        "fault_seed": fault_seed,
        "plan": plan,
        "preset": "juno_r1",
        "duration": duration,
    }


def test_trial_is_bit_deterministic():
    first = run_chaos_trial(_task())
    second = run_chaos_trial(_task())
    assert first["event_checksum"] == second["event_checksum"]
    assert first["alarm_checksum"] == second["alarm_checksum"]
    assert first["survival"] == second["survival"]
    assert first["injections"] == second["injections"]


def test_fault_seed_changes_timeline():
    base = run_chaos_trial(_task(fault_seed=0))
    other = run_chaos_trial(_task(fault_seed=1))
    assert base["event_checksum"] != other["event_checksum"]


def test_trial_requires_a_satin_scenario():
    with pytest.raises(FaultInjectionError, match="without SATIN"):
        run_chaos_trial(_task(scenario="idle"))


def test_spec_validation():
    with pytest.raises(CampaignError, match="at least one seed"):
        ChaosSpec(scenario="baseline", seeds=[])
    with pytest.raises(CampaignError, match="unique"):
        ChaosSpec(scenario="baseline", seeds=[1, 1])
    with pytest.raises(FaultPlanError, match="unknown fault plan"):
        ChaosSpec(scenario="baseline", seeds=[1], plan_name="nope")
    with pytest.raises(FaultInjectionError, match="without SATIN"):
        ChaosSpec(scenario="idle", seeds=[1])


def test_spec_surface():
    spec = ChaosSpec(scenario="figure4", seeds=[0, 1], duration=15.0)
    assert spec.experiment_id == "CHAOS-FIGURE4"
    assert spec.presets == (spec.preset,)
    assert spec.effective_duration() == 15.0
    assert spec.campaign_id().startswith("CHAOS-FIGURE4-")
    assert spec.fault_seed_for(3) == 3
    keys = [t["key"] for t in spec.trial_tasks()]
    assert len(set(keys)) == len(keys) == 2
    # Same spec => same content addresses (cache stability).
    again = ChaosSpec(scenario="figure4", seeds=[0, 1], duration=15.0)
    assert [t["key"] for t in again.trial_tasks()] == keys


def test_jobs_level_does_not_change_results(tmp_path):
    results = []
    for jobs in (0, 2):
        spec = ChaosSpec(
            scenario="figure4",
            seeds=[0, 1],
            duration=_FAST_DURATION,
            jobs=jobs,
            cache_dir=str(tmp_path / f"cache-jobs{jobs}"),
        )
        results.append(run_chaos(spec, progress=False))
    serial, parallel = results
    assert serial.survival == parallel.survival
    assert serial.totals == parallel.totals
    checksums = [
        [r["payload"]["event_checksum"] for r in result.records]
        for result in results
    ]
    assert checksums[0] == checksums[1]


def test_manifest_carries_survival_section(tmp_path):
    spec = ChaosSpec(
        scenario="baseline",
        seeds=[0],
        duration=_FAST_DURATION,
        jobs=0,
        cache_dir=str(tmp_path),
    )
    result = run_chaos(spec, progress=False)
    assert result.manifest_path is not None
    with open(result.manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    survival = manifest["survival"]
    assert survival["plan"] == "smoke"
    assert survival["classes"] == result.survival
    assert survival["totals"] == result.totals
    assert survival["event_checksums"] == {
        "0": result.records[0]["payload"]["event_checksum"]
    }
    # The rollup renderer shows the matrix.
    from repro.obs.manifest import render_manifest

    rendered = render_manifest(manifest)
    assert "survival (plan 'smoke'" in rendered


def test_resume_serves_cached_chaos_trials(tmp_path):
    spec_kwargs = dict(
        scenario="baseline",
        seeds=[0],
        duration=_FAST_DURATION,
        jobs=0,
        cache_dir=str(tmp_path),
    )
    cold = run_chaos(ChaosSpec(**spec_kwargs), progress=False)
    warm = run_chaos(ChaosSpec(resume=True, **spec_kwargs), progress=False)
    assert cold.ran == 1 and cold.cached == 0
    assert warm.ran == 0 and warm.cached == 1
    assert warm.survival == cold.survival
