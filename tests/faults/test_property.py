"""Property test: no injected fault ever vanishes without a trace.

For any fault seed and any mix of fault classes, a hardened run either
fails with a typed :class:`~repro.errors.ReproError` (never a bare
exception) or accounts for every single injection: each one classified
into the survival matrix, counted in the ``faults.*`` metrics, and — when
classified as detected — backed by an observable response (alarm,
watchdog record, or validation event).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.satin import install_satin
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, OUTCOMES
from repro.faults.plan import FAULT_CLASSES, FaultPlan, FaultSpec
from repro.hw.platform import build_machine
from repro.kernel.os import boot_rich_os

from tests.conftest import small_config

#: Aggressive per-class rates so short horizons still inject faults.
_RATES = {
    "timer_drop": 0.6,
    "timer_late": 0.6,
    "smc_spike": 1.5,
    "bitflip": 0.5,
    "wakeup_corrupt": 0.6,
    "core_stall": 0.3,
    "snapshot_corrupt": 0.6,
}

_PARAMS = {
    "timer_late": (("min_delay", 0.05), ("max_delay", 0.5)),
    "bitflip": (("revert_after", 1.5),),
    "core_stall": (("min_window", 0.2), ("max_window", 1.0)),
}

_DURATION = 6.0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**32 - 1),
    classes=st.sets(
        st.sampled_from(FAULT_CLASSES), min_size=1, max_size=3
    ),
)
def test_every_injected_fault_is_accounted_for(fault_seed, classes):
    plan = FaultPlan(
        name="prop",
        specs=tuple(
            FaultSpec(cls, _RATES[cls], _PARAMS.get(cls, ()))
            for cls in sorted(classes)
        ),
        duration=_DURATION,
    )
    try:
        machine = build_machine(small_config(1234, use_snapshot=True))
        rich_os = boot_rich_os(machine)
        satin = install_satin(machine, rich_os)
        watchdog = satin.harden()
        injector = FaultInjector(
            machine, satin, plan, fault_seed=fault_seed
        ).install()
        machine.run(until=_DURATION)
        injector.deactivate()
        machine.run(until=_DURATION + watchdog.grace * 5 + 1.0)
        result = injector.classify()
    except ReproError:
        return  # a typed, catchable failure is an accepted outcome

    # Every injection classified, totals consistent.
    assert result["totals"]["injected"] == len(injector.injections)
    assert result["totals"]["injected"] == sum(
        result["totals"][key] for key in OUTCOMES
    )
    for injection in result["injections"]:
        assert injection["outcome"] in OUTCOMES

    # Every arrival surfaced in the metrics stream.
    counters = machine.metrics.snapshot()["counters"]
    arrived = [
        i for i in injector.injections
        if i.note != "injector inactive at arrival" and i.time <= machine.sim.now
    ]
    assert counters.get("faults.injected", 0) == len(arrived)

    # Detections are backed by an observable response, never asserted
    # into existence.  (Not 1:1 — two faults with overlapping
    # classification windows may share one alarm.)
    evidence = (
        len(satin.alarms.alarms)
        + watchdog.missed_wakes
        + satin.wakeup_queue.invalid_entries
    )
    detected = result["totals"]["detected"]
    if detected:
        assert evidence > 0
