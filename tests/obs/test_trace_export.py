"""Trace export: JSONL streaming, Perfetto span pairing, schema checks."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.trace_export import (
    EVENTS_TID,
    INTROSPECTION_TID,
    MACHINE_PID,
    WORLD_TID,
    JsonlTraceWriter,
    PerfettoExporter,
    core_pid,
    perfetto_trace,
    record_to_json,
    validate_trace_event_json,
    write_jsonl,
    write_perfetto,
)
from repro.sim.tracing import TraceRecord, TraceRecorder


def rec(time, category, message, **fields):
    return TraceRecord(time, category, message, fields)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def test_record_to_json_round_trip():
    record = rec(1.5, "satin", "round begins", core=2, area=7)
    data = record_to_json(record)
    assert data == {
        "time": 1.5,
        "category": "satin",
        "message": "round begins",
        "fields": {"core": 2, "area": 7},
    }
    json.dumps(data)  # must be serialisable as-is


def test_jsonl_writer_streams_as_listener():
    recorder = TraceRecorder()
    buffer = io.StringIO()
    writer = JsonlTraceWriter(buffer)
    recorder.add_listener(writer)
    recorder.emit(1.0, "a", "one")
    recorder.emit(2.0, "b", "two", core=3)
    lines = buffer.getvalue().splitlines()
    assert writer.written == 2
    assert [json.loads(line)["message"] for line in lines] == ["one", "two"]


def test_write_jsonl_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = write_jsonl([rec(0.0, "c", "x"), rec(1.0, "c", "y")], str(path))
    assert count == 2
    lines = path.read_text().splitlines()
    assert json.loads(lines[1]) == {
        "time": 1.0, "category": "c", "message": "y", "fields": {},
    }


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


def test_secure_world_span_pairing():
    trace = perfetto_trace([
        rec(1.0, "monitor", "secure entry begins", core=2),
        rec(1.25, "monitor", "normal world resumed", core=2),
    ])
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    assert span["name"] == "secure world"
    assert span["pid"] == core_pid(2) and span["tid"] == WORLD_TID
    assert span["ts"] == pytest.approx(1.0e6)
    assert span["dur"] == pytest.approx(0.25e6)


def test_scan_span_pairing_names_the_area():
    trace = perfetto_trace([
        rec(2.0, "satin", "round begins", core=0, area=14),
        rec(2.5, "satin", "round complete", core=0, area=14, mismatch=False),
    ])
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["name"] == "scan area 14"
    assert spans[0]["tid"] == INTROSPECTION_TID
    assert spans[0]["args"]["mismatch"] is False


def test_spans_on_different_cores_do_not_cross_pair():
    trace = perfetto_trace([
        rec(1.0, "monitor", "secure entry begins", core=0),
        rec(1.1, "monitor", "secure entry begins", core=1),
        rec(1.2, "monitor", "normal world resumed", core=1),
        rec(1.5, "monitor", "normal world resumed", core=0),
    ])
    spans = sorted(
        (e for e in trace["traceEvents"] if e["ph"] == "X"),
        key=lambda e: e["pid"],
    )
    assert [s["pid"] for s in spans] == [core_pid(0), core_pid(1)]
    assert spans[0]["dur"] == pytest.approx(0.5e6)
    assert spans[1]["dur"] == pytest.approx(0.1e6)


def test_dangling_span_closed_as_truncated():
    exporter = PerfettoExporter()
    exporter.feed(rec(1.0, "monitor", "secure entry begins", core=0))
    exporter.feed(rec(3.0, "sched", "tick"))
    trace = exporter.finish()
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["args"]["truncated"] is True
    assert spans[0]["dur"] == pytest.approx(2.0e6)  # closed at last seen time


def test_core_affine_instant_lands_on_core_events_track():
    trace = perfetto_trace([rec(1.0, "gic", "sgi raised", core=3)])
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["pid"] == core_pid(3)
    assert instants[0]["tid"] == EVENTS_TID


def test_coreless_instant_lands_on_machine_category_track():
    trace = perfetto_trace([
        rec(1.0, "campaign", "started"),
        rec(2.0, "alarm", "raised"),
    ])
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert all(e["pid"] == MACHINE_PID for e in instants)
    assert instants[0]["tid"] != instants[1]["tid"]  # one track per category


def test_core_metadata_emitted_once_with_labels():
    trace = perfetto_trace(
        [
            rec(1.0, "monitor", "secure entry begins", core=0),
            rec(1.5, "monitor", "normal world resumed", core=0),
        ],
        core_labels={0: "core 0 (A57)"},
    )
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    process_names = [e for e in meta if e["name"] == "process_name"]
    assert [e["args"]["name"] for e in process_names] == ["core 0 (A57)"]
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert thread_names == {"world", "introspection", "events"}


def test_write_perfetto_validates_and_writes(tmp_path):
    path = tmp_path / "out.json"
    trace = write_perfetto(
        [
            rec(1.0, "monitor", "secure entry begins", core=0),
            rec(1.5, "monitor", "normal world resumed", core=0),
        ],
        str(path),
    )
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(trace))
    assert on_disk["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def _valid_event(**overrides):
    event = {"ph": "i", "s": "t", "pid": 1, "tid": 1, "name": "x",
             "cat": "c", "ts": 0.0, "args": {}}
    event.update(overrides)
    return event


def test_validate_accepts_exported_trace():
    trace = perfetto_trace([
        rec(1.0, "satin", "round begins", core=0, area=1),
        rec(2.0, "satin", "round complete", core=0, area=1),
        rec(3.0, "alarm", "raised"),
    ])
    assert validate_trace_event_json(trace) == len(trace["traceEvents"])


@pytest.mark.parametrize(
    "trace",
    [
        [],  # not an object
        {},  # no traceEvents
        {"traceEvents": {}},  # not a list
        {"traceEvents": ["nope"]},  # event not an object
        {"traceEvents": [_valid_event(ph="Z")]},  # unknown phase
        {"traceEvents": [_valid_event(pid="0")]},  # non-int pid
        {"traceEvents": [_valid_event(tid=None)]},  # missing tid
        {"traceEvents": [_valid_event(ts=-1.0)]},  # negative ts
        {"traceEvents": [_valid_event(ph="X")]},  # X without dur
        {"traceEvents": [_valid_event(ph="X", dur=-5.0)]},  # negative dur
        {"traceEvents": [{"ph": "M", "pid": 0, "name": "process_name"}]},  # M no args
    ],
)
def test_validate_rejects_malformed(trace):
    with pytest.raises(ObservabilityError):
        validate_trace_event_json(trace)
