"""Metrics registry invariants: instruments, snapshots, shard merging.

The load-bearing property mirrors ``tests/analysis/test_shard_merge.py``:
merging the snapshots of K shard registries must equal the snapshot of
one registry that saw every observation — counters, bucket counts and
extrema exactly, sums to float tolerance.
"""

import json
import random

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    active_registry,
    bucket_bound,
    bucket_index,
    empty_snapshot,
    merge_snapshots,
    use_registry,
)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("c") is counter  # get-or-create
    with pytest.raises(ObservabilityError):
        counter.inc(-1)


def test_gauge_tracks_level_and_peak():
    gauge = MetricsRegistry().gauge("g")
    gauge.set(3.0)
    gauge.inc(2.0)
    gauge.dec(4.0)
    assert gauge.value == 1.0
    assert gauge.peak == 5.0


def test_histogram_observe_tracks_extrema_and_buckets():
    histogram = MetricsRegistry().histogram("h")
    for value in (0.5, 0.5, 7.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.minimum == 0.5 and histogram.maximum == 7.0
    assert histogram.mean == pytest.approx(8.0 / 3.0)
    assert sum(histogram.buckets.values()) == 3
    assert histogram.buckets[bucket_index(0.5)] == 2


def test_timer_uses_injected_clock():
    registry = MetricsRegistry()
    ticks = iter([10.0, 12.5])
    with registry.timer("t", clock=lambda: next(ticks)):
        pass
    histogram = registry.histogram("t")
    assert histogram.count == 1
    assert histogram.total == pytest.approx(2.5)


def test_cross_type_name_collision_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObservabilityError):
        registry.histogram("x")
    with pytest.raises(ObservabilityError):
        registry.gauge("x")


def test_bucket_index_monotone_and_bounds_consistent():
    indexes = [bucket_index(b) for b in BUCKET_BOUNDS]
    assert indexes == sorted(indexes)
    assert bucket_index(0.0) == 0
    assert bucket_index(-1.0) == 0
    assert bucket_bound(len(BUCKET_BOUNDS)) is None  # overflow bucket
    # every value lands in the bucket whose bound is the first >= it
    for value in (1e-10, 3.3e-5, 0.5, 1.0, 9999.0, 1e6):
        index = bucket_index(value)
        bound = bucket_bound(index)
        assert bound is None or value <= bound


# ---------------------------------------------------------------------------
# Snapshot / merge invariants
# ---------------------------------------------------------------------------


def _observe_all(registry, values):
    for value in values:
        registry.counter("events").inc()
        registry.gauge("level").set(value)
        registry.histogram("durations").observe(value)


def shards_and_whole(seed=7, sizes=(3, 17, 1, 40, 9)):
    rng = random.Random(seed)
    shards = [[rng.lognormvariate(0.0, 1.0) for _ in range(n)] for n in sizes]
    whole = [x for shard in shards for x in shard]
    return shards, whole


def test_merged_shard_snapshots_equal_whole_run_snapshot():
    shards, whole = shards_and_whole()
    shard_snapshots = []
    for values in shards:
        registry = MetricsRegistry()
        _observe_all(registry, values)
        shard_snapshots.append(registry.snapshot())
    whole_registry = MetricsRegistry()
    _observe_all(whole_registry, whole)
    merged = merge_snapshots(shard_snapshots)
    direct = whole_registry.snapshot()

    assert merged["counters"] == direct["counters"]
    hist_m = merged["histograms"]["durations"]
    hist_d = direct["histograms"]["durations"]
    assert hist_m["count"] == hist_d["count"]
    assert hist_m["buckets"] == hist_d["buckets"]  # integer adds: exact
    assert hist_m["min"] == hist_d["min"]
    assert hist_m["max"] == hist_d["max"]
    assert hist_m["sum"] == pytest.approx(hist_d["sum"], rel=1e-12)
    # gauges merge by max — the whole run's peak is the max of shard peaks
    assert merged["gauges"]["level"]["peak"] == direct["gauges"]["level"]["peak"]


def test_merge_is_deterministic_byte_for_byte():
    shards, _ = shards_and_whole(seed=11)
    snapshots = []
    for values in shards:
        registry = MetricsRegistry()
        _observe_all(registry, values)
        snapshots.append(registry.snapshot())
    first = json.dumps(merge_snapshots(snapshots), sort_keys=True)
    second = json.dumps(merge_snapshots(list(snapshots)), sort_keys=True)
    assert first == second


def test_identical_observations_produce_identical_snapshots():
    """The per-trial property the campaign manifest relies on."""
    a, b = MetricsRegistry(), MetricsRegistry()
    _, whole = shards_and_whole(seed=3, sizes=(25,))
    _observe_all(a, whole)
    _observe_all(b, whole)
    assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
        b.snapshot(), sort_keys=True
    )


def test_merge_tolerates_empty_and_missing_sections():
    registry = MetricsRegistry()
    registry.counter("only").inc()
    merged = merge_snapshots([{}, empty_snapshot(), registry.snapshot()])
    assert merged["counters"] == {"only": 1}
    assert merged["gauges"] == {} and merged["histograms"] == {}


def test_merge_single_snapshot_identity():
    registry = MetricsRegistry()
    _observe_all(registry, [0.25, 4.0])
    snap = registry.snapshot()
    assert json.dumps(merge_snapshots([snap]), sort_keys=True) == json.dumps(
        snap, sort_keys=True
    )


def test_snapshot_is_json_safe():
    registry = MetricsRegistry()
    _observe_all(registry, [1e-12, 5000.0])
    round_tripped = json.loads(json.dumps(registry.snapshot()))
    assert round_tripped["counters"]["events"] == 2


# ---------------------------------------------------------------------------
# Process-local scoping
# ---------------------------------------------------------------------------


def test_use_registry_scopes_and_nests():
    assert active_registry() is None
    with use_registry() as outer:
        assert active_registry() is outer
        inner_registry = MetricsRegistry()
        with use_registry(inner_registry) as inner:
            assert inner is inner_registry
            assert active_registry() is inner
        assert active_registry() is outer
    assert active_registry() is None


def test_machine_adopts_active_registry():
    from repro import build_machine, juno_r1_config

    with use_registry() as registry:
        machine = build_machine(juno_r1_config(seed=1))
    assert machine.metrics is registry
    assert machine.sim.metrics is registry


# ---------------------------------------------------------------------------
# Namespaced views (per-job metrics in the service)
# ---------------------------------------------------------------------------


def test_namespaced_registry_prefixes_every_instrument():
    registry = MetricsRegistry()
    ns = registry.namespaced("job.j1")
    ns.counter("done").inc(2)
    ns.gauge("depth").set(3.0)
    ns.histogram("wall").observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["job.j1.done"] == 2
    assert snapshot["gauges"]["job.j1.depth"]["value"] == 3.0
    assert snapshot["histograms"]["job.j1.wall"]["count"] == 1


def test_namespaced_registry_shares_underlying_instruments():
    registry = MetricsRegistry()
    ns = registry.namespaced("job.j1")
    ns.counter("done").inc()
    registry.counter("job.j1.done").inc()
    assert registry.snapshot()["counters"]["job.j1.done"] == 2


def test_namespaced_registry_nests():
    registry = MetricsRegistry()
    inner = registry.namespaced("a").namespaced("b")
    inner.counter("c").inc()
    assert registry.snapshot()["counters"]["a.b.c"] == 1


def test_namespaces_are_isolated():
    registry = MetricsRegistry()
    registry.namespaced("job.j1").counter("done").inc()
    registry.namespaced("job.j2").counter("done").inc(5)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["job.j1.done"] == 1
    assert snapshot["counters"]["job.j2.done"] == 5
