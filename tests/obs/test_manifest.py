"""Campaign manifests: writing, discovery, parallel/serial byte identity."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.errors import ObservabilityError
from repro.obs.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    find_manifest,
    load_manifest,
    render_histogram,
    render_manifest,
)


def small_spec(tmp_path, jobs=0, seeds=(0, 1), **overrides):
    params = dict(
        experiment_id="E1",
        seeds=list(seeds),
        jobs=jobs,
        cache_dir=str(tmp_path),
    )
    params.update(overrides)
    return CampaignSpec(**params)


def test_run_campaign_writes_manifest(tmp_path):
    result = run_campaign(small_spec(tmp_path), progress=False)
    assert result.manifest_path is not None
    assert os.path.basename(result.manifest_path) == MANIFEST_NAME
    manifest = load_manifest(result.manifest_path)
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["experiment_id"] == "E1"
    assert manifest["campaign_id"] == result.spec.campaign_id()
    assert manifest["totals"]["trials"] == 2
    assert manifest["totals"]["ran"] == 2
    assert [t["status"] for t in manifest["trials"]] == ["ok", "ok"]
    # Trials carry machine metrics; the supervisor carries wall-clock ones.
    assert manifest["metrics"]["counters"]
    assert "campaign.trial_wall_seconds" in manifest["supervisor"]["histograms"]


def test_parallel_and_serial_manifest_metrics_byte_identical(tmp_path):
    serial = run_campaign(small_spec(tmp_path / "s", jobs=0), progress=False)
    parallel = run_campaign(small_spec(tmp_path / "p", jobs=2), progress=False)
    serial_metrics = load_manifest(serial.manifest_path)["metrics"]
    parallel_metrics = load_manifest(parallel.manifest_path)["metrics"]
    assert json.dumps(serial_metrics, sort_keys=True) == json.dumps(
        parallel_metrics, sort_keys=True
    )


def test_find_manifest_resolves_file_dir_and_cache_root(tmp_path):
    result = run_campaign(small_spec(tmp_path), progress=False)
    path = result.manifest_path
    campaign_dir = os.path.dirname(path)
    assert find_manifest(path) == path
    assert find_manifest(campaign_dir) == path
    assert find_manifest(str(tmp_path)) == path  # cache root scan


def test_find_manifest_missing_raises(tmp_path):
    with pytest.raises(ObservabilityError):
        find_manifest(str(tmp_path))


def test_load_manifest_rejects_non_manifest_json(tmp_path):
    bogus = tmp_path / MANIFEST_NAME
    bogus.write_text("[1, 2]\n")
    with pytest.raises(ObservabilityError):
        load_manifest(str(bogus))


def test_render_manifest_rollup_sections(tmp_path):
    result = run_campaign(small_spec(tmp_path), progress=False)
    text = render_manifest(load_manifest(result.manifest_path))
    assert "# campaign E1" in text
    assert "merged counters:" in text
    assert "merged histograms:" in text
    assert "supervisor (wall-clock, not reproducible):" in text


def test_render_histogram_empty_and_bars():
    assert render_histogram("h", {"count": 0, "sum": 0.0, "buckets": {}}) == [
        "h: n=0 sum=0 min=None max=None"
    ]
    lines = render_histogram(
        "h", {"count": 3, "sum": 1.5, "min": 0.5, "max": 0.5, "buckets": {"34": 3}}
    )
    assert len(lines) == 2 and "#" in lines[1]


def test_cli_metrics_renders_rollup(tmp_path, capsys):
    from repro.cli import main

    run_campaign(small_spec(tmp_path), progress=False)
    assert main(["metrics", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "# campaign E1" in out and "merged counters:" in out


def test_cli_metrics_missing_manifest(tmp_path, capsys):
    from repro.cli import main

    assert main(["metrics", str(tmp_path)]) == 2
    assert MANIFEST_NAME in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Fingerprints (the backend-equivalence contract)
# ---------------------------------------------------------------------------


def test_fingerprint_ignores_wall_clock_but_tracks_results(tmp_path):
    from repro.obs.manifest import manifest_fingerprint

    result = run_campaign(small_spec(tmp_path), progress=False)
    manifest = load_manifest(result.manifest_path)
    base = manifest_fingerprint(manifest)

    noisy = json.loads(json.dumps(manifest))
    noisy["generated_unix"] = 0.0
    noisy["totals"]["wall_seconds"] = 999.0
    noisy["totals"]["ran"], noisy["totals"]["cached"] = 0, 2  # cache split
    for trial in noisy["trials"]:
        trial["elapsed"], trial["attempts"] = 123.0, 7
    noisy["supervisor"] = {"counters": {"campaign.pool_dispatches": 99}}
    assert manifest_fingerprint(noisy) == base

    changed = json.loads(json.dumps(manifest))
    changed["trials"][0]["status"] = "timeout"
    assert manifest_fingerprint(changed) != base
    changed = json.loads(json.dumps(manifest))
    changed["cancelled"] = True
    assert manifest_fingerprint(changed) != base


def test_cached_rerun_fingerprint_matches_original(tmp_path):
    from repro.obs.manifest import manifest_fingerprint

    first = run_campaign(small_spec(tmp_path), progress=False)
    second = run_campaign(small_spec(tmp_path, resume=True), progress=False)
    assert second.ran == 0 and second.cached == 2
    assert manifest_fingerprint(
        load_manifest(first.manifest_path)
    ) == manifest_fingerprint(load_manifest(second.manifest_path))
