"""Golden-file test: Perfetto export of a short E1-style run.

Everything in the exported trace is a function of simulated time and the
seeded RNG, so the JSON must be byte-stable across runs and platforms.
The run mirrors experiment E1 (Table I): seeded stack, one hash scan and
one snapshot scan through the secure monitor on each cluster's lead core.

Regenerate after an intentional format change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_perfetto.py
"""

import json
import os

from repro.experiments.common import build_stack
from repro.experiments.table1 import REGION_BYTES
from repro.hw.platform import SECURE_SRAM_BASE
from repro.obs.trace_export import machine_core_labels, perfetto_trace
from repro.secure.introspect import scan_area
from repro.secure.snapshot import SecureSnapshotBuffer

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "e1_short.perfetto.json")


def short_e1_trace():
    """One secure scan per (core, technique) cell — E1 with repetitions=1."""
    stack = build_stack(seed=2019)
    machine = stack.machine
    buffer = SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE, 2 * REGION_BYTES)
    for core in (machine.little_core(), machine.big_core()):
        for technique in ("hash", "snapshot"):

            def payload(entered_core, _technique=technique):
                yield from scan_area(
                    stack.rich_os.image,
                    entered_core,
                    offset=0,
                    length=REGION_BYTES,
                    chunk_size=REGION_BYTES,
                    snapshot_buffer=buffer if _technique == "snapshot" else None,
                )

            machine.monitor.request_secure_entry(core, payload)
            machine.sim.run(max_events=10_000)
    return perfetto_trace(machine.trace.records(), machine_core_labels(machine))


def test_short_e1_export_matches_golden():
    rendered = json.dumps(short_e1_trace(), sort_keys=True, indent=1) + "\n"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        with open(GOLDEN, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        assert rendered == handle.read()


def test_short_e1_export_has_expected_tracks():
    trace = short_e1_trace()
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    # 4 secure entries => 4 secure-world residency spans on two cores.
    assert [s["name"] for s in spans] == ["secure world"] * 4
    assert len({s["pid"] for s in spans}) == 2
    labels = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert any("A53" in label or "LITTLE" in label for label in labels)
