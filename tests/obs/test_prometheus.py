"""Prometheus text exposition of registry snapshots."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import render_prometheus, sanitize_metric_name


def test_sanitize_metric_name():
    assert sanitize_metric_name("service.jobs_submitted") == (
        "repro_service_jobs_submitted"
    )
    assert sanitize_metric_name("job.job-0001-ab12cd34.submitted") == (
        "repro_job_job_0001_ab12cd34_submitted"
    )
    assert sanitize_metric_name("x", prefix="") == "x"
    assert sanitize_metric_name("9lives", prefix="") == "_9lives"


def test_counters_and_gauges_render():
    registry = MetricsRegistry()
    registry.counter("service.jobs_submitted").inc(3)
    registry.gauge("queue.depth").set(2.0)
    registry.gauge("queue.depth").set(1.0)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_service_jobs_submitted counter" in text
    assert "repro_service_jobs_submitted 3" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 1" in text
    assert "repro_queue_depth_peak 2" in text
    assert text.endswith("\n")


def test_histogram_renders_cumulative_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("job.wall_seconds")
    for value in (0.001, 0.001, 0.5, 2.0):
        hist.observe(value)
    text = render_prometheus(registry.snapshot())
    lines = [l for l in text.splitlines() if l.startswith("repro_job_wall")]
    bucket_lines = [l for l in lines if "_bucket" in l]
    # cumulative counts are non-decreasing and end at +Inf == count
    counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
    assert counts == sorted(counts)
    assert bucket_lines[-1] == 'repro_job_wall_seconds_bucket{le="+Inf"} 4'
    assert 'le="+Inf"' not in "".join(bucket_lines[:-1])
    assert "repro_job_wall_seconds_count 4" in lines
    assert any(l.startswith("repro_job_wall_seconds_sum ") for l in lines)


def test_overflow_sample_lands_only_in_inf_bucket():
    registry = MetricsRegistry()
    registry.histogram("h").observe(1e9)  # beyond the bucket table
    text = render_prometheus(registry.snapshot())
    assert 'repro_h_bucket{le="+Inf"} 1' in text
    assert "repro_h_count 1" in text


def test_empty_snapshot_renders_empty():
    assert render_prometheus(MetricsRegistry().snapshot()) == ""
