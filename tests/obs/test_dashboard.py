"""Dashboard: deterministic data, HTML embedding, --follow robustness."""

import json
import os

import pytest

from repro.campaign.runner import CampaignSpec, run_campaign
from repro.obs.dashboard import (
    build_dashboard_data,
    dashboard_json,
    follow_campaign,
    lanes_from_trace,
    load_manifest_safe,
    render_dashboard_html,
    store_progress,
)
from repro.obs.dashboard.follow import snapshot_once
from repro.obs.manifest import MANIFEST_NAME
from repro.obs.scenarios import (
    build_scenario_stack,
    run_scenario,
    scenario_by_name,
    scenario_records,
)
from repro.obs.trace_export import machine_core_labels, perfetto_trace


def run_e7(tmp_path, name, jobs=0, seeds=(1, 2, 3)):
    cache = os.path.join(str(tmp_path), name)
    spec = CampaignSpec(
        "E7", seeds=list(seeds), jobs=jobs, cache_dir=cache
    )
    result = run_campaign(spec, progress=False)
    return os.path.join(cache, spec.campaign_id()), result


def run_e9(base, name, jobs=0, seeds=(1, 2)):
    cache = os.path.join(str(base), name)
    spec = CampaignSpec("E9", seeds=list(seeds), jobs=jobs, cache_dir=cache)
    run_campaign(spec, progress=False)
    return os.path.join(cache, spec.campaign_id())


@pytest.fixture(scope="module")
def e9_dirs(tmp_path_factory):
    """One serial and one --jobs 2 E9 run (E9 trials merge rich metrics)."""
    base = tmp_path_factory.mktemp("e9-dash")
    return run_e9(base, "serial", jobs=0), run_e9(base, "jobs", jobs=2)


@pytest.fixture(scope="module")
def figure4_trace():
    scenario = scenario_by_name("figure4")
    stack = build_scenario_stack(scenario, seed=7, preset="juno_r1")
    run_scenario(stack, scenario, duration=None, rounds=2)
    return perfetto_trace(
        scenario_records(stack), machine_core_labels(stack.machine)
    )


# ---------------------------------------------------------------------------
# Deterministic data
# ---------------------------------------------------------------------------


def test_dashboard_json_byte_identical_serial_vs_jobs(e9_dirs):
    serial_dir, jobs_dir = e9_dirs
    serial = dashboard_json(build_dashboard_data(serial_dir))
    parallel = dashboard_json(build_dashboard_data(jobs_dir))
    assert serial == parallel


def test_dashboard_data_excludes_wall_clock(tmp_path):
    campaign_dir, _ = run_e7(tmp_path, "wall")
    data = build_dashboard_data(campaign_dir)
    blob = dashboard_json(data)
    assert "wall_seconds" not in blob
    assert "generated_unix" not in blob
    assert data["campaign"]["spec"].get("jobs") is None
    assert data["schema"] == "satin-dashboard/v1"
    assert data["store"]["available"] is True
    assert data["ok_trials"] == 3


def test_dashboard_top_trims_via_shared_rollup(e9_dirs):
    data = build_dashboard_data(e9_dirs[0], top=2)
    assert len(data["counters"]) == 2
    assert len(data["histograms"]) == 2


def test_histogram_panels_carry_percentiles(e9_dirs):
    data = build_dashboard_data(e9_dirs[0])
    panel = {h["name"]: h for h in data["histograms"]}
    assert panel, "expected merged histograms"
    for h in panel.values():
        if h["count"]:
            assert h["p50"] is not None
            assert h["p99"] is not None
            assert h["p50"] <= h["p99"]
            assert h["bars"] and all("le" in bar for bar in h["bars"])


def test_lanes_from_trace(figure4_trace):
    lanes = lanes_from_trace(figure4_trace)
    assert lanes["available"] and lanes["span_count"] > 0
    names = {t["track"] for t in lanes["tracks"]}
    assert {"world", "introspection"} <= names
    # deterministic ordering: tracks sorted by (pid, tid)
    order = [(t["pid"], t["tid"]) for t in lanes["tracks"]]
    assert order == sorted(order)
    span_names = {
        s["name"] for t in lanes["tracks"] for s in t["spans"]
    }
    assert any(name.startswith("scan area") for name in span_names)
    assert "secure world" in span_names


def test_dashboard_without_trace_marks_lanes_unavailable(tmp_path):
    campaign_dir, _ = run_e7(tmp_path, "notrace")
    data = build_dashboard_data(campaign_dir)
    assert data["lanes"] == {"available": False}


# ---------------------------------------------------------------------------
# HTML
# ---------------------------------------------------------------------------


def test_html_is_self_contained_and_embeds_data(tmp_path, figure4_trace):
    campaign_dir, _ = run_e7(tmp_path, "html")
    data = build_dashboard_data(campaign_dir, trace=figure4_trace)
    html = render_dashboard_html(data)
    assert "<script src" not in html and "fetch(" not in html
    assert "http-equiv" not in html and "@import" not in html
    assert "</" not in html.split("const DATA = ", 1)[1].split(";\n", 1)[0]
    start = html.index("const DATA = ") + len("const DATA = ")
    blob = html[start : html.index(";\n", start)]
    assert json.loads(blob.replace("<\\/", "</")) == data


# ---------------------------------------------------------------------------
# --follow robustness: partial/mid-write campaigns never crash the tailer
# ---------------------------------------------------------------------------


def test_load_manifest_safe_tolerates_truncation(tmp_path):
    campaign_dir = str(tmp_path / "c")
    os.makedirs(campaign_dir)
    assert load_manifest_safe(campaign_dir) is None  # absent
    path = os.path.join(campaign_dir, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": "satin-campaign-manifest/v1", "tot')
    assert load_manifest_safe(campaign_dir) is None  # mid-write
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('["not", "a", "manifest"]\n')
    assert load_manifest_safe(campaign_dir) is None  # wrong shape


def test_store_progress_reads_mid_write_shards(tmp_path):
    campaign_dir = str(tmp_path / "c")
    assert store_progress(campaign_dir) == {"available": False}
    os.makedirs(campaign_dir)
    with open(
        os.path.join(campaign_dir, "shard-0a.jsonl"), "w", encoding="utf-8"
    ) as handle:
        handle.write('{"key": "a1", "status": "ok"}\n')
        handle.write('{"key": "a2", "status"')  # torn tail mid-write
    with open(
        os.path.join(campaign_dir, "quarantine.jsonl"), "w", encoding="utf-8"
    ) as handle:
        handle.write('{"key": "b1", "status": "failed"}\n')
    progress = store_progress(campaign_dir)
    assert progress["records"] == 1
    assert progress["truncated_records"] == 1
    assert progress["quarantined"] == 1


def test_snapshot_once_states(tmp_path):
    campaign_dir = str(tmp_path / "c")
    data, state = snapshot_once(campaign_dir)
    assert state == "waiting" and data["partial"]

    os.makedirs(campaign_dir)
    with open(
        os.path.join(campaign_dir, "shard-0a.jsonl"), "w", encoding="utf-8"
    ) as handle:
        handle.write('{"key": "a1", "status": "ok"}\n')
    data, state = snapshot_once(campaign_dir)
    assert state == "running"
    assert data["progress"]["records"] == 1

    # a manifest missing its survival section must not crash anything
    with open(
        os.path.join(campaign_dir, MANIFEST_NAME), "w", encoding="utf-8"
    ) as handle:
        json.dump({"schema": "satin-campaign-manifest/v1"}, handle)
    data, state = snapshot_once(campaign_dir)
    assert state == "complete"
    assert data["survival"] == {"available": False}
    render_dashboard_html(data)  # renders without survival/store/metrics


def test_follow_exits_130_on_cancelled_manifest(tmp_path):
    campaign_dir = str(tmp_path / "c")
    os.makedirs(campaign_dir)
    with open(
        os.path.join(campaign_dir, MANIFEST_NAME), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {"schema": "satin-campaign-manifest/v1", "cancelled": True}, handle
        )
    out = str(tmp_path / "dash.html")
    code = follow_campaign(campaign_dir, out, interval=0, sleep=lambda _s: None)
    assert code == 130
    assert os.path.exists(out)


def test_follow_renders_final_dashboard_when_manifest_lands(tmp_path):
    campaign_dir, _ = run_e7(tmp_path, "follow")
    out = str(tmp_path / "dash.html")
    out_json = str(tmp_path / "dashboard.json")
    code = follow_campaign(
        campaign_dir, out, out_json=out_json, interval=0, sleep=lambda _s: None
    )
    assert code == 0
    with open(out_json, "r", encoding="utf-8") as handle:
        followed = handle.read()
    # the followed campaign's final data equals an after-the-fact render
    assert followed == dashboard_json(build_dashboard_data(campaign_dir))


def test_follow_gives_up_after_max_rounds(tmp_path):
    campaign_dir = str(tmp_path / "never-finishes")
    os.makedirs(campaign_dir)
    sleeps = []
    code = follow_campaign(
        campaign_dir,
        str(tmp_path / "dash.html"),
        interval=0.5,
        max_rounds=3,
        sleep=sleeps.append,
    )
    assert code == 3
    assert sleeps == [0.5, 0.5]
