"""CLI integration for ``repro dash``, ``repro store``, ``repro metrics``."""

import json
import os

from repro.campaign.runner import CampaignSpec, run_campaign
from repro.campaign.store import ResultStore
from repro.cli import main


def run_small(tmp_path, experiment="E7", seeds=(1, 2)):
    cache = str(tmp_path / "cache")
    spec = CampaignSpec(experiment, seeds=list(seeds), jobs=0, cache_dir=cache)
    run_campaign(spec, progress=False)
    return cache, os.path.join(cache, spec.campaign_id())


# ---------------------------------------------------------------------------
# repro metrics --format/--top
# ---------------------------------------------------------------------------


def test_metrics_format_json_is_sorted_and_deterministic(tmp_path, capsys):
    cache, _ = run_small(tmp_path)
    assert main(["metrics", cache, "--format", "json"]) == 0
    first = capsys.readouterr().out
    rollup = json.loads(first)
    assert rollup["experiment_id"] == "E7"
    assert rollup["trial_status"] == {"ok": 2}
    assert json.dumps(rollup, indent=1, sort_keys=True) + "\n" == first
    assert main(["metrics", cache, "--format", "json"]) == 0
    assert capsys.readouterr().out == first


def test_metrics_top_trims_counters(tmp_path, capsys):
    cache, _ = run_small(tmp_path, experiment="E9", seeds=(1,))
    assert main(["metrics", cache, "--format", "json", "--top", "2"]) == 0
    rollup = json.loads(capsys.readouterr().out)
    assert len(rollup["counters"]) == 2
    assert len(rollup["histograms"]) == 2
    assert main(["metrics", cache, "--top", "2"]) == 0
    table = capsys.readouterr().out
    assert "merged counters:" in table


# ---------------------------------------------------------------------------
# repro dash
# ---------------------------------------------------------------------------


def test_dash_writes_html_and_json(tmp_path, capsys):
    _, campaign_dir = run_small(tmp_path)
    out = str(tmp_path / "dash.html")
    out_json = str(tmp_path / "dashboard.json")
    assert main(["dash", campaign_dir, "--out", out, "--json", out_json]) == 0
    html = open(out, encoding="utf-8").read()
    assert "const DATA =" in html and "<script src" not in html
    data = json.loads(open(out_json, encoding="utf-8").read())
    assert data["schema"] == "satin-dashboard/v1"
    assert data["store"]["available"] is True


def test_dash_missing_campaign_errors(tmp_path, capsys):
    assert main(["dash", str(tmp_path / "nope")]) == 2
    assert "manifest" in capsys.readouterr().err


def test_dash_follow_completes_on_finished_campaign(tmp_path, capsys):
    _, campaign_dir = run_small(tmp_path)
    out = str(tmp_path / "dash.html")
    code = main([
        "dash", campaign_dir, "--out", out, "--follow",
        "--interval", "0.01", "--max-rounds", "3",
    ])
    assert code == 0
    assert os.path.exists(out)
    assert "complete" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro store
# ---------------------------------------------------------------------------


def test_store_gc_cli_compacts_and_reports(tmp_path, capsys):
    cache, campaign_dir = run_small(tmp_path)
    store = ResultStore(cache, os.path.basename(campaign_dir))
    store.load()
    key = sorted(k for k in store._entries)[0]
    store.put(dict(store.get(key), payload={"again": True}))  # supersede

    report_path = str(tmp_path / "gc.json")
    assert main(["store", "gc", cache, "--report", report_path]) == 0
    err = capsys.readouterr().err
    assert "dropped 1 superseded" in err
    report = json.loads(open(report_path, encoding="utf-8").read())
    campaign_id = os.path.basename(campaign_dir)
    assert report[campaign_id]["superseded_dropped"] == 1


def test_store_pin_cli(tmp_path, capsys):
    cache, campaign_dir = run_small(tmp_path)
    assert main(["store", "pin", campaign_dir, "--key", "deadbeef"]) == 0
    assert "pinned 1 key(s)" in capsys.readouterr().err
    store = ResultStore(cache, os.path.basename(campaign_dir))
    assert store.pinned_keys() == {"deadbeef"}
    assert main(["store", "pin", campaign_dir]) == 2  # no --key


def test_store_gc_missing_dir(tmp_path, capsys):
    assert main(["store", "gc", str(tmp_path / "nope")]) == 2
