"""Exception hierarchy and miscellaneous small-surface tests."""

import pytest

from repro.errors import (
    AttackError,
    CampaignError,
    ConfigurationError,
    FaultError,
    FaultInjectionError,
    FaultPlanError,
    HardwareError,
    IntrospectionError,
    KernelError,
    MemoryAccessError,
    ObservabilityError,
    ReproError,
    SchedulingError,
    SecureAccessError,
    SimulationError,
)


def test_every_error_derives_from_repro_error():
    for cls in (
        AttackError, CampaignError, ConfigurationError, FaultError,
        FaultInjectionError, FaultPlanError, HardwareError,
        IntrospectionError, KernelError, MemoryAccessError,
        ObservabilityError, SchedulingError, SecureAccessError,
        SimulationError,
    ):
        assert issubclass(cls, ReproError)


def test_secure_access_is_a_hardware_error():
    assert issubclass(SecureAccessError, HardwareError)
    assert issubclass(MemoryAccessError, HardwareError)


def test_scheduling_is_a_simulation_error():
    assert issubclass(SchedulingError, SimulationError)


def test_fault_error_hierarchy():
    assert issubclass(FaultPlanError, FaultError)
    assert issubclass(FaultInjectionError, FaultError)
    assert issubclass(FaultError, ReproError)
    # Siblings, not a chain: a bad plan is not a bad injection.
    assert not issubclass(FaultInjectionError, FaultPlanError)
    assert not issubclass(FaultPlanError, FaultInjectionError)


def test_every_error_importable_from_top_level():
    import inspect

    import repro
    from repro import errors as errors_module

    for name, cls in vars(errors_module).items():
        if inspect.isclass(cls) and issubclass(cls, ReproError):
            assert getattr(repro, name) is cls, name
            assert name in repro.__all__, name


def test_one_catch_all():
    with pytest.raises(ReproError):
        raise SecureAccessError("blocked")
    with pytest.raises(ReproError):
        raise FaultPlanError("no such plan")


# ---------------------------------------------------------------------------
# Small dataclass surfaces
# ---------------------------------------------------------------------------

def test_overhead_point_degradation_math():
    from repro.experiments.figure7 import OverheadPoint

    point = OverheadPoint("p", 1, score_off=100.0, score_on=99.0)
    assert point.degradation == pytest.approx(0.01)
    # Never negative (measurement noise can make "on" beat "off").
    lucky = OverheadPoint("p", 1, score_off=100.0, score_on=101.0)
    assert lucky.degradation == 0.0
    degenerate = OverheadPoint("p", 1, score_off=0.0, score_on=0.0)
    assert degenerate.degradation == 0.0


def test_program_score_rate():
    from repro.workloads.suite import ProgramScore

    score = ProgramScore("p", 1, duration=2.0, total_ops=50,
                         secure_preemptions=0)
    assert score.score == 25.0


def test_evader_state_values():
    from repro.attacks.evader import EvaderState

    assert EvaderState.ATTACKING.value == "attacking"
    assert EvaderState.HIDDEN.value == "hidden"


def test_scan_result_properties():
    from repro.secure.introspect import ScanResult

    result = ScanResult(
        offset=0, length=10, core_index=1, start_time=1.0, end_time=1.5,
        digest=5, expected=5,
    )
    assert result.match and result.duration == 0.5
    mismatch = ScanResult(
        offset=0, length=10, core_index=1, start_time=1.0, end_time=1.5,
        digest=5, expected=6,
    )
    assert not mismatch.match


def test_world_enum():
    from repro.hw.world import World

    assert World.SECURE.is_secure and not World.NORMAL.is_secure
    assert str(World.NORMAL) == "normal"


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"
