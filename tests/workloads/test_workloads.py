"""UnixBench-like workload suite tests."""

import pytest

from repro.config import SatinConfig
from repro.core.satin import Satin
from repro.errors import ReproError
from repro.workloads.programs import (
    UNIXBENCH_PROGRAMS,
    BenchmarkProgram,
    program_by_name,
)
from repro.workloads.suite import BenchmarkRun


def test_program_table_integrity():
    assert len(UNIXBENCH_PROGRAMS) == 12
    names = [p.name for p in UNIXBENCH_PROGRAMS]
    assert len(set(names)) == 12
    assert all(p.op_cpu > 0 for p in UNIXBENCH_PROGRAMS)
    assert all(p.disruption_cost >= 0 for p in UNIXBENCH_PROGRAMS)


def test_figure7_outliers_have_largest_disruption():
    by_cost = sorted(UNIXBENCH_PROGRAMS, key=lambda p: p.disruption_cost)
    worst_two = {by_cost[-1].name, by_cost[-2].name}
    assert worst_two == {"file_copy_256B", "pipe_context_switching"}


def test_program_lookup():
    assert program_by_name("dhrystone2").syscall_nr is None
    assert program_by_name("syscall_overhead").syscall_heavy
    with pytest.raises(KeyError):
        program_by_name("nope")


def test_run_produces_positive_score(stack):
    machine, rich_os = stack
    program = program_by_name("dhrystone2")
    score = BenchmarkRun(machine, rich_os, program, duration=0.5).run_to_completion()
    assert score.total_ops > 0
    assert score.score == pytest.approx(score.total_ops / 0.5)


def test_score_scales_with_task_count(stack):
    machine, rich_os = stack
    program = program_by_name("whetstone")
    multi = BenchmarkRun(
        machine, rich_os, program, task_count=4, duration=0.5
    ).run_to_completion()
    single_rate = 0.5 / program.op_cpu
    # 4 copies on 6 cores: near-linear scaling.
    assert multi.total_ops > 3.0 * single_rate * 0.8


def test_task_count_must_be_positive(stack):
    machine, rich_os = stack
    with pytest.raises(ReproError):
        BenchmarkRun(machine, rich_os, UNIXBENCH_PROGRAMS[0], task_count=0)


def test_syscall_heavy_program_exercises_syscall_path(stack):
    machine, rich_os = stack
    program = program_by_name("syscall_overhead")
    BenchmarkRun(machine, rich_os, program, duration=0.3).run_to_completion()
    assert rich_os.syscall_count > 100


def test_satin_interruption_reduces_sensitive_score(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    # High-rate SATIN to make the effect visible in a short run.
    satin = Satin(machine, rich_os, config=SatinConfig(tgoal=19 * 0.05)).install()
    sensitive = BenchmarkProgram(
        "sensitive", op_cpu=5e-4, syscall_nr=None, disruption_cost=5e-2
    )
    run = BenchmarkRun(machine, rich_os, sensitive, task_count=6, duration=2.0)
    score_on = run.run_to_completion()
    assert score_on.secure_preemptions > 0
    ideal_rate = 6 / sensitive.op_cpu
    assert score_on.score < ideal_rate  # visibly degraded
