"""Event and EventQueue unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, order.append, ("c",))
    q.push(1.0, order.append, ("a",))
    q.push(2.0, order.append, ("b",))
    while True:
        event = q.pop()
        if event is None:
            break
        event.callback(*event.args)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    second = q.push(1.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_event_is_skipped():
    q = EventQueue()
    victim = q.push(1.0, lambda: None)
    survivor = q.push(2.0, lambda: None)
    victim.cancel()
    assert q.pop() is survivor
    assert q.pop() is None


def test_cancel_is_idempotent_and_safe_after_fire():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    assert q.pop() is event
    event.cancel()
    event.cancel()
    assert not event.pending


def test_pending_property_lifecycle():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    assert event.pending
    event.cancel()
    assert not event.pending


def test_len_tracks_live_events():
    q = EventQueue()
    a = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    a.cancel()
    q.peek_time()  # compacts cancelled head
    assert len(q) == 1


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 5.0


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    event = q.push(1.0, lambda: None)
    assert q
    event.cancel()
    assert not q


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_event_comparison_uses_time_then_seq():
    early = Event(1.0, 5, lambda: None)
    late = Event(2.0, 1, lambda: None)
    tie = Event(1.0, 6, lambda: None)
    assert early < late
    assert early < tie


def test_push_batch_interleaves_with_push_by_time_then_seq():
    q = EventQueue()
    order = []
    first = q.push(1.5, order.append, ("push",))
    batch = q.push_batch(
        [(1.0, order.append, ("b0",)), (1.5, order.append, ("b1",)), (0.5, order.append, ("b2",))]
    )
    assert [e.seq for e in batch] == [first.seq + 1, first.seq + 2, first.seq + 3]
    while True:
        event = q.pop()
        if event is None:
            break
        event.callback(*event.args)
    # ties at t=1.5 resolve by schedule order: push() before its batch peer
    assert order == ["b2", "b0", "push", "b1"]


def test_push_batch_relative_base_validates_delays():
    q = EventQueue()
    events = q.push_batch([(0.25, lambda: None, ())], base=1.0)
    assert events[0].time == 1.25
    with pytest.raises(SimulationError):
        q.push_batch([(-0.1, lambda: None, ())], base=1.0)
    with pytest.raises(SimulationError):
        q.push_batch([(float("nan"), lambda: None, ())], base=1.0)
    with pytest.raises(SimulationError):
        q.push_batch([(float("nan"), lambda: None, ())])


def test_push_batch_events_are_live_cancellable_tokens():
    q = EventQueue()
    events = q.push_batch([(float(i), lambda: None, ()) for i in range(10)])
    assert len(q) == 10
    events[3].cancel()
    events[3].cancel()  # idempotent
    assert len(q) == 9
    popped = [q.pop() for _ in range(9)]
    assert events[3] not in popped
    assert q.pop() is None


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "batch", "cancel", "cancel_done", "pop", "peek"]),
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=120,
)


@given(_OPS)
def test_len_is_exact_under_any_interleaving(ops):
    """Satellite invariant: ``len(queue)`` never drifts from the true live
    count, no matter how push/cancel/pop/peek interleave — including
    cancels of already-popped events, which must be no-ops."""
    q = EventQueue()
    live = set()
    done = []
    for op, t, idx in ops:
        if op == "push":
            live.add(q.push(t, lambda: None))
        elif op == "batch":
            live.update(q.push_batch([(t + k, lambda: None, ()) for k in range(idx + 1)]))
        elif op == "cancel" and live:
            victim = sorted(live, key=lambda e: e.seq)[idx % len(live)]
            victim.cancel()
            live.discard(victim)
        elif op == "cancel_done" and done:
            done[idx % len(done)].cancel()
        elif op == "pop":
            event = q.pop()
            if event is None:
                assert not live
            else:
                assert event in live
                live.discard(event)
                done.append(event)
        elif op == "peek":
            peeked = q.peek_time()
            if live:
                assert peeked == min(e.time for e in live)
            else:
                assert peeked is None
        assert len(q) == len(live)
        assert bool(q) == bool(live)
    # drain: exactly the live events come out, in (time, seq) order
    drained = []
    while True:
        event = q.pop()
        if event is None:
            break
        drained.append(event)
    assert set(drained) == live
    keys = [(e.time, e.seq) for e in drained]
    assert keys == sorted(keys)
    assert len(q) == 0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_pop_order_is_always_nondecreasing(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while True:
        event = q.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)
