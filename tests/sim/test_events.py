"""Event and EventQueue unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, order.append, ("c",))
    q.push(1.0, order.append, ("a",))
    q.push(2.0, order.append, ("b",))
    while True:
        event = q.pop()
        if event is None:
            break
        event.callback(*event.args)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    second = q.push(1.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_event_is_skipped():
    q = EventQueue()
    victim = q.push(1.0, lambda: None)
    survivor = q.push(2.0, lambda: None)
    victim.cancel()
    assert q.pop() is survivor
    assert q.pop() is None


def test_cancel_is_idempotent_and_safe_after_fire():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    assert q.pop() is event
    event.cancel()
    event.cancel()
    assert not event.pending


def test_pending_property_lifecycle():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    assert event.pending
    event.cancel()
    assert not event.pending


def test_len_tracks_live_events():
    q = EventQueue()
    a = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    a.cancel()
    q.peek_time()  # compacts cancelled head
    assert len(q) == 1


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 5.0


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    event = q.push(1.0, lambda: None)
    assert q
    event.cancel()
    assert not q


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_event_comparison_uses_time_then_seq():
    early = Event(1.0, 5, lambda: None)
    late = Event(2.0, 1, lambda: None)
    tie = Event(1.0, 6, lambda: None)
    assert early < late
    assert early < tie


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_pop_order_is_always_nondecreasing(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while True:
        event = q.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)
