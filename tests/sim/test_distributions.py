"""Timing-noise distribution tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    LogNormalJitter,
    Shifted,
    SpikeMixture,
    Uniform,
    inverse_cdf,
)


@pytest.fixture
def rng():
    return random.Random(42)


def test_constant_samples_and_cdf():
    c = Constant(3.0)
    assert c.sample(random.Random(0)) == 3.0
    assert c.mean == 3.0
    assert c.cdf(2.9) == 0.0 and c.cdf(3.0) == 1.0


def test_uniform_sample_within_bounds(rng):
    u = Uniform(1.0, 2.0)
    samples = [u.sample(rng) for _ in range(500)]
    assert all(1.0 <= s <= 2.0 for s in samples)
    assert abs(sum(samples) / len(samples) - 1.5) < 0.05


def test_uniform_cdf():
    u = Uniform(0.0, 2.0)
    assert u.cdf(-1) == 0.0 and u.cdf(1.0) == 0.5 and u.cdf(3.0) == 1.0


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ConfigurationError):
        Uniform(2.0, 1.0)


def test_lognormal_mean_matches_parameter(rng):
    d = LogNormalJitter(1e-3, 0.1)
    samples = [d.sample(rng) for _ in range(4000)]
    assert abs(sum(samples) / len(samples) - 1e-3) / 1e-3 < 0.02


def test_lognormal_clipping(rng):
    d = LogNormalJitter(1.0, 1.0, lo_clip=0.9, hi_clip=1.1)
    samples = [d.sample(rng) for _ in range(200)]
    assert all(0.9 <= s <= 1.1 for s in samples)


def test_lognormal_zero_sigma_is_constant(rng):
    d = LogNormalJitter(2.0, 0.0)
    assert d.sample(rng) == 2.0


def test_lognormal_invalid_params():
    with pytest.raises(ConfigurationError):
        LogNormalJitter(0.0, 0.1)
    with pytest.raises(ConfigurationError):
        LogNormalJitter(1.0, -0.1)


def test_lognormal_cdf_monotone():
    d = LogNormalJitter(1.0, 0.3)
    xs = [0.1, 0.5, 1.0, 2.0, 5.0]
    cdfs = [d.cdf(x) for x in xs]
    assert cdfs == sorted(cdfs)
    assert d.cdf(0.0) == 0.0


def test_bounded_pareto_support_and_mean(rng):
    d = BoundedPareto(xm=1e-4, alpha=2.0, cap=1e-2)
    samples = [d.sample(rng) for _ in range(5000)]
    assert all(1e-4 <= s <= 1e-2 for s in samples)
    empirical = sum(samples) / len(samples)
    assert abs(empirical - d.mean) / d.mean < 0.1


def test_bounded_pareto_inv_cdf_roundtrip():
    d = BoundedPareto(xm=1e-4, alpha=3.0, cap=1e-2)
    for u in (0.01, 0.5, 0.9, 0.999):
        assert abs(d.cdf(d.inv_cdf(u)) - u) < 1e-9


def test_bounded_pareto_alpha_one_mean():
    d = BoundedPareto(xm=1.0, alpha=1.0, cap=10.0)
    assert d.mean > 1.0


def test_bounded_pareto_invalid_params():
    with pytest.raises(ConfigurationError):
        BoundedPareto(0.0, 1.0, 1.0)
    with pytest.raises(ConfigurationError):
        BoundedPareto(1.0, -1.0, 2.0)
    with pytest.raises(ConfigurationError):
        BoundedPareto(2.0, 1.0, 1.0)


def test_spike_mixture_rates(rng):
    base = Constant(1.0)
    spike = Constant(100.0)
    mix = SpikeMixture(base, spike, spike_prob=0.1)
    samples = [mix.sample(rng) for _ in range(5000)]
    spike_rate = sum(1 for s in samples if s == 100.0) / len(samples)
    assert 0.07 < spike_rate < 0.13
    assert abs(mix.mean - (0.9 * 1.0 + 0.1 * 100.0)) < 1e-12


def test_spike_mixture_cdf_combines():
    mix = SpikeMixture(Uniform(0, 1), Uniform(10, 11), 0.25)
    assert abs(mix.cdf(1.0) - 0.75) < 1e-12
    assert mix.cdf(11.0) == 1.0


def test_spike_mixture_invalid_prob():
    with pytest.raises(ConfigurationError):
        SpikeMixture(Constant(1), Constant(2), 1.5)


def test_shifted_distribution(rng):
    d = Shifted(Uniform(0.0, 1.0), 10.0)
    s = d.sample(rng)
    assert 10.0 <= s <= 11.0
    assert d.mean == 10.5
    assert d.cdf(10.5) == 0.5
    assert d.support() == (10.0, 11.0)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.001, max_value=0.999))
def test_numeric_inverse_cdf_roundtrip(u):
    d = SpikeMixture(Uniform(0.0, 1.0), BoundedPareto(2.0, 2.5, 50.0), 0.2)
    x = inverse_cdf(d, u)
    assert abs(d.cdf(x) - u) < 1e-6
