"""Simulator core unit tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run():
    sim = Simulator()
    out = []
    sim.schedule(1.5, out.append, "x")
    sim.run()
    assert out == ["x"]
    assert sim.now == 1.5


def test_schedule_at_absolute_time():
    sim = Simulator()
    out = []
    sim.schedule_at(2.0, out.append, "y")
    sim.run()
    assert sim.now == 2.0 and out == ["y"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, "late")
    sim.run(until=2.0)
    assert out == [] and sim.now == 2.0 and sim.pending_events == 1
    sim.run()
    assert out == ["late"]


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(1.0)
    sim.run_for(1.0)
    assert sim.now == 2.0


def test_stop_from_callback():
    sim = Simulator()
    out = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, out.append, "never yet")
    sim.run()
    assert out == [] and sim.now == 1.0
    sim.run()
    assert out == ["never yet"]


def test_max_events_limits_execution():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=3)
    assert out == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert out == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_next_event_time():
    sim = Simulator()
    assert sim.next_event_time() is None
    sim.schedule(2.5, lambda: None)
    assert sim.next_event_time() == 2.5
