"""Coroutine process machinery tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Signal, cpu, run_coroutine, sleep, wait
from repro.sim.simulator import Simulator


def test_cpu_and_sleep_elapse_time():
    sim = Simulator()
    marks = []

    def proc():
        yield cpu(1.0)
        marks.append(sim.now)
        yield sleep(2.0)
        marks.append(sim.now)

    run_coroutine(sim, proc())
    sim.run()
    assert marks == [1.0, 3.0]


def test_result_captured_on_done():
    sim = Simulator()
    results = []

    def proc():
        yield cpu(0.5)
        return 42

    driver = run_coroutine(sim, proc(), on_done=results.append)
    sim.run()
    assert results == [42]
    assert driver.finished and driver.result == 42


def test_wait_blocks_until_signal_and_receives_payload():
    sim = Simulator()
    sig = Signal("test")
    got = []

    def waiter():
        payload = yield wait(sig)
        got.append((sim.now, payload))

    run_coroutine(sim, waiter())
    sim.schedule(5.0, sig.fire, "hello")
    sim.run()
    assert got == [(5.0, "hello")]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    sig = Signal()
    woken = []

    def waiter(name):
        yield wait(sig)
        woken.append(name)

    run_coroutine(sim, waiter("a"))
    run_coroutine(sim, waiter("b"))
    assert sig.waiter_count == 2
    assert sig.fire() == 2
    assert sorted(woken) == ["a", "b"]
    assert sig.waiter_count == 0


def test_signal_fire_count_and_last_payload():
    sig = Signal()
    sig.fire("x")
    sig.fire("y")
    assert sig.fire_count == 2 and sig.last_payload == "y"


def test_unknown_yield_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    with pytest.raises(SimulationError):
        run_coroutine(sim, bad())


def test_negative_requests_rejected():
    with pytest.raises(SimulationError):
        cpu(-1.0)
    with pytest.raises(SimulationError):
        sleep(-0.1)


def test_zero_duration_requests_complete():
    sim = Simulator()
    done = []

    def proc():
        yield cpu(0.0)
        yield sleep(0.0)
        done.append(sim.now)

    run_coroutine(sim, proc())
    sim.run()
    assert done == [0.0]


def test_nested_generators_with_yield_from():
    sim = Simulator()
    trace = []

    def inner():
        yield cpu(1.0)
        return "inner-result"

    def outer():
        value = yield from inner()
        trace.append((sim.now, value))
        yield cpu(1.0)

    run_coroutine(sim, outer())
    sim.run()
    assert trace == [(1.0, "inner-result")]
    assert sim.now == 2.0
