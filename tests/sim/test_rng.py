"""Deterministic RNG registry tests."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_different_sequences():
    reg = RngRegistry(7)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_master_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_consuming_one_stream_does_not_disturb_another():
    reg1 = RngRegistry(7)
    reg2 = RngRegistry(7)
    reg1.stream("noise").random()  # consume from an unrelated stream
    assert reg1.stream("x").random() == reg2.stream("x").random()


def test_reseed_clears_streams():
    reg = RngRegistry(7)
    first = reg.stream("x").random()
    reg.reseed(7)
    assert reg.stream("x").random() == first  # fresh identical stream


def test_fork_is_independent_of_parent():
    parent = RngRegistry(7)
    child = parent.fork("child")
    assert child.master_seed != parent.master_seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_derive_seed_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
