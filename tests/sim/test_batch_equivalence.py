"""Differential golden tests: the batch replay engine is bit-exact.

Every test here compares the vectorized path against the plain-CPython
scalar path *by equality of exact float/int values*, never by tolerance:
``--batch`` is only safe because a batched trial consumes the very same
bits a scalar trial would.  The layers under test, bottom up:

* ``uniform_block``/``uniform_matrix`` — MT19937 state transplant,
  including pre-advancement (``skip``) and window extension;
* ``batch_djb2`` — row-wise matmul hashing vs the scalar fold;
* ``ReplayRandom`` — the replayed ``random.Random`` surface, its sliding
  window, its compiled ``make_draw`` fast paths for every distribution
  shape, and its divergence detector (``getrandbits``/trip);
* ``ReplayPlan``/``use_replay`` — stream-factory scoping, the blacklist,
  and a whole ``run_experiment`` trial replayed end to end.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.hashes import djb2
from repro.sim.batch import (
    DEFAULT_WINDOW,
    REPLAY_BLACKLIST,
    BatchDivergence,
    ReplayPlan,
    ReplayRandom,
    active_replay,
    batch_djb2,
    bind_sampler,
    plan_blocks,
    replayable,
    uniform_block,
    uniform_matrix,
    use_replay,
)
from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    LogNormalJitter,
    Shifted,
    SpikeMixture,
    Uniform,
)
from repro.sim.rng import RngRegistry, derive_seed

#: Every distribution shape the simulation configures, including the
#: calibrated cross-core visibility mixture (the hottest replay stream)
#: and the sigma==0 lognormal degenerate case.
DISTRIBUTIONS = [
    Constant(3.25e-9),
    Uniform(1.0e-5, 1.5e-5),
    LogNormalJitter(6e-6, 0.6),
    LogNormalJitter(3.3e-9, 0.05, lo_clip=2.8e-9, hi_clip=4.2e-9),
    LogNormalJitter(5e-6, 0.0, lo_clip=6e-6),  # zero-uniform constant path
    BoundedPareto(xm=8e-5, alpha=2.4, cap=1.32e-3),
    SpikeMixture(
        base=LogNormalJitter(2.2e-5, 0.45),
        spike=BoundedPareto(xm=8e-5, alpha=2.4, cap=1.32e-3),
        spike_prob=1.1e-4,
    ),
    SpikeMixture(base=Uniform(1e-6, 2e-6), spike=Constant(9e-4), spike_prob=0.25),
    Shifted(LogNormalJitter(1e-6, 0.3), offset=4e-6),
]


class _Unknown(Distribution):
    """A shape ``make_draw`` has no compiled path for: falls back to
    ``sample(self)``, which must still replay bit-exactly."""

    def sample(self, rng):
        return -rng.random() if rng.random() < 0.5 else rng.random() * 2.0


# ----------------------------------------------------------------------
# uniform blocks: MT19937 transplant + pre-advancement
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**64 - 1),
    n=st.integers(min_value=1, max_value=700),
    skip=st.integers(min_value=0, max_value=650),
)
def test_uniform_block_is_bit_identical_to_cpython(seed, n, skip):
    """Satellite: pre-advancement property.  A block generated after
    ``skip`` discards equals the scalar stream's draws skip..skip+n, to
    the last bit — the property batch plans rely on to hand each member
    a mid-stream window."""
    scalar = random.Random(seed)
    expected = [scalar.random() for _ in range(skip + n)][skip:]
    block = uniform_block(seed, n, skip=skip)
    assert block.tolist() == expected


def test_uniform_matrix_rows_are_independent_scalar_streams():
    seeds = [0, 1, 2019, 2**63 + 12345]
    matrix = uniform_matrix(seeds, 257)
    for row, seed in enumerate(seeds):
        scalar = random.Random(seed)
        assert matrix[row].tolist() == [scalar.random() for _ in range(257)]


def test_plan_blocks_rows_match_derived_streams():
    seeds = [7, 8]
    blocks = plan_blocks(seeds, ["prober.visibility", "satin.wakeup"], block_size=64)
    # blacklisted stream gets no block at all
    assert all(name == "prober.visibility" for (_, name) in blocks)
    for seed in seeds:
        scalar = random.Random(derive_seed(seed, "prober.visibility"))
        assert blocks[(seed, "prober.visibility")].tolist() == [
            scalar.random() for _ in range(64)
        ]


# ----------------------------------------------------------------------
# batched hashing
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    length=st.integers(min_value=0, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_batch_djb2_rows_equal_scalar_djb2(rows, length, seed):
    matrix = np.random.RandomState(seed).randint(
        0, 256, size=(rows, length), dtype=np.uint8
    )
    digests = batch_djb2(matrix)
    for i in range(rows):
        assert int(digests[i]) == djb2(matrix[i].tobytes())


def test_batch_djb2_crosses_chunk_boundary():
    """Rows longer than the 64 KiB power table exercise the multi-chunk
    fold (h * mult^n carry between chunks)."""
    matrix = np.random.RandomState(3).randint(
        0, 256, size=(3, (1 << 16) + 513), dtype=np.uint8
    )
    digests = batch_djb2(matrix)
    for i in range(3):
        assert int(digests[i]) == djb2(matrix[i].tobytes())


# ----------------------------------------------------------------------
# ReplayRandom: the random.Random surface
# ----------------------------------------------------------------------


@pytest.mark.parametrize("window", [17, 257, DEFAULT_WINDOW])
def test_replay_random_stream_equals_scalar(window):
    scalar = random.Random(2019)
    replay = ReplayRandom(2019, name="t", window=window)
    for _ in range(window * 3 + 5):  # several slides at small windows
        assert replay.random() == scalar.random()
    assert replay.uniforms_served == window * 3 + 5


def test_replay_inherited_methods_equal_scalar():
    """uniform/expovariate/gauss-style consumers all funnel through
    random() and replay exactly."""
    scalar, replay = random.Random(7), ReplayRandom(7, window=64)
    for _ in range(200):
        assert replay.uniform(2.0, 9.0) == scalar.uniform(2.0, 9.0)
        assert replay.random() == scalar.random()


def test_replay_with_initial_block_continues_past_it():
    initial = uniform_block(55, 37)
    scalar = random.Random(55)
    replay = ReplayRandom(55, initial=initial, window=29)
    for _ in range(300):  # consumes the block, then window extensions
        assert replay.random() == scalar.random()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    block=st.integers(min_value=0, max_value=120),
    window=st.integers(min_value=2, max_value=90),
    draws=st.integers(min_value=1, max_value=400),
)
def test_replay_equivalence_property(seed, block, window, draws):
    """Any (initial block, window, draw count) combination replays the
    scalar stream exactly — boundaries, carried tails and all."""
    initial = uniform_block(seed, block) if block else None
    scalar = random.Random(seed)
    replay = ReplayRandom(seed, initial=initial, window=window)
    assert [replay.random() for _ in range(draws)] == [
        scalar.random() for _ in range(draws)
    ]


def test_getrandbits_family_raises_divergence():
    replay = ReplayRandom(1, name="s")
    with pytest.raises(BatchDivergence):
        replay.getrandbits(32)
    with pytest.raises(BatchDivergence):
        replay.randrange(10)
    with pytest.raises(BatchDivergence):
        replay.shuffle([1, 2, 3])
    with pytest.raises(BatchDivergence):
        replay.choice([1, 2, 3])


def test_reseeding_mid_replay_raises():
    replay = ReplayRandom(1)
    with pytest.raises(BatchDivergence):
        replay.seed(2)


# ----------------------------------------------------------------------
# compiled draws: every distribution shape, bit-for-bit
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__ + repr(d.__dict__.get("sigma", ""))
)
@pytest.mark.parametrize("window", [23, 4096])
def test_make_draw_equals_scalar_sample(dist, window):
    scalar = random.Random(99)
    replay = ReplayRandom(99, window=window)
    draw = replay.make_draw(dist)
    for _ in range(3000):
        assert draw() == dist.sample(scalar)


def test_unknown_distribution_falls_back_to_sample():
    dist = _Unknown()
    scalar = random.Random(5)
    replay = ReplayRandom(5, window=31)
    draw = replay.make_draw(dist)
    for _ in range(500):
        assert draw() == dist.sample(scalar)


def test_interleaved_draws_share_one_cursor():
    """Multiple bound samplers plus raw random() on one stream must
    consume the single underlying uniform sequence in call order, exactly
    like the scalar engine's shared ``random.Random``."""
    shapes = [DISTRIBUTIONS[2], DISTRIBUTIONS[5], DISTRIBUTIONS[6], DISTRIBUTIONS[1]]
    scalar = random.Random(31337)
    replay = ReplayRandom(31337, window=41)
    draws = [replay.make_draw(d) for d in shapes]
    pick = random.Random(4)  # test-local, not under test
    for _ in range(4000):
        which = pick.randrange(len(shapes) + 1)
        if which == len(shapes):
            assert replay.random() == scalar.random()
        else:
            assert draws[which]() == shapes[which].sample(scalar)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    mean=st.floats(min_value=1e-9, max_value=1e-3),
    sigma=st.floats(min_value=0.0, max_value=2.0),
    window=st.integers(min_value=8, max_value=600),
)
def test_lognormal_rejection_replay_property(seed, mean, sigma, window):
    """The acceptance-bitmap walk reproduces CPython's rejection loop for
    arbitrary (mu, sigma) — acceptance is parameter-free, values are
    recomputed with libm, so equality must be exact."""
    dist = LogNormalJitter(mean, sigma)
    scalar = random.Random(seed)
    draw = ReplayRandom(seed, window=window).make_draw(dist)
    assert [draw() for _ in range(300)] == [dist.sample(scalar) for _ in range(300)]


def test_bind_sampler_scalar_and_replay_agree():
    dist = DISTRIBUTIONS[6]
    scalar_draw = bind_sampler(dist, random.Random(12))
    replay_draw = bind_sampler(dist, ReplayRandom(12, window=100))
    assert [replay_draw() for _ in range(2000)] == [scalar_draw() for _ in range(2000)]


# ----------------------------------------------------------------------
# forced divergence (trip) — satellite: mid-trial ejection property
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    trip=st.integers(min_value=1, max_value=200),
    window=st.integers(min_value=3, max_value=80),
)
def test_trip_is_exact_and_prefix_is_scalar(seed, trip, window):
    """A stream with ``trip_after=t`` serves exactly the scalar stream's
    first t uniforms, then raises BatchDivergence — the mid-trial
    divergence contract the ejection path is built on."""
    scalar = random.Random(seed)
    replay = ReplayRandom(seed, name="trip", trip_after=trip, window=window)
    served = []
    with pytest.raises(BatchDivergence):
        for _ in range(trip + 1):
            served.append(replay.random())
    assert len(served) == trip
    assert served == [scalar.random() for _ in range(trip)]


def test_trip_truncates_initial_block():
    initial = uniform_block(9, 50)
    replay = ReplayRandom(9, initial=initial, trip_after=20)
    scalar = random.Random(9)
    assert [replay.random() for _ in range(20)] == [scalar.random() for _ in range(20)]
    with pytest.raises(BatchDivergence):
        replay.random()


def test_trip_fires_inside_compiled_draw():
    dist = LogNormalJitter(6e-6, 0.6)
    replay = ReplayRandom(3, trip_after=11, window=16)
    draw = replay.make_draw(dist)
    with pytest.raises(BatchDivergence):
        for _ in range(50):
            draw()


# ----------------------------------------------------------------------
# plans, scoping, blacklist, whole-trial replay
# ----------------------------------------------------------------------


def test_replay_plan_scoping_and_blacklist():
    plan = ReplayPlan(blocks=dict(plan_blocks([5], ["core0.perf"], block_size=32)))
    assert active_replay() is None
    with use_replay(plan):
        assert active_replay() is plan
        registry = RngRegistry(5)
        replayed = registry.stream("core0.perf")
        plain = registry.stream("satin.wakeup")
        faults = registry.stream("faults.injector")
        assert isinstance(replayed, ReplayRandom)
        assert type(plain) is random.Random
        assert type(faults) is random.Random
        # the replayed stream serves the derived scalar sequence
        scalar = random.Random(derive_seed(5, "core0.perf"))
        assert [replayed.random() for _ in range(100)] == [
            scalar.random() for _ in range(100)
        ]
    assert active_replay() is None
    # outside the scope registries are plain again
    assert type(RngRegistry(5).stream("core0.perf")) is random.Random


def test_replayable_names():
    assert replayable("core0.perf") and replayable("prober.visibility")
    for name in REPLAY_BLACKLIST:
        assert not replayable(name)
    assert not replayable("faults.injector")


def test_whole_experiment_replays_bit_exactly():
    """End-to-end: a full E1 trial under a replay plan renders the exact
    bytes (tables, measured values) of the scalar trial."""
    from repro.experiments.report import run_experiment

    scalar = run_experiment("E1", seed=2019)
    plan = ReplayPlan()
    with use_replay(plan):
        replayed = run_experiment("E1", seed=2019)
    assert plan.created, "no streams were replayed"
    assert replayed.rendered == scalar.rendered
    assert replayed.values == scalar.values


def test_lognorm_accept_map_matches_rejection_loop():
    """The vectorized acceptance scan (numpy log + exact near-tie
    re-check) agrees with CPython's per-pair decision on a long window."""
    from repro.sim.batch import _lognorm_accept_map
    from repro.sim.distributions import _NV_MAGICCONST

    u = uniform_block(123, 20000)
    amap = _lognorm_accept_map(u)
    for i in range(0, 19999, 97):
        u2 = 1.0 - u[i + 1]
        z = _NV_MAGICCONST * (u[i] - 0.5) / u2
        assert bool(amap[i]) == (z * z / 4.0 <= -math.log(u2))
