"""Trace recorder tests."""

from repro.sim.tracing import TraceRecorder


def test_emit_and_count():
    trace = TraceRecorder()
    trace.emit(1.0, "cat", "msg", value=1)
    trace.emit(2.0, "cat", "msg2")
    trace.emit(3.0, "other", "msg3")
    assert trace.count("cat") == 2
    assert trace.count("other") == 1
    assert trace.count("missing") == 0
    assert len(trace) == 3


def test_records_filtered_by_category():
    trace = TraceRecorder()
    trace.emit(1.0, "a", "one")
    trace.emit(2.0, "b", "two")
    assert [r.message for r in trace.records("a")] == ["one"]
    assert len(list(trace.records())) == 2


def test_last_record():
    trace = TraceRecorder()
    assert trace.last() is None
    trace.emit(1.0, "a", "one")
    trace.emit(2.0, "b", "two")
    assert trace.last().message == "two"
    assert trace.last("a").message == "one"
    assert trace.last("zzz") is None


def test_disabled_recorder_drops_everything():
    trace = TraceRecorder(enabled=False)
    trace.emit(1.0, "a", "one")
    assert len(trace) == 0


def test_mute_unmute_category():
    trace = TraceRecorder()
    trace.mute("noisy")
    trace.emit(1.0, "noisy", "dropped")
    trace.emit(1.0, "keep", "kept")
    assert trace.count("noisy") == 0 and trace.count("keep") == 1
    trace.unmute("noisy")
    trace.emit(2.0, "noisy", "recorded")
    assert trace.count("noisy") == 1


def test_maxlen_bounds_retention_but_counts_continue():
    trace = TraceRecorder(maxlen=3)
    for i in range(10):
        trace.emit(float(i), "c", f"m{i}")
    assert len(trace) == 3
    assert trace.count("c") == 10
    assert [r.message for r in trace.records()] == ["m7", "m8", "m9"]


def test_listener_invoked():
    trace = TraceRecorder()
    seen = []
    trace.add_listener(lambda r: seen.append(r.message))
    trace.emit(1.0, "c", "hello")
    assert seen == ["hello"]


def test_clear_resets_everything():
    trace = TraceRecorder()
    trace.emit(1.0, "c", "x")
    trace.clear()
    assert len(trace) == 0 and trace.count("c") == 0


def test_record_fields_accessible():
    trace = TraceRecorder()
    trace.emit(1.0, "c", "x", core=3, value=7)
    record = trace.last()
    assert record.fields == {"core": 3, "value": 7}
    assert record.time == 1.0
