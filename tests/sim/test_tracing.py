"""Trace recorder tests."""

from repro.sim.tracing import MAX_LISTENER_FAILURES, TraceRecorder


def test_emit_and_count():
    trace = TraceRecorder()
    trace.emit(1.0, "cat", "msg", value=1)
    trace.emit(2.0, "cat", "msg2")
    trace.emit(3.0, "other", "msg3")
    assert trace.count("cat") == 2
    assert trace.count("other") == 1
    assert trace.count("missing") == 0
    assert len(trace) == 3


def test_records_filtered_by_category():
    trace = TraceRecorder()
    trace.emit(1.0, "a", "one")
    trace.emit(2.0, "b", "two")
    assert [r.message for r in trace.records("a")] == ["one"]
    assert len(list(trace.records())) == 2


def test_last_record():
    trace = TraceRecorder()
    assert trace.last() is None
    trace.emit(1.0, "a", "one")
    trace.emit(2.0, "b", "two")
    assert trace.last().message == "two"
    assert trace.last("a").message == "one"
    assert trace.last("zzz") is None


def test_disabled_recorder_drops_everything():
    trace = TraceRecorder(enabled=False)
    trace.emit(1.0, "a", "one")
    assert len(trace) == 0


def test_mute_keeps_counts_but_not_records():
    trace = TraceRecorder()
    trace.mute("noisy")
    trace.emit(1.0, "noisy", "counted, not retained")
    trace.emit(1.0, "keep", "kept")
    assert trace.count("noisy") == 1 and trace.count("keep") == 1
    assert [r.category for r in trace.records()] == ["keep"]
    trace.unmute("noisy")
    trace.emit(2.0, "noisy", "recorded")
    assert trace.count("noisy") == 2
    assert trace.last("noisy").message == "recorded"


def test_muted_category_fires_no_listeners():
    trace = TraceRecorder()
    seen = []
    trace.add_listener(lambda r: seen.append(r.category))
    trace.mute("noisy")
    trace.emit(1.0, "noisy", "quiet")
    trace.emit(2.0, "keep", "loud")
    assert seen == ["keep"]


def test_drop_discards_counts_and_records():
    trace = TraceRecorder()
    trace.drop("junk")
    trace.emit(1.0, "junk", "gone")
    assert trace.count("junk") == 0 and len(trace) == 0
    trace.undrop("junk")
    trace.emit(2.0, "junk", "back")
    assert trace.count("junk") == 1


def test_maxlen_bounds_retention_but_counts_continue():
    trace = TraceRecorder(maxlen=3)
    for i in range(10):
        trace.emit(float(i), "c", f"m{i}")
    assert len(trace) == 3
    assert trace.count("c") == 10
    assert [r.message for r in trace.records()] == ["m7", "m8", "m9"]


def test_listener_invoked():
    trace = TraceRecorder()
    seen = []
    trace.add_listener(lambda r: seen.append(r.message))
    trace.emit(1.0, "c", "hello")
    assert seen == ["hello"]


def test_listener_exception_does_not_propagate():
    trace = TraceRecorder()
    seen = []

    def bad(_record):
        raise RuntimeError("boom")

    trace.add_listener(bad)
    trace.add_listener(lambda r: seen.append(r.message))
    trace.emit(1.0, "c", "survives")
    assert seen == ["survives"]
    assert trace.count("c") == 1
    assert trace.listener_errors == 1


def test_listener_detached_after_consecutive_failures():
    trace = TraceRecorder()
    calls = []

    def bad(_record):
        calls.append(1)
        raise RuntimeError("boom")

    trace.add_listener(bad)
    for i in range(MAX_LISTENER_FAILURES + 2):
        trace.emit(float(i), "c", "x")
    assert len(calls) == MAX_LISTENER_FAILURES  # detached, not re-invoked
    assert trace.listener_errors == MAX_LISTENER_FAILURES


def test_listener_failure_streak_resets_on_success():
    trace = TraceRecorder()
    state = {"calls": 0}

    def flaky(record):
        state["calls"] += 1
        if record.message == "bad":
            raise RuntimeError("boom")

    trace.add_listener(flaky)
    # Alternate failure/success: the streak never reaches the limit.
    for i in range(2 * MAX_LISTENER_FAILURES):
        trace.emit(float(i), "c", "bad" if i % 2 == 0 else "good")
    assert state["calls"] == 2 * MAX_LISTENER_FAILURES
    assert trace.listener_errors == MAX_LISTENER_FAILURES


def test_listener_errors_counted_in_metrics_registry():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    trace = TraceRecorder(metrics=registry)

    def bad(_record):
        raise RuntimeError("boom")

    trace.add_listener(bad)
    trace.emit(1.0, "c", "x")
    assert registry.counter("trace.listener_errors").value == 1


def test_clear_resets_everything():
    trace = TraceRecorder()
    trace.emit(1.0, "c", "x")
    trace.clear()
    assert len(trace) == 0 and trace.count("c") == 0


def test_record_fields_accessible():
    trace = TraceRecorder()
    trace.emit(1.0, "c", "x", core=3, value=7)
    record = trace.last()
    assert record.fields == {"core": 3, "value": 7}
    assert record.time == 1.0
