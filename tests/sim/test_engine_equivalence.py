"""Golden determinism: the overhauled engine fires the seed's event order.

The tuple-heap engine, the fused run loop and ``schedule_batch`` are pure
re-plumbings of the calendar queue: the fired ``(time, seq)`` sequence must
be bit-identical to the seed-style reference engine (Event objects in the
heap, Python ``__lt__``, separate peek+pop) that ships inside
:mod:`repro.bench` for exactly this comparison.
"""

import hashlib

from repro.bench import ReferenceSimulator, engine_equivalence
from repro.sim.simulator import Simulator


def test_fired_sequence_checksum_matches_seed_reference():
    result = engine_equivalence(n_events=8_000)
    assert result["optimized_checksum"] == result["reference_checksum"]


def _trace(sim, schedule):
    """Run a mixed rescheduling/cancelling workload; hash every firing."""
    trace = hashlib.sha256()
    state = {"i": 0}
    victims = []

    def tick():
        trace.update(sim.now.hex().encode())
        i = state["i"] = state["i"] + 1
        if i >= 400:
            return
        schedule(sim, ((i * 37) % 101 + 1) * 1e-6, tick)
        if i % 5 == 0:
            victims.append(sim.schedule(((i * 53) % 89 + 2) * 1e-6, tick))
            if len(victims) > 3:
                victims.pop(0).cancel()

    schedule(sim, 1e-6, tick)
    sim.run()
    return trace.hexdigest()


def test_schedule_batch_preserves_event_order():
    def via_schedule(sim, delay, callback):
        sim.schedule(delay, callback)

    def via_batch(sim, delay, callback):
        sim.schedule_batch([(delay, callback, ())])

    assert _trace(Simulator(), via_schedule) == _trace(Simulator(), via_batch)
    assert _trace(Simulator(), via_schedule) == _trace(ReferenceSimulator(), via_schedule)
