"""Executor backends + the backend-agnostic supervision loop."""

import threading

import pytest

from repro.errors import CampaignError, ServiceError
from repro.service.executors import (
    ExecMessage,
    ForkExecutor,
    InlineExecutor,
    ThreadExecutor,
    execute_tasks,
    make_executor,
)
from repro.service.queue import FileQueueExecutor

HELPERS = "tests.campaign.pool_helpers"


def tasks_for(seeds, **extra):
    return [{"key": f"t{seed}", "seed": seed, **extra} for seed in seeds]


@pytest.fixture(params=["inline", "thread", "fork"])
def executor(request):
    if request.param == "inline":
        return InlineExecutor()
    if request.param == "thread":
        return ThreadExecutor(jobs=2)
    return ForkExecutor(jobs=2, timeout=10.0)


class TestBackends:
    def test_success_all_backends(self, executor):
        outcomes, cancelled = execute_tasks(
            tasks_for([1, 2, 3]), f"{HELPERS}:double_seed", executor
        )
        assert not cancelled
        assert {k: o.payload["value"] for k, o in outcomes.items()} == {
            "t1": 2, "t2": 4, "t3": 6,
        }
        assert all(o.ok and o.attempts == 1 for o in outcomes.values())

    def test_error_exhausts_attempts_all_backends(self, executor):
        outcomes, cancelled = execute_tasks(
            tasks_for([1]), f"{HELPERS}:always_raise", executor, max_attempts=2
        )
        assert not cancelled
        outcome = outcomes["t1"]
        assert not outcome.ok and outcome.status == "error"
        assert outcome.attempts == 2
        assert "is broken" in outcome.error

    def test_retry_recovers_all_backends(self, executor, tmp_path):
        marker = str(tmp_path / "marker")
        retried = []
        outcomes, _ = execute_tasks(
            [{"key": "t1", "seed": 1, "marker": marker}],
            f"{HELPERS}:fail_once",
            executor,
            max_attempts=2,
            on_retry=lambda task, kind: retried.append((task["key"], kind)),
        )
        assert outcomes["t1"].ok
        assert outcomes["t1"].payload == {"value": "recovered"}
        assert retried == [("t1", "error")]


class TestForkSpecifics:
    def test_timeout_kills_worker(self):
        executor = ForkExecutor(jobs=1, timeout=0.5)
        outcomes, _ = execute_tasks(
            tasks_for([1], hang=True), f"{HELPERS}:hang_on_flag", executor,
            max_attempts=1,
        )
        assert outcomes["t1"].status == "timeout"

    def test_crash_detected(self):
        executor = ForkExecutor(jobs=1, timeout=30.0)
        outcomes, _ = execute_tasks(
            tasks_for([1], crash=True), f"{HELPERS}:exit_on_flag", executor,
            max_attempts=1,
        )
        assert outcomes["t1"].status == "crashed"
        assert "exitcode" in outcomes["t1"].error


class TestSupervisionLoop:
    def test_rejects_duplicate_keys(self):
        with pytest.raises(CampaignError, match="duplicate task keys"):
            execute_tasks(
                [{"key": "x", "seed": 1}, {"key": "x", "seed": 2}],
                f"{HELPERS}:double_seed", InlineExecutor(),
            )

    def test_rejects_zero_attempts(self):
        with pytest.raises(CampaignError, match="max_attempts"):
            execute_tasks(
                tasks_for([1]), f"{HELPERS}:double_seed", InlineExecutor(),
                max_attempts=0,
            )

    def test_empty_task_list(self):
        outcomes, cancelled = execute_tasks(
            [], f"{HELPERS}:double_seed", InlineExecutor()
        )
        assert outcomes == {} and not cancelled

    def test_keyboard_interrupt_cancels(self):
        finalized = []
        outcomes, cancelled = execute_tasks(
            tasks_for([1, 2, 3, 4]),
            f"{HELPERS}:interrupt_at_seed_3",
            InlineExecutor(),
            on_final=lambda task, outcome: finalized.append(task["key"]),
        )
        assert cancelled
        # seeds 1 and 2 completed before the interrupt; 3 and 4 never did.
        assert sorted(outcomes) == ["t1", "t2"]
        assert sorted(finalized) == ["t1", "t2"]

    def test_preset_cancel_event_runs_nothing(self):
        event = threading.Event()
        event.set()
        outcomes, cancelled = execute_tasks(
            tasks_for([1, 2]), f"{HELPERS}:double_seed", ThreadExecutor(jobs=1),
            cancel_event=event,
        )
        assert cancelled and outcomes == {}

    def test_cancel_event_mid_run(self):
        event = threading.Event()
        seen = []

        def on_final(task, outcome):
            seen.append(task["key"])
            event.set()  # cancel as soon as the first trial lands

        outcomes, cancelled = execute_tasks(
            tasks_for([1, 2, 3, 4, 5, 6], delay=0.05),
            f"{HELPERS}:slow_double_seed",
            ThreadExecutor(jobs=1),
            on_final=on_final,
            cancel_event=event,
        )
        assert cancelled
        assert len(outcomes) < 6


class TestMakeExecutor:
    def test_auto_resolution(self):
        assert make_executor("auto", jobs=0).name == "inline"
        assert make_executor("auto", jobs=2).name == "fork"

    def test_explicit_backends(self, tmp_path):
        assert make_executor("inline").name == "inline"
        assert make_executor("thread", jobs=2).name == "thread"
        assert make_executor("fork", jobs=2).name == "fork"
        queue_exec = make_executor("queue", queue_dir=str(tmp_path / "q"))
        assert isinstance(queue_exec, FileQueueExecutor)

    def test_queue_requires_directory(self):
        with pytest.raises(ServiceError, match="queue directory"):
            make_executor("queue")

    def test_unknown_backend(self):
        with pytest.raises(ServiceError, match="unknown executor backend"):
            make_executor("carrier-pigeon")
