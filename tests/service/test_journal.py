"""The job journal: append/replay, compaction, torn-tail tolerance."""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.journal import JobJournal


def job_json(job_id, state="pending", **extra):
    return {
        "job_id": job_id,
        "state": state,
        "spec": {"kind": "campaign", "target": "E7", "seeds": 2},
        "digest": "d" * 16,
        **extra,
    }


class TestAppendReplay:
    def test_round_trip_latest_wins(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa", "pending"))
        journal.append(job_json("job-0002-bb", "pending"))
        journal.append(job_json("job-0001-aa", "running"))
        journal.append(job_json("job-0001-aa", "done"))
        journal.close()

        replay = JobJournal(str(tmp_path)).replay()
        assert replay.replayed_records == 4
        assert replay.truncated_records == 0
        assert [j["job_id"] for j in replay.jobs] == [
            "job-0001-aa", "job-0002-bb",
        ]  # submission order preserved
        assert replay.jobs[0]["state"] == "done"
        assert replay.jobs[1]["state"] == "pending"

    def test_empty_journal_replays_to_nothing(self, tmp_path):
        replay = JobJournal(str(tmp_path)).replay()
        assert replay.jobs == [] and replay.replayed_records == 0

    def test_appends_survive_without_close(self, tmp_path):
        # fsync-per-append means a SIGKILL'd writer loses nothing.
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa"))
        # no close() — simulated crash
        replay = JobJournal(str(tmp_path)).replay()
        assert len(replay.jobs) == 1


class TestTornTail:
    def test_truncated_final_line_skipped_and_counted(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa", "done"))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "job": {"job_id": "job-0002-')  # torn

        fresh = JobJournal(str(tmp_path), registry=MetricsRegistry())
        with pytest.warns(RuntimeWarning, match="torn journal record"):
            replay = fresh.replay()
        assert [j["job_id"] for j in replay.jobs] == ["job-0001-aa"]
        assert replay.truncated_records == 1
        assert fresh.registry.snapshot()["counters"][
            "journal.truncated_records"
        ] == 1

    def test_mid_file_garbage_does_not_stop_replay(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa"))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0003-cc"))
        journal.close()

        with pytest.warns(RuntimeWarning):
            replay = JobJournal(str(tmp_path)).replay()
        assert [j["job_id"] for j in replay.jobs] == [
            "job-0001-aa", "job-0003-cc",
        ]
        assert replay.truncated_records == 1


class TestCompaction:
    def test_compact_truncates_journal_into_snapshot(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        for state in ("pending", "running", "done"):
            journal.append(job_json("job-0001-aa", state))
        journal.compact([job_json("job-0001-aa", "done")])
        assert os.path.getsize(journal.path) == 0
        assert journal.records_since_compact == 0

        replay = JobJournal(str(tmp_path)).replay()
        assert len(replay.jobs) == 1 and replay.jobs[0]["state"] == "done"
        assert replay.replayed_records == 0  # everything came from snapshot

    def test_appends_after_compact_supplement_snapshot(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa", "done"))
        journal.compact([job_json("job-0001-aa", "done")])
        journal.append(job_json("job-0002-bb", "pending"))
        journal.append(job_json("job-0001-aa", "done", recoveries=1))
        journal.close()

        replay = JobJournal(str(tmp_path)).replay()
        assert [j["job_id"] for j in replay.jobs] == [
            "job-0001-aa", "job-0002-bb",
        ]
        assert replay.jobs[0]["recoveries"] == 1  # journal beats snapshot

    def test_maybe_compact_honours_threshold(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        jobs = [job_json("job-0001-aa")]
        for _ in range(3):
            journal.append(jobs[0])
        assert not journal.maybe_compact(jobs, every=5)
        for _ in range(2):
            journal.append(jobs[0])
        assert journal.maybe_compact(jobs, every=5)
        assert journal.compactions == 1

    def test_corrupt_snapshot_falls_back_to_journal(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append(job_json("job-0001-aa", "done"))
        journal.compact([job_json("job-0001-aa", "done")])
        journal.append(job_json("job-0002-bb", "pending"))
        journal.close()
        with open(journal.snapshot_path, "w", encoding="utf-8") as handle:
            handle.write('{"jobs": [{"job_id"')  # torn snapshot

        with pytest.warns(RuntimeWarning, match="corrupt journal snapshot"):
            replay = JobJournal(str(tmp_path)).replay()
        assert replay.snapshot_fallback
        # the snapshot's jobs are gone, but the journal tail still replays
        assert [j["job_id"] for j in replay.jobs] == ["job-0002-bb"]

    def test_snapshot_is_valid_json(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.compact([job_json("job-0001-aa", "done")])
        with open(journal.snapshot_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["v"] == 1 and len(snapshot["jobs"]) == 1
