"""File-queue primitives, the worker loop, and the queue executor."""

import json
import os
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.executors import execute_tasks
from repro.service.queue import (
    FileQueueExecutor,
    claim_next,
    clear_lease,
    clear_stop,
    enqueue_task,
    ensure_queue,
    read_lease,
    run_worker,
    stop_workers,
    write_lease,
    write_result,
)

HELPERS = "tests.campaign.pool_helpers"
FN = f"{HELPERS}:double_seed"
FN_SLOW = f"{HELPERS}:slow_double_seed"


def task_for(seed, **extra):
    return {"key": f"t{seed}", "seed": seed, **extra}


class TestPrimitives:
    def test_ensure_queue_layout(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        for sub in ("tasks", "claimed", "results", "control"):
            assert os.path.isdir(os.path.join(queue_dir, sub))
        ensure_queue(queue_dir)  # idempotent

    def test_enqueue_and_claim(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        enqueue_task(queue_dir, task_for(1), FN)
        claimed = claim_next(queue_dir)
        assert claimed and claimed.endswith("t1.json")
        assert os.path.dirname(claimed).endswith("claimed")
        with open(claimed, encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["task"]["seed"] == 1 and entry["fn_path"] == FN
        # the task is gone: a second claim finds nothing
        assert claim_next(queue_dir) is None

    def test_claims_oldest_first(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        for seed in (2, 1, 3):
            enqueue_task(queue_dir, task_for(seed), FN)
        order = [os.path.basename(claim_next(queue_dir)) for _ in range(3)]
        assert order == ["t1.json", "t2.json", "t3.json"]  # sorted by key

    def test_stop_marker_round_trip(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        stop_workers(queue_dir)
        assert run_worker(queue_dir) == 0  # exits immediately
        clear_stop(queue_dir)
        clear_stop(queue_dir)  # idempotent


class TestWorker:
    def test_drains_tasks_and_writes_results(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        for seed in (1, 2):
            enqueue_task(queue_dir, task_for(seed), FN)
        done = run_worker(queue_dir, max_idle=0.2)
        assert done == 2
        results = sorted(os.listdir(os.path.join(queue_dir, "results")))
        assert results == ["t1.json", "t2.json"]
        with open(os.path.join(queue_dir, "results", "t2.json")) as handle:
            message = json.load(handle)
        assert message["ok"] and message["payload"] == {"value": 4}
        assert os.listdir(os.path.join(queue_dir, "claimed")) == []

    def test_max_tasks_one_is_repro_worker_once(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        for seed in (1, 2):
            enqueue_task(queue_dir, task_for(seed), FN)
        assert run_worker(queue_dir, max_tasks=1) == 1
        assert len(os.listdir(os.path.join(queue_dir, "tasks"))) == 1

    def test_trial_exception_becomes_error_result(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        enqueue_task(queue_dir, task_for(1), f"{HELPERS}:always_raise")
        assert run_worker(queue_dir, max_tasks=1) == 1
        with open(os.path.join(queue_dir, "results", "t1.json")) as handle:
            message = json.load(handle)
        assert not message["ok"] and "is broken" in message["error"]

    def test_stop_event_stops_in_process_worker(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        event = threading.Event()
        event.set()
        assert run_worker(queue_dir, stop_event=event) == 0


class TestFileQueueExecutor:
    def test_local_workers_complete_a_run(self, tmp_path):
        executor = FileQueueExecutor(str(tmp_path / "q"), local_workers=2)
        outcomes, cancelled = execute_tasks(
            [task_for(s) for s in (1, 2, 3, 4)], FN, executor
        )
        assert not cancelled
        assert {k: o.payload["value"] for k, o in outcomes.items()} == {
            "t1": 2, "t2": 4, "t3": 6, "t4": 8,
        }

    def test_external_worker_drains_supervised_queue(self, tmp_path):
        """Supervisor with no local workers + a separate worker thread."""
        queue_dir = str(tmp_path / "q")
        executor = FileQueueExecutor(queue_dir, local_workers=0)
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker, args=(queue_dir,), kwargs={"stop_event": stop},
            daemon=True,
        )
        worker.start()
        try:
            outcomes, cancelled = execute_tasks(
                [task_for(s) for s in (1, 2)], FN, executor
            )
        finally:
            stop.set()
            worker.join(timeout=5.0)
        assert not cancelled and all(o.ok for o in outcomes.values())

    def test_stale_claim_reclaimed_as_timeout(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        executor = FileQueueExecutor(queue_dir, timeout=0.1, claim_grace=0.1)
        executor.start(FN)
        executor.submit(task_for(1))
        # nobody drains the queue; after timeout+grace the claim is abandoned
        messages = []
        deadline = 50
        while not messages and deadline:
            messages = executor.poll(0.1)
            deadline -= 1
        assert messages and messages[0].kind == "timeout"
        assert "reclaimed" in messages[0].error
        assert os.listdir(os.path.join(queue_dir, "tasks")) == []

    def test_cancel_withdraws_own_tasks_only(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        enqueue_task(queue_dir, task_for(99), FN)  # someone else's work
        executor = FileQueueExecutor(queue_dir)
        executor.start(FN)
        executor.submit(task_for(1))
        executor.cancel()
        remaining = os.listdir(os.path.join(queue_dir, "tasks"))
        assert remaining == ["t99.json"]


class TestLeases:
    def test_lease_round_trip(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        assert read_lease(queue_dir, "t1") is None
        write_lease(queue_dir, "t1", ttl=5.0, worker=123)
        lease = read_lease(queue_dir, "t1")
        assert lease["worker"] == 123 and lease["ttl"] == 5.0
        assert lease["expires_unix"] > time.time()
        clear_lease(queue_dir, "t1")
        assert read_lease(queue_dir, "t1") is None
        clear_lease(queue_dir, "t1")  # idempotent

    def test_worker_heartbeat_renews_lease(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        enqueue_task(queue_dir, task_for(1, delay=0.6), FN_SLOW)
        seen = []

        def watch():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                lease = read_lease(queue_dir, "t1")
                if lease is not None:
                    seen.append(lease["renewed_unix"])
                    if len(set(seen)) >= 2:
                        return
                time.sleep(0.02)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        assert run_worker(queue_dir, max_tasks=1, lease_ttl=0.3) == 1
        watcher.join(timeout=10.0)
        assert len(set(seen)) >= 2  # renewed at least once mid-trial
        assert read_lease(queue_dir, "t1") is None  # cleared on completion

    def test_expired_lease_is_reclaimed_without_retry_charge(self, tmp_path):
        registry = MetricsRegistry()
        queue_dir = str(tmp_path / "q")
        executor = FileQueueExecutor(
            queue_dir, timeout=60.0, lease_ttl=0.2, metrics=registry
        )
        executor.start(FN)
        executor.submit(task_for(1))
        # simulate a worker that claimed, leased, then died (SIGKILL)
        claimed = claim_next(queue_dir)
        assert claimed
        write_lease(queue_dir, "t1", ttl=0.05)
        time.sleep(0.1)

        assert executor.poll(timeout=0.2) == []  # reclaim, not a timeout
        assert os.path.exists(os.path.join(queue_dir, "tasks", "t1.json"))
        assert not os.path.exists(claimed)
        assert read_lease(queue_dir, "t1") is None
        counters = registry.snapshot()["counters"]
        assert counters["queue.leases_reclaimed"] == 1
        # the re-enqueued task completes normally on a healthy worker
        assert run_worker(queue_dir, max_tasks=1) == 1
        messages = executor.poll(timeout=5.0)
        assert [m.kind for m in messages] == ["ok"]

    def test_claim_without_lease_reclaimed_by_age(self, tmp_path):
        """Worker died between the claim rename and its first lease write."""
        registry = MetricsRegistry()
        queue_dir = str(tmp_path / "q")
        executor = FileQueueExecutor(
            queue_dir, timeout=60.0, lease_ttl=0.2, metrics=registry
        )
        executor.start(FN)
        executor.submit(task_for(1))
        assert claim_next(queue_dir)  # no lease ever written
        time.sleep(0.3)  # claim mtime now older than the lease TTL
        executor.poll(timeout=0.1)
        assert os.path.exists(os.path.join(queue_dir, "tasks", "t1.json"))
        assert registry.snapshot()["counters"]["queue.leases_reclaimed"] == 1

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        registry = MetricsRegistry()
        queue_dir = str(tmp_path / "q")
        executor = FileQueueExecutor(
            queue_dir, timeout=60.0, lease_ttl=0.2, metrics=registry
        )
        executor.start(FN)
        executor.submit(task_for(1))
        claim_next(queue_dir)
        write_lease(queue_dir, "t1", ttl=60.0)  # healthy heartbeat
        executor.poll(timeout=0.1)
        assert not os.path.exists(os.path.join(queue_dir, "tasks", "t1.json"))
        assert "queue.leases_reclaimed" not in registry.snapshot()["counters"]

    def test_duplicate_late_result_dropped_and_counted(self, tmp_path):
        registry = MetricsRegistry()
        queue_dir = str(tmp_path / "q")
        executor = FileQueueExecutor(queue_dir, metrics=registry)
        executor.start(FN)
        executor.submit(task_for(1))
        assert run_worker(queue_dir, max_tasks=1) == 1
        assert [m.kind for m in executor.poll(timeout=5.0)] == ["ok"]
        # a presumed-dead worker finishes after all and writes again
        assert not write_result(
            queue_dir, "t1", {"key": "t1", "ok": True, "payload": {}}
        )
        executor.poll(timeout=0.1)
        assert os.listdir(os.path.join(queue_dir, "results")) == []
        counters = registry.snapshot()["counters"]
        assert counters["queue.duplicate_results"] == 1

    def test_write_result_reports_existing_file(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        message = {"key": "t1", "ok": True, "payload": {}}
        assert not write_result(queue_dir, "t1", message)
        assert write_result(queue_dir, "t1", message)  # duplicate attempt


class TestStaleStop:
    def test_stale_stop_sentinel_cleared_with_warning(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        stop_workers(queue_dir)
        stop_path = os.path.join(queue_dir, "control", "stop")
        old = time.time() - 3600
        os.utime(stop_path, (old, old))
        with pytest.warns(RuntimeWarning, match="stale stop sentinel"):
            ensure_queue(queue_dir, stale_stop_after=600.0)
        assert not os.path.exists(stop_path)

    def test_fresh_stop_sentinel_is_honoured(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        stop_workers(queue_dir)
        ensure_queue(queue_dir, stale_stop_after=600.0)
        assert os.path.exists(os.path.join(queue_dir, "control", "stop"))

    def test_worker_startup_clears_stale_stop(self, tmp_path):
        queue_dir = ensure_queue(str(tmp_path / "q"))
        stop_workers(queue_dir)
        stop_path = os.path.join(queue_dir, "control", "stop")
        old = time.time() - 3600
        os.utime(stop_path, (old, old))
        enqueue_task(queue_dir, task_for(1), FN)
        with pytest.warns(RuntimeWarning):
            done = run_worker(queue_dir, max_tasks=1)
        assert done == 1  # the stale sentinel did not brick the queue
