"""The HTTP job service: submit, poll, fetch, cancel, cache semantics."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import BackpressureError, JobTransitionError, ServiceError
from repro.service import client
from repro.service.jobs import JobState
from repro.service.server import JobManager, make_server

SPEC = {"kind": "campaign", "target": "E7", "seeds": 2, "jobs": 0,
        "backend": "inline"}


@pytest.fixture
def service(tmp_path):
    server, manager = make_server(
        port=0, cache_dir=str(tmp_path / "cache"), max_workers=1
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", manager
    server.shutdown()
    server.server_close()
    manager.shutdown()


def wait_terminal(url, job_id, timeout=60.0):
    return client.wait_for_job(url, job_id, timeout=timeout, poll=0.05)


class TestJobManager:
    def test_submit_runs_to_done(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        try:
            job, deduped = manager.submit(SPEC)
            assert not deduped and job.state in ("pending", "running")
            deadline = time.monotonic() + 60
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.05)
            assert job.state == "done"
            assert job.result["ran"] == 2 and not job.result["pure_cache_hit"]
            assert job.manifest_path and job.progress["done"] == 2
        finally:
            manager.shutdown()

    def test_job_state_persisted_as_artifact(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        try:
            job, _ = manager.submit(SPEC)
            deadline = time.monotonic() + 60
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.05)
            path = tmp_path / "jobs" / job.job_id / "job.json"
            assert path.is_file()
            persisted = JobState.from_json(json.loads(path.read_text()))
            assert persisted.state == "done"
            assert persisted.digest == job.digest
        finally:
            manager.shutdown()

    def test_inflight_dedupe_by_digest(self, tmp_path):
        # No workers draining: both submissions stay pending -> dedupe hits.
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        manager._stopping.set()  # freeze execution for this test
        first, deduped1 = manager.submit(SPEC)
        second, deduped2 = manager.submit(dict(SPEC, jobs=4, backend="thread"))
        assert not deduped1 and deduped2
        assert second.job_id == first.job_id  # execution fields don't matter
        other, deduped3 = manager.submit(dict(SPEC, seeds=3))
        assert not deduped3 and other.job_id != first.job_id

    def test_cancel_pending_job(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        manager._stopping.set()
        job, _ = manager.submit(SPEC)
        cancelled = manager.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        with pytest.raises(JobTransitionError):
            manager.cancel(job.job_id)

    def test_unknown_job_raises(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        manager._stopping.set()
        with pytest.raises(ServiceError, match="unknown job"):
            manager.get("job-9999-deadbeef")

    def test_bad_spec_rejected(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
        manager._stopping.set()
        with pytest.raises(ServiceError):
            manager.submit({"kind": "campaign"})  # no target


class TestHttpApi:
    def test_submit_poll_fetch_round_trip(self, service):
        url, _ = service
        state = client.submit_job(url, SPEC)
        assert not state["deduped"]
        final = wait_terminal(url, state["job_id"])
        assert final["state"] == "done"
        manifest = client.fetch_manifest(url, state["job_id"])
        assert manifest["cancelled"] is False
        assert len(manifest["trials"]) == 2
        rendered = client.fetch_result(url, state["job_id"])
        assert rendered.startswith("# campaign E7")

    def test_resubmission_is_pure_cache_hit(self, service):
        url, _ = service
        first = wait_terminal(url, client.submit_job(url, SPEC)["job_id"])
        second = wait_terminal(url, client.submit_job(url, SPEC)["job_id"])
        assert second["job_id"] != first["job_id"]
        assert second["result"]["pure_cache_hit"] is True
        assert second["result"]["ran"] == 0
        assert (
            second["result"]["fingerprint_sha256"]
            == first["result"]["fingerprint_sha256"]
        )

    def test_unknown_job_is_404(self, service):
        url, _ = service
        status, body = client.request(url, "/jobs/job-9999-deadbeef")
        assert status == 404 and "unknown job" in body["error"]

    def test_bad_spec_is_400(self, service):
        url, _ = service
        status, body = client.request(
            url, "/jobs", method="POST", payload={"kind": "campaign"}
        )
        assert status == 400 and "target" in body["error"]

    def test_manifest_before_done_is_409(self, service):
        url, manager = service
        manager._stopping.set()  # keep the job pending
        state = client.submit_job(url, SPEC)
        status, body = client.request(url, f"/jobs/{state['job_id']}/manifest")
        assert status == 409 and "no manifest" in body["error"]

    def test_cancel_terminal_job_is_409(self, service):
        url, _ = service
        state = wait_terminal(url, client.submit_job(url, SPEC)["job_id"])
        status, body = client.request(
            url, f"/jobs/{state['job_id']}/cancel", method="POST"
        )
        assert status == 409 and "nothing to cancel" in body["error"]

    def test_healthz_jobs_listing_and_metrics(self, service):
        url, _ = service
        status, health = client.request(url, "/healthz")
        assert status == 200 and health["ok"]
        wait_terminal(url, client.submit_job(url, SPEC)["job_id"])
        status, listing = client.request(url, "/jobs")
        assert status == 200 and len(listing["jobs"]) == 1
        status, metrics = client.request(url, "/metrics")
        assert metrics["counters"]["service.jobs_submitted"] == 1
        assert metrics["counters"]["service.jobs_completed"] == 1
        assert any(
            name.startswith("job.job-") for name in metrics["counters"]
        )

    def test_bad_json_body_is_400(self, service):
        url, _ = service
        req = urllib.request.Request(
            url + "/jobs", data=b"not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            response = urllib.request.urlopen(req)
            status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_submit_during_drain_is_503_and_readyz_flips(self, service):
        url, manager = service
        status, readiness = client.request(url, "/readyz")
        assert status == 200 and readiness["ready"]
        manager.begin_drain()
        status, readiness = client.request(url, "/readyz", retries=0)
        assert status == 503 and readiness["draining"]
        status, health = client.request(url, "/healthz")
        assert status == 200 and health["ok"]  # alive, just not ready
        status, body = client.request(
            url, "/jobs", method="POST", payload=SPEC, retries=0
        )
        assert status == 503 and "draining" in body["error"]

    def test_backpressure_sends_retry_after_header(self, service):
        url, manager = service
        manager._stopping.set()  # freeze: submissions pile up as pending
        for thread in manager._threads:
            thread.join(timeout=5.0)
        manager.max_pending = 1
        client.submit_job(url, SPEC)
        req = urllib.request.Request(
            url + "/jobs", data=json.dumps(dict(SPEC, seeds=3)).encode(),
            method="POST", headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req)
        assert info.value.code == 429
        assert int(info.value.headers["Retry-After"]) >= 1
        body = json.loads(info.value.read().decode("utf-8"))
        assert "pending queue is full" in body["error"]

    def test_chaos_job_serves_survival_matrix(self, service):
        url, _ = service
        spec = {"kind": "chaos", "target": "baseline", "seeds": 1,
                "jobs": 0, "backend": "inline", "duration": 20.0}
        state = wait_terminal(url, client.submit_job(url, spec)["job_id"],
                              timeout=120.0)
        assert state["state"] == "done"
        matrix = client.fetch_matrix(url, state["job_id"])
        assert isinstance(matrix, dict) and matrix
        # campaigns have no matrix
        campaign = wait_terminal(url, client.submit_job(url, SPEC)["job_id"])
        status, body = client.request(url, f"/jobs/{campaign['job_id']}/matrix")
        assert status == 409


def frozen(tmp_path, **kwargs):
    """A JobManager with exited workers, so submissions stay pending."""
    manager = JobManager(cache_dir=str(tmp_path), max_workers=1, **kwargs)
    manager._stopping.set()
    for thread in manager._threads:
        thread.join(timeout=5.0)
    return manager


class TestAdmissionControl:
    def test_pending_queue_depth_cap(self, tmp_path):
        manager = frozen(tmp_path, max_pending=2)
        manager.submit(SPEC)
        manager.submit(dict(SPEC, seeds=3))
        with pytest.raises(BackpressureError) as info:
            manager.submit(dict(SPEC, seeds=4))
        assert info.value.status == 429 and info.value.retry_after >= 1.0
        counters = manager.registry.snapshot()["counters"]
        assert counters["service.jobs_rejected"] == 1
        # an accepted job is never dropped: both queued jobs still exist
        assert len(manager.list()) == 2

    def test_per_client_inflight_cap(self, tmp_path):
        manager = frozen(tmp_path, max_inflight_per_client=1)
        manager.submit(SPEC, client="alice")
        with pytest.raises(BackpressureError, match="'alice'"):
            manager.submit(dict(SPEC, seeds=3), client="alice")
        # other clients are unaffected, and dedupe does not charge the cap
        manager.submit(dict(SPEC, seeds=4), client="bob")
        _, deduped = manager.submit(dict(SPEC, jobs=2), client="alice")
        assert deduped

    def test_draining_rejects_with_503(self, tmp_path):
        manager = frozen(tmp_path)
        manager.begin_drain()
        with pytest.raises(BackpressureError) as info:
            manager.submit(SPEC)
        assert info.value.status == 503


class TestGracefulDrain:
    def test_drain_finishes_running_and_keeps_pending_resumable(self, tmp_path):
        cache = str(tmp_path / "cache")
        manager = JobManager(cache_dir=cache, max_workers=1)
        job, _ = manager.submit(SPEC)
        deadline = time.monotonic() + 30
        while job.state == "pending" and time.monotonic() < deadline:
            time.sleep(0.005)  # wait until the job is genuinely in flight
        assert manager.drain(timeout=60.0)
        assert job.state == "done"  # in-flight work finished, not cancelled
        assert not manager.readiness()["ready"]
        manager.shutdown(cancel_running=False)

        # pending-at-drain jobs come back through --recover
        second = frozen(tmp_path / "cache")
        assert second.get(job.job_id).state == "done"

    def test_pending_job_survives_drain_for_recovery(self, tmp_path):
        cache = str(tmp_path / "cache")
        manager = frozen(cache)
        job, _ = manager.submit(SPEC)
        manager.begin_drain()
        assert manager.drain(timeout=10.0)
        manager.shutdown(cancel_running=False)

        second = JobManager(cache_dir=cache, max_workers=1)
        try:
            recovered = second.get(job.job_id)
            deadline = time.monotonic() + 60
            while not recovered.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert recovered.state == "done" and recovered.recoveries == 1
        finally:
            second.shutdown()

    def test_begin_drain_is_idempotent(self, tmp_path):
        manager = frozen(tmp_path)
        manager.begin_drain()
        manager.begin_drain()
        assert manager.registry.snapshot()["counters"]["service.drains"] == 1
