"""Crash recovery: journal replay in-process and kill -9 end-to-end."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.service import client
from repro.service.queue import FileQueueExecutor, run_worker
from repro.service.server import JobManager

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

SPEC = {"kind": "campaign", "target": "E7", "seeds": 2, "jobs": 0,
        "backend": "inline"}


def run_to_done(manager, spec, timeout=60.0):
    job, _ = manager.submit(spec)
    deadline = time.monotonic() + timeout
    while not job.terminal and time.monotonic() < deadline:
        time.sleep(0.02)
    assert job.state == "done"
    return job


def frozen_manager(cache_dir, **kwargs):
    """A JobManager whose workers have exited: submissions stay pending."""
    manager = JobManager(cache_dir=cache_dir, max_workers=1, **kwargs)
    manager._stopping.set()
    for thread in manager._threads:
        thread.join(timeout=5.0)
    return manager


class TestManagerRecovery:
    def test_terminal_job_restored_verbatim(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = JobManager(cache_dir=cache, max_workers=1)
        job = run_to_done(first, SPEC)
        fingerprint = job.result["fingerprint_sha256"]
        # simulated crash: no shutdown(), just abandon the manager
        first._journal.close()

        second = JobManager(cache_dir=cache, max_workers=1)
        try:
            recovered = second.get(job.job_id)
            assert recovered.state == "done"
            assert recovered.recoveries == 0  # terminal: not re-dispatched
            assert recovered.result["fingerprint_sha256"] == fingerprint
            # manifest + rendered result still served from the store
            manifest = second.manifest(job.job_id)
            assert len(manifest["trials"]) == SPEC["seeds"]
            assert second.read_artifact(job.job_id, "result.txt")
            # the id counter continues past recovered ids
            fresh, _ = second.submit(dict(SPEC, seeds=3))
            assert int(fresh.job_id.split("-")[1]) > int(job.job_id.split("-")[1])
        finally:
            second.shutdown()

    def test_inflight_job_recovered_and_rerun(self, tmp_path):
        cache = str(tmp_path / "cache")
        crashed = frozen_manager(cache)
        job, _ = crashed.submit(SPEC)
        assert job.state == "pending"
        crashed._journal.close()

        # reference fingerprint from an uninterrupted run on a fresh cache
        reference = JobManager(cache_dir=str(tmp_path / "ref"), max_workers=1)
        try:
            expected = run_to_done(reference, SPEC).result["fingerprint_sha256"]
        finally:
            reference.shutdown()

        second = JobManager(cache_dir=cache, max_workers=1)
        try:
            recovered = second.get(job.job_id)
            deadline = time.monotonic() + 60
            while not recovered.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert recovered.state == "done"
            assert recovered.recoveries == 1
            assert recovered.result["fingerprint_sha256"] == expected
            counters = second.registry.snapshot()["counters"]
            assert counters["service.jobs_recovered"] == 1
        finally:
            second.shutdown()

    def test_partial_progress_resumes_warm(self, tmp_path):
        """A re-run after a crash serves finished trials from the store."""
        cache = str(tmp_path / "cache")
        first = JobManager(cache_dir=cache, max_workers=1)
        run_to_done(first, SPEC)  # populates the content-addressed store
        # same grid, wider sweep, crashed while pending
        crashed = frozen_manager(cache)
        job, _ = crashed.submit(dict(SPEC, seeds=4))
        crashed._journal.close()
        first._journal.close()

        second = JobManager(cache_dir=cache, max_workers=1)
        try:
            recovered = second.get(job.job_id)
            deadline = time.monotonic() + 60
            while not recovered.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            assert recovered.state == "done"
            assert recovered.result["cached"] == SPEC["seeds"]  # warm resume
            manifest = second.manifest(job.job_id)
            assert manifest["store"]["index"]["full_scans"] == 0
        finally:
            second.shutdown()

    def test_recover_false_starts_empty(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = frozen_manager(cache)
        first.submit(SPEC)
        first._journal.close()
        second = frozen_manager(cache, recover=False)
        assert second.list() == []

    def test_recovery_emits_lifecycle_event(self, tmp_path):
        cache = str(tmp_path / "cache")
        crashed = frozen_manager(cache)
        job, _ = crashed.submit(SPEC)
        crashed._journal.close()
        second = frozen_manager(cache)
        events = second.events(job.job_id)["events"]
        assert any(e["event"] == "recovered" for e in events)
        assert second.readiness()["ready"]  # replay finished


# ---------------------------------------------------------------------------
# Subprocess kill -9 tests: the real thing, no simulated crashes.
# ---------------------------------------------------------------------------


def _env_with_src():
    env = dict(os.environ)
    parts = [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def start_serve(cache_dir, timeout=30.0):
    """Launch ``repro serve --port 0``; returns (process, base_url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--cache-dir", cache_dir, "--workers", "1"],
        stderr=subprocess.PIPE, cwd=REPO_ROOT, env=_env_with_src(), text=True,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if "listening on http://" in line:
            address = line.split("listening on ")[1].split()[0]
            return process, address
        if process.poll() is not None:
            break
    process.kill()
    raise AssertionError("repro serve did not announce its port")


def http_json(url, path):
    with urllib.request.urlopen(url + path, timeout=30.0) as response:
        return json.loads(response.read().decode("utf-8"))


class TestServeKillRecovery:
    def test_sigkill_mid_campaign_recovers_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        spec = dict(SPEC, seeds=150)

        # Reference: the fingerprint an uninterrupted run produces.
        reference = JobManager(cache_dir=str(tmp_path / "ref"), max_workers=1)
        try:
            expected = run_to_done(
                reference, spec, timeout=120.0
            ).result["fingerprint_sha256"]
        finally:
            reference.shutdown()

        process, url = start_serve(cache)
        try:
            state = client.submit_job(url, spec)
            job_id = state["job_id"]
            # Let a few trials land so the re-run has something to resume.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state = client.job_status(url, job_id)
                if state["progress"]["done"] >= 3 or state["state"] == "done":
                    break
                time.sleep(0.02)
            assert state["state"] in ("running", "done")
            killed_mid_run = state["state"] == "running"
        finally:
            process.kill()  # SIGKILL: no drain, no journal flush
            process.wait(timeout=30)
            process.stderr.close()

        process, url = start_serve(cache)
        try:
            final = client.wait_for_job(url, job_id, timeout=120.0, poll=0.1)
            assert final["state"] == "done"
            assert final["recoveries"] == (1 if killed_mid_run else 0)
            assert final["result"]["fingerprint_sha256"] == expected
            manifest = client.fetch_manifest(url, job_id)
            assert manifest["store"]["index"]["full_scans"] == 0
            # SIGTERM now: graceful drain must exit 0
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
            process.stderr.close()


class TestWorkerKillRecovery:
    FN = "tests.campaign.pool_helpers:slow_double_seed"

    def test_sigkill_worker_reclaims_lease_and_reruns(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        queue_dir = str(tmp_path / "queue")
        registry = MetricsRegistry()
        executor = FileQueueExecutor(
            queue_dir, timeout=60.0, lease_ttl=0.5, metrics=registry
        )
        executor.start(self.FN)
        executor.submit({"key": "t1", "seed": 5, "delay": 30.0})

        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--queue", queue_dir,
             "--lease-ttl", "0.5", "--max-idle", "30"],
            cwd=REPO_ROOT, env=_env_with_src(),
        )
        claim = os.path.join(queue_dir, "claimed", "t1.json")
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(claim) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert os.path.exists(claim), "worker never claimed the task"
        finally:
            worker.kill()  # mid-lease, mid-trial
            worker.wait(timeout=30)

        # Supervisor notices the dead lease and re-enqueues the task.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            assert executor.poll(timeout=0.2) == []
            if os.path.exists(os.path.join(queue_dir, "tasks", "t1.json")):
                break
        counters = registry.snapshot()["counters"]
        assert counters["queue.leases_reclaimed"] == 1

        # A healthy worker re-runs it to completion (fast this time).
        executor._remove_queue_files("t1")
        executor.submit({"key": "t1", "seed": 5, "delay": 0.0})
        assert run_worker(queue_dir, max_tasks=1, lease_ttl=0.5) == 1
        messages = executor.poll(timeout=10.0)
        assert [m.kind for m in messages] == ["ok"]
        assert messages[0].payload == {"value": 10}
        # no stranded leases or claims
        assert os.listdir(os.path.join(queue_dir, "claimed")) == []

        # if the killed worker's attempt had landed late after all, it
        # would be deduped: stage that late result and count it
        from repro.service.queue import write_result

        write_result(queue_dir, "t1", {"key": "t1", "ok": True,
                                       "payload": {"value": 10}})
        executor.poll(timeout=0.2)
        counters = registry.snapshot()["counters"]
        assert counters["queue.duplicate_results"] == 1
        assert os.listdir(os.path.join(queue_dir, "results")) == []
