"""Golden determinism contract across executor backends.

A backend decides only *where* a trial runs, never its payload — so
serial, thread-pool, fork-pool, and file-queue-worker runs of the same
campaign must merge to byte-identical manifests (modulo wall-clock
noise, which is exactly what :func:`manifest_fingerprint` strips) and
identical merged metric sections.
"""

import json

import pytest

from repro.campaign.runner import CampaignSpec, run_campaign
from repro.obs.manifest import load_manifest, manifest_fingerprint

#: Every backend must match the first entry (serial in-process) exactly.
BACKEND_MATRIX = [
    ("inline", dict(jobs=0, backend="inline")),
    ("thread", dict(jobs=2, backend="thread")),
    ("fork", dict(jobs=2, backend="fork")),
    ("queue", dict(jobs=2, backend="queue", queue_workers=2)),
]


def run_backend(tmp_path, name, overrides):
    kwargs = dict(overrides)
    if kwargs.get("backend") == "queue":
        kwargs["queue_dir"] = str(tmp_path / f"queue-{name}")
    spec = CampaignSpec(
        experiment_id="E9",
        seeds=list(range(8)),
        cache_dir=str(tmp_path / f"cache-{name}"),
        **kwargs,
    )
    return run_campaign(spec, progress=False)


@pytest.mark.slow
def test_all_backends_merge_byte_identically(tmp_path):
    """ISSUE acceptance: E9 --seeds 8 under every backend, one answer."""
    fingerprints = {}
    metrics_sections = {}
    rendered = {}
    for name, overrides in BACKEND_MATRIX:
        result = run_backend(tmp_path, name, overrides)
        assert result.total == 8 and result.ran == 8 and not result.cancelled
        manifest = load_manifest(result.manifest_path)
        fingerprints[name] = manifest_fingerprint(manifest)
        metrics_sections[name] = json.dumps(
            manifest["metrics"], sort_keys=True
        )
        rendered[name] = result.rendered

    reference = fingerprints["inline"]
    for name, fingerprint in fingerprints.items():
        assert fingerprint == reference, f"{name} diverged from serial"
    reference_metrics = metrics_sections["inline"]
    for name, section in metrics_sections.items():
        assert section == reference_metrics, f"{name} metrics diverged"
    # the human-facing report is identical too
    reference_rendered = rendered["inline"]
    for name, text in rendered.items():
        assert text == reference_rendered, f"{name} rendering diverged"


def test_thread_and_inline_agree_on_cheap_campaign(tmp_path):
    """Fast (tier-1 default) slice of the golden contract: E7, 4 seeds."""
    fingerprints = []
    for name, overrides in (BACKEND_MATRIX[0], BACKEND_MATRIX[1]):
        kwargs = dict(overrides)
        spec = CampaignSpec(
            experiment_id="E7",
            seeds=[1, 2, 3, 4],
            cache_dir=str(tmp_path / f"cache-{name}"),
            **kwargs,
        )
        result = run_campaign(spec, progress=False)
        fingerprints.append(manifest_fingerprint(load_manifest(result.manifest_path)))
    assert fingerprints[0] == fingerprints[1]
