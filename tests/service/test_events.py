"""Live telemetry endpoints: /metrics content negotiation, /jobs/<id>/events."""

import threading
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service import client
from repro.service.server import JobManager, make_server

SPEC = {"kind": "campaign", "target": "E7", "seeds": 2, "jobs": 0,
        "backend": "inline"}


@pytest.fixture
def service(tmp_path):
    server, manager = make_server(
        port=0, cache_dir=str(tmp_path / "cache"), max_workers=1
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", manager
    server.shutdown()
    server.server_close()
    manager.shutdown()


def finish_job(url, spec=SPEC):
    state = client.submit_job(url, spec)
    return client.wait_for_job(url, state["job_id"], timeout=60.0, poll=0.05)


# ---------------------------------------------------------------------------
# /metrics content negotiation
# ---------------------------------------------------------------------------


def test_metrics_negotiates_prometheus_text(service):
    url, _manager = service
    finish_job(url)
    request = urllib.request.Request(url + "/metrics")
    with urllib.request.urlopen(request, timeout=10.0) as response:
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        text = response.read().decode("utf-8")
    # lifecycle counters and the per-job namespace are exposed
    assert "repro_service_jobs_submitted 1" in text
    assert "repro_service_jobs_completed 1" in text
    assert "repro_job_job_0001_" in text
    assert 'repro_service_job_wall_seconds_bucket{le="+Inf"} 1' in text
    # every sample line is NAME VALUE or NAME{labels} VALUE
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        float(value)
        assert name and " " not in name.split("{", 1)[0]


def test_metrics_still_serves_json_snapshot(service):
    url, _manager = service
    finish_job(url)
    status, body = client.request(url, "/metrics")  # Accept: application/json
    assert status == 200 and isinstance(body, dict)
    assert body["counters"]["service.jobs_submitted"] == 1


def test_cache_hit_counter_in_prometheus_text(service):
    url, _manager = service
    finish_job(url)
    state = finish_job(url)  # resubmit: pure cache hit
    assert state["result"]["pure_cache_hit"]
    text = client.fetch_metrics_text(url)
    assert "repro_service_cache_hits 1" in text


# ---------------------------------------------------------------------------
# /jobs/<id>/events cursor
# ---------------------------------------------------------------------------


def test_events_cursor_covers_job_lifecycle(service):
    url, _manager = service
    state = finish_job(url)
    job_id = state["job_id"]

    page = client.fetch_events(url, job_id)
    assert page["job_id"] == job_id and page["terminal"]
    kinds = [(e["kind"], e["event"]) for e in page["events"]]
    assert ("lifecycle", "submitted") == kinds[0]
    assert ("lifecycle", "running") in kinds
    assert kinds[-1] == ("lifecycle", "done")
    assert ("trial", "done") in kinds
    seqs = [e["seq"] for e in page["events"]]
    assert seqs == sorted(seqs) and page["cursor"] == seqs[-1]
    # progress snapshots are monotonic
    dones = [e["progress"]["done"] for e in page["events"]]
    assert dones == sorted(dones) and dones[-1] == 2

    # cursor semantics: nothing new after the end
    empty = client.fetch_events(url, job_id, cursor=page["cursor"])
    assert empty["events"] == [] and empty["cursor"] == page["cursor"]
    assert not empty["dropped"]

    # partial cursor returns only the tail
    tail = client.fetch_events(url, job_id, cursor=seqs[1])
    assert [e["seq"] for e in tail["events"]] == seqs[2:]


def test_events_unknown_job_404(service):
    url, _manager = service
    status, body = client.request(url, "/jobs/nope/events")
    assert status == 404
    with pytest.raises(ServiceError):
        client.fetch_events(url, "nope")


def test_events_bad_cursor_rejected(service):
    url, _manager = service
    state = finish_job(url)
    status, body = client.request(
        url, f"/jobs/{state['job_id']}/events?cursor=banana"
    )
    assert status == 409
    assert "cursor" in body["error"]


def test_event_log_cap_keeps_seq_and_flags_drop(tmp_path):
    from repro.service import server as server_module

    manager = JobManager(cache_dir=str(tmp_path), max_workers=1)
    # stop the worker so it cannot interleave its own lifecycle/trial
    # events with the synthetic flood below
    manager._stopping.set()
    for thread in manager._threads:
        thread.join(timeout=5.0)
    try:
        job, _ = manager.submit(SPEC)
        # flood the log past the cap with synthetic trial events
        for _ in range(server_module.EVENT_LOG_CAP + 50):
            manager._log_event(job, "trial", "done")
        page = manager.events(job.job_id, cursor=0)
        assert len(page["events"]) == server_module.EVENT_LOG_CAP
        assert page["dropped"] is False  # cursor 0 = full refetch, not behind
        stale = manager.events(job.job_id, cursor=1)
        assert stale["dropped"] is True
        fresh = manager.events(job.job_id, cursor=page["cursor"] - 1)
        assert len(fresh["events"]) == 1 and not fresh["dropped"]
    finally:
        manager.shutdown()
