"""JobSpec/JobState: validation, digests, JSON round-trips, state machine."""

import pytest

from repro.errors import JobTransitionError, ServiceError
from repro.service.jobs import JOB_STATES, JobSpec, JobState


def spec_for(**kwargs):
    defaults = dict(kind="campaign", target="E9", seeds=4)
    defaults.update(kwargs)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ServiceError):
            spec_for(kind="nope")
        with pytest.raises(ServiceError):
            spec_for(target="")
        with pytest.raises(ServiceError):
            spec_for(seeds=0)
        with pytest.raises(ServiceError):
            spec_for(presets=[])

    def test_seed_list(self):
        assert spec_for(seeds=3, seed_base=10).seed_list() == [10, 11, 12]

    def test_digest_ignores_execution_fields(self):
        base = spec_for().config_digest()
        assert spec_for(backend="thread").config_digest() == base
        assert spec_for(jobs=8).config_digest() == base
        assert spec_for(timeout=5.0).config_digest() == base
        assert spec_for(max_attempts=9).config_digest() == base
        assert (
            spec_for(backend="queue", queue_dir="/q", queue_workers=2
                     ).config_digest() == base
        )

    def test_digest_tracks_result_fields(self):
        base = spec_for().config_digest()
        assert spec_for(seeds=5).config_digest() != base
        assert spec_for(target="E7").config_digest() != base
        assert spec_for(full=True).config_digest() != base
        assert spec_for(satin={"tp": 0.5}).config_digest() != base

    def test_chaos_digest_tracks_plan(self):
        chaos = spec_for(kind="chaos", target="figure4")
        assert (
            chaos.config_digest()
            != spec_for(kind="chaos", target="figure4", plan="storm").config_digest()
        )
        # campaign digests never collide with chaos digests on the same name
        assert chaos.config_digest() != spec_for(target="figure4").config_digest()

    def test_json_round_trip(self):
        spec = spec_for(presets=["juno_r1", "generic_octa"], satin={"tp": 1.0})
        clone = JobSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.config_digest() == spec.config_digest()

    def test_adaptive_validation(self):
        with pytest.raises(ServiceError, match="campaign-only"):
            spec_for(kind="chaos", target="figure4", adaptive=True, ci_width=1.0)
        with pytest.raises(ServiceError, match="ci_width"):
            spec_for(adaptive=True)
        with pytest.raises(ServiceError, match="ci_width"):
            spec_for(adaptive=True, ci_width=0.0)

    def test_digest_tracks_planner_fields_only_when_adaptive(self):
        """Planner knobs are result-determining for adaptive jobs (they
        change which seeds are consumed) but must leave non-adaptive
        digests untouched — two users asking for the same fixed grid
        still share a cache entry."""
        base = spec_for().config_digest()
        # non-adaptive: the knobs are inert and excluded
        assert spec_for(ci_width=5.0).config_digest() == base
        assert spec_for(min_seeds=3, round_size=9).config_digest() == base
        # adaptive: every knob moves the digest
        adaptive = spec_for(adaptive=True, ci_width=5.0).config_digest()
        assert adaptive != base
        assert spec_for(adaptive=True, ci_width=6.0).config_digest() != adaptive
        assert (
            spec_for(adaptive=True, ci_width=5.0, ci_quantity="gap").config_digest()
            != adaptive
        )
        assert (
            spec_for(adaptive=True, ci_width=5.0, min_seeds=2).config_digest()
            != adaptive
        )
        assert (
            spec_for(adaptive=True, ci_width=5.0, round_size=8).config_digest()
            != adaptive
        )

    def test_adaptive_spec_round_trips_and_reaches_run_spec(self, tmp_path):
        spec = spec_for(adaptive=True, ci_width=75.0, min_seeds=4, round_size=2)
        clone = JobSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.config_digest() == spec.config_digest()
        run = spec.to_run_spec(str(tmp_path))
        assert run.adaptive is True
        assert run.ci_width == 75.0
        assert run.min_seeds == 4 and run.round_size == 2

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown job spec field"):
            JobSpec.from_json({"kind": "campaign", "target": "E9", "nope": 1})

    def test_to_run_spec_resumes_from_cache(self, tmp_path):
        run = spec_for(seeds=2).to_run_spec(str(tmp_path))
        assert run.resume is True
        assert run.cache_dir == str(tmp_path)
        assert run.seeds == [0, 1]

    def test_to_run_spec_chaos(self, tmp_path):
        run = spec_for(kind="chaos", target="figure4", plan="smoke").to_run_spec(
            str(tmp_path)
        )
        assert run.scenario == "figure4"
        assert run.resume is True


class TestJobState:
    def test_happy_path(self):
        job = JobState(job_id="j1", spec=spec_for())
        assert job.state == "pending" and not job.terminal
        job.advance("running")
        assert job.started_unix is not None
        job.advance("done")
        assert job.terminal and job.finished_unix is not None

    def test_pending_can_cancel_or_fail(self):
        for target in ("cancelled", "failed"):
            job = JobState(job_id="j", spec=spec_for())
            job.advance(target)
            assert job.terminal

    def test_illegal_transitions_raise(self):
        job = JobState(job_id="j", spec=spec_for())
        with pytest.raises(JobTransitionError):
            job.advance("done")  # pending -> done skips running
        job.advance("running")
        with pytest.raises(JobTransitionError):
            job.advance("pending")
        job.advance("cancelled")
        for target in JOB_STATES:
            with pytest.raises((JobTransitionError, ServiceError)):
                job.advance(target)

    def test_unknown_state_rejected(self):
        job = JobState(job_id="j", spec=spec_for())
        with pytest.raises(ServiceError):
            job.advance("exploded")
        with pytest.raises(ServiceError):
            JobState(job_id="j", spec=spec_for(), state="exploded")

    def test_error_recorded_on_failure(self):
        job = JobState(job_id="j", spec=spec_for())
        job.advance("running")
        job.advance("failed", error="boom")
        assert job.error == "boom"

    def test_digest_defaults_from_spec(self):
        job = JobState(job_id="j", spec=spec_for())
        assert job.digest == spec_for().config_digest()

    def test_json_round_trip(self):
        job = JobState(job_id="j", spec=spec_for())
        job.advance("running")
        job.progress = {"total": 4, "done": 2}
        job.result = {"ran": 2}
        clone = JobState.from_json(job.to_json())
        assert clone.job_id == job.job_id
        assert clone.state == "running"
        assert clone.progress == {"total": 4, "done": 2}
        assert clone.result == {"ran": 2}
        assert clone.spec == job.spec
