"""Client resilience: retry/backoff on 429/503, Retry-After, deadlines."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ServiceError
from repro.service.client import (
    _backoff_delay,
    _jitter_fraction,
    request,
    wait_for_job,
)


@pytest.fixture
def stub():
    """An HTTP server that plays back a scripted list of responses.

    Each script entry is ``(status, headers, body_dict)``; the last entry
    repeats once the script is exhausted.  All requests are recorded.
    """
    script = []
    seen = []

    class Handler(BaseHTTPRequestHandler):
        def _respond(self):
            seen.append((self.command, self.path))
            index = min(len(seen) - 1, len(script) - 1)
            status, headers, body = script[index]
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        do_GET = do_POST = _respond

        def log_message(self, fmt, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", script, seen
    server.shutdown()
    server.server_close()


class TestBackoffMath:
    def test_jitter_is_deterministic_and_bounded(self):
        assert _jitter_fraction("abc") == _jitter_fraction("abc")
        assert _jitter_fraction("abc") != _jitter_fraction("abd")
        assert 0.0 <= _jitter_fraction("abc") < 1.0

    def test_delay_grows_and_caps(self):
        delays = [_backoff_delay("/jobs", attempt, base=1.0, cap=4.0)
                  for attempt in range(6)]
        assert all(d == _backoff_delay("/jobs", i, base=1.0, cap=4.0)
                   for i, d in enumerate(delays))  # reproducible
        assert all(0.5 <= d <= 6.0 for d in delays)
        assert max(delays) <= 4.0 * 1.5  # cap × max jitter factor

    def test_retry_after_wins_but_is_capped(self):
        assert _backoff_delay("/jobs", 0, retry_after=3.0) == 3.0
        assert _backoff_delay("/jobs", 0, retry_after=99.0, cap=8.0) == 8.0


class TestRequestRetries:
    def test_retries_429_until_success(self, stub):
        url, script, seen = stub
        script.extend([
            (429, {"Retry-After": "0"}, {"error": "full"}),
            (429, {"Retry-After": "0"}, {"error": "full"}),
            (200, {}, {"ok": True}),
        ])
        sleeps = []
        status, body = request(url, "/jobs", retries=4, sleep=sleeps.append)
        assert status == 200 and body == {"ok": True}
        assert len(seen) == 3
        assert sleeps == [0.0, 0.0]  # Retry-After: 0 honoured verbatim

    def test_retry_after_header_drives_the_delay(self, stub):
        url, script, seen = stub
        script.extend([
            (503, {"Retry-After": "2"}, {"error": "draining"}),
            (200, {}, {"ok": True}),
        ])
        sleeps = []
        status, _ = request(url, "/jobs", retries=1, sleep=sleeps.append)
        assert status == 200 and sleeps == [2.0]

    def test_budget_exhausted_returns_last_error_body(self, stub):
        url, script, seen = stub
        script.append((429, {"Retry-After": "0"}, {"error": "still full"}))
        sleeps = []
        status, body = request(url, "/jobs", retries=2, sleep=sleeps.append)
        assert status == 429 and body["error"] == "still full"
        assert len(seen) == 3 and len(sleeps) == 2

    def test_retries_zero_returns_immediately(self, stub):
        url, script, seen = stub
        script.append((429, {"Retry-After": "9"}, {"error": "full"}))
        status, _ = request(url, "/jobs", retries=0)
        assert status == 429 and len(seen) == 1

    def test_plain_4xx_is_not_retried(self, stub):
        url, script, seen = stub
        script.append((404, {}, {"error": "unknown job"}))
        status, body = request(url, "/jobs/nope", retries=3)
        assert status == 404 and len(seen) == 1

    def test_connection_refused_retries_then_raises(self):
        sleeps = []
        with pytest.raises(ServiceError, match="cannot reach repro service"):
            request("http://127.0.0.1:9", "/jobs", retries=2,
                    timeout=1.0, sleep=sleeps.append)
        assert len(sleeps) == 2  # backed off between connection attempts


class TestWaitForJob:
    def test_returns_on_terminal_state(self, stub):
        url, script, _ = stub
        script.extend([
            (200, {}, {"job_id": "j", "state": "running"}),
            (200, {}, {"job_id": "j", "state": "done"}),
        ])
        sleeps = []
        state = wait_for_job(url, "j", timeout=30.0, poll=0.2,
                             sleep=sleeps.append)
        assert state["state"] == "done"
        assert len(sleeps) == 1
        assert 0.15 <= sleeps[0] <= 0.25  # poll × jitter in [0.75, 1.25]

    def test_deadline_is_real(self, stub):
        url, script, _ = stub
        script.append((200, {}, {"job_id": "j", "state": "running"}))
        with pytest.raises(ServiceError, match="still 'running'"):
            wait_for_job(url, "j", timeout=0.2, poll=0.05)

    def test_polls_are_jittered_per_attempt(self, stub):
        url, script, _ = stub
        script.extend(
            [(200, {}, {"job_id": "j", "state": "running"})] * 5
            + [(200, {}, {"job_id": "j", "state": "done"})]
        )
        sleeps = []
        wait_for_job(url, "j", timeout=60.0, poll=1.0, sleep=sleeps.append)
        assert len(set(sleeps)) == len(sleeps)  # every delay distinct
