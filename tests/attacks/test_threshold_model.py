"""Threshold window model tests (Table II calibration)."""

import random

import pytest

from repro.attacks.threshold_model import ThresholdStats, ThresholdWindowModel
from repro.config import ProberConfig
from repro.errors import AttackError


@pytest.fixture
def model():
    return ThresholdWindowModel(ProberConfig())


def test_stats_require_samples():
    with pytest.raises(AttackError):
        ThresholdStats.from_samples(8.0, [])


def test_measure_shape(model):
    rng = random.Random(1)
    stats = model.measure(8.0, 50, rng)
    assert stats.period == 8.0
    assert len(stats.samples) == 50
    assert stats.minimum <= stats.average <= stats.maximum


def test_averages_match_paper_within_tolerance(model):
    """Calibration check against Table II (25% tolerance, 400 rounds)."""
    paper = {8.0: 2.61e-4, 30.0: 4.21e-4, 300.0: 6.61e-4}
    rng = random.Random(7)
    for period, expected in paper.items():
        stats = model.measure(period, 400, rng)
        assert abs(stats.average - expected) / expected < 0.25


def test_average_grows_with_period(model):
    rng = random.Random(3)
    short = model.measure(8.0, 300, rng)
    long = model.measure(300.0, 300, rng)
    assert long.average > short.average
    # Paper's ratio is ~2.53; ours should be in the same regime.
    assert 1.8 < long.average / short.average < 3.2


def test_worst_case_near_1_8e_3(model):
    """Max over many rounds lands near the paper's 1.8e-3 threshold."""
    rng = random.Random(11)
    worst = max(
        model.measure(period, 50, rng).maximum
        for period in (8.0, 16.0, 30.0, 120.0, 300.0)
    )
    assert 1.0e-3 < worst <= 2.0e-3


def test_single_core_quarter_factor():
    rng = random.Random(5)
    all_cores = ThresholdWindowModel(ProberConfig(), single_core=False)
    one_core = ThresholdWindowModel(ProberConfig(), single_core=True)
    a = all_cores.measure(30.0, 300, rng).average
    b = one_core.measure(30.0, 300, rng).average
    assert abs(b / a - 0.25) < 0.08


def test_draws_in_scales_with_period(model):
    assert model.draws_in(16.0) == 2 * model.draws_in(8.0)
    assert model.draws_in(1e-9) == 1  # floor


def test_fast_path_matches_brute_force():
    """F^-1(U^(1/n)) equals max of n draws, distributionally."""
    config = ProberConfig()
    model = ThresholdWindowModel(config)
    tail = config.threshold_tail
    n = model.draws_in(2.0)
    rng = random.Random(13)
    fast = sorted(model.sample_window_max(2.0, rng) for _ in range(400))
    brute = sorted(
        max(tail.sample(rng) for _ in range(n)) for _ in range(400)
    )
    # Compare medians and upper quartiles.
    assert abs(fast[200] - brute[200]) / brute[200] < 0.15
    assert abs(fast[300] - brute[300]) / brute[300] < 0.2
