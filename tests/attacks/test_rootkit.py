"""Persistent rootkit tests."""

import pytest

from repro.attacks.rootkit import EVIL_SYSCALL_HANDLER, PersistentRootkit
from repro.errors import AttackError
from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID


def test_install_plants_trace(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os).install()
    assert rootkit.active
    assert rich_os.syscall_table.is_hijacked(NR_GETTID)


def test_double_install_rejected(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os).install()
    with pytest.raises(AttackError):
        rootkit.install()


def test_hide_restores_original_bytes(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os).install()
    rootkit.apply_hide()
    assert not rootkit.active
    assert not rich_os.syscall_table.is_hijacked(NR_GETTID)
    assert rich_os.syscall_table.read_entry(NR_GETTID, World.SECURE) == \
        rich_os.syscall_table.original_entry(NR_GETTID)


def test_reattack_replants(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os).install()
    rootkit.apply_hide()
    rootkit.apply_reattack()
    assert rootkit.active
    assert rich_os.syscall_table.is_hijacked(NR_GETTID)
    assert rootkit.hide_count == 1 and rootkit.reattack_count == 1


def test_hide_when_not_active_is_noop(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os)
    rootkit.apply_hide()
    assert rootkit.hide_count == 0


def test_reattack_requires_install(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os)
    rootkit.apply_reattack()
    assert not rootkit.active


def test_trace_bytes_default_is_8(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os)
    assert rootkit.trace_bytes == 8


def test_extra_traces_increase_m(stack):
    machine, rich_os = stack
    vec_offset = rich_os.vector_table.entry_offset(10)
    rootkit = PersistentRootkit(
        machine, rich_os,
        extra_traces=[("vector-hijack", vec_offset, b"\xde\xad\xbe\xef\x00\x00\x00\x00")],
    )
    assert rootkit.trace_bytes == 16


def test_recovery_time_scales_with_traces(stack):
    machine, rich_os = stack
    single = PersistentRootkit(machine, rich_os)
    vec_offset = rich_os.vector_table.entry_offset(10)
    double = PersistentRootkit(
        machine, rich_os,
        evil_handler=EVIL_SYSCALL_HANDLER + 8,
        extra_traces=[("vector", vec_offset, b"\x01" * 8)],
    )
    core = machine.core(0)
    t1 = sum(single.recovery_time(core) for _ in range(20)) / 20
    t2 = sum(double.recovery_time(core) for _ in range(20)) / 20
    assert 1.7 < t2 / t1 < 2.3


def test_recovery_time_near_paper_values(juno_stack):
    machine, rich_os = juno_stack
    rootkit = PersistentRootkit(machine, rich_os)
    little = sum(rootkit.recovery_time(machine.little_core()) for _ in range(30)) / 30
    big = sum(rootkit.recovery_time(machine.big_core()) for _ in range(30)) / 30
    assert abs(little - 5.80e-3) / 5.80e-3 < 0.05
    assert abs(big - 4.96e-3) / 4.96e-3 < 0.05


def test_timeline_and_active_at(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os)
    rootkit.install()           # t=0: active
    machine.sim.schedule(1.0, rootkit.apply_hide)
    machine.sim.schedule(2.0, rootkit.apply_reattack)
    machine.run(until=3.0)
    assert rootkit.active_at(0.5)
    assert not rootkit.active_at(1.5)
    assert rootkit.active_at(2.5)


def test_exposed_during_windows(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os)
    rootkit.install()
    machine.sim.schedule(1.0, rootkit.apply_hide)
    machine.sim.schedule(2.0, rootkit.apply_reattack)
    machine.run(until=3.0)
    assert rootkit.exposed_during(0.0, 0.5)       # active throughout
    assert rootkit.exposed_during(0.9, 1.1)       # active entering window
    assert not rootkit.exposed_during(1.2, 1.8)   # hidden throughout
    assert rootkit.exposed_during(1.5, 2.5)       # reattack inside window
    assert rootkit.exposed_during(2.5, 3.0)       # active entering window


def test_capture_via_syscall_path(stack):
    machine, rich_os = stack
    rootkit = PersistentRootkit(machine, rich_os).install()

    def caller(task):
        yield from rich_os.syscall(task, NR_GETTID)
        rootkit.apply_hide()
        yield from rich_os.syscall(task, NR_GETTID)

    rich_os.spawn("victim", caller)
    machine.run(until=0.1)
    assert rootkit.captures == 1  # only the first call was intercepted
