"""Attacker threshold-learning tests (Section VII-B)."""

import random

import pytest

from repro.attacks.calibration import (
    learn_from_controller,
    learn_from_model,
    recommend_threshold,
)
from repro.attacks.prober import ProbeController
from repro.attacks.threshold_model import ThresholdWindowModel
from repro.config import ProberConfig
from repro.errors import AttackError


def test_learn_from_model_long_study(machine):
    model = ThresholdWindowModel(ProberConfig())
    rng = random.Random(3)
    learned = learn_from_model(model, study_duration=3600.0, rng=rng)
    # An hour of study should surface thresholds near the worst case.
    assert 8e-4 < learned.threshold < 2.2e-3
    assert learned.study_duration == 3600.0


def test_longer_study_learns_larger_threshold(machine):
    model = ThresholdWindowModel(ProberConfig())
    short = learn_from_model(model, 60.0, random.Random(3))
    long = learn_from_model(model, 3600.0, random.Random(3))
    assert long.observed_max >= short.observed_max


def test_learn_from_model_rejects_bad_duration(machine):
    model = ThresholdWindowModel(ProberConfig())
    with pytest.raises(AttackError):
        learn_from_model(model, 0.0, random.Random(1))


def test_margin_applied():
    from repro.attacks.calibration import LearnedThreshold

    learned = LearnedThreshold(observed_max=1e-3, margin=1.5, study_duration=1.0)
    assert learned.threshold == pytest.approx(1.5e-3)


def test_learn_from_controller_requires_recording(machine):
    ctrl = ProbeController(machine, record_staleness=False)
    with pytest.raises(AttackError):
        learn_from_controller(ctrl)


def test_learn_from_controller_requires_samples(machine):
    ctrl = ProbeController(machine, record_staleness=True)
    with pytest.raises(AttackError):
        learn_from_controller(ctrl)


def test_learn_from_controller_uses_max(machine):
    ctrl = ProbeController(machine, record_staleness=True, threshold=10.0)
    ctrl.report(0)
    ctrl.report(1)
    machine.sim.schedule(1e-3, lambda: None)
    machine.run()
    # keep core 0 fresh (and ride out the distrust window) so the final
    # sweep is not self-gated
    for _ in range(16):
        ctrl.report(0)
        machine.sim.schedule(2e-4, lambda: None)
        machine.run()
    ctrl.report(0)
    ctrl.compare(0)
    learned = learn_from_controller(ctrl, margin=2.0)
    assert learned.threshold == pytest.approx(ctrl.max_staleness * 2.0)


def test_recommend_threshold():
    assert recommend_threshold([1.0, 3.0, 2.0], margin=1.1) == pytest.approx(3.3)
    with pytest.raises(AttackError):
        recommend_threshold([])
