"""KProber-I / KProber-II / user-level prober integration tests.

These run against live SATIN instances on the small machine.
"""

import pytest

from repro.attacks.kprober1 import EVIL_IRQ_HANDLER, KProberI, kprober1_threshold
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.user_prober import UserLevelProber
from repro.core.satin import install_satin
from repro.hw.world import World
from repro.kernel.vectors import IRQ_VECTOR_INDEX


def test_kprober2_detects_every_round(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    prober = KProberII(machine, rich_os, oracle=ProberAccelerationOracle(machine))
    prober.install()
    machine.run(until=satin.policy.tp * 12)
    rounds = satin.round_count
    assert rounds >= 8
    assert abs(len(prober.controller.detections) - rounds) <= 1
    assert prober.controller.gated_rounds >= 0


def test_kprober2_no_false_positives_without_introspection(stack):
    machine, rich_os = stack
    prober = KProberII(machine, rich_os).install()
    machine.run(until=2.0)  # dense probing, nothing secure running
    assert prober.controller.detections == []


def test_kprober2_double_install_rejected(stack):
    machine, rich_os = stack
    prober = KProberII(machine, rich_os).install()
    with pytest.raises(Exception):
        prober.install()


def test_kprober2_uninstall_stops_threads(stack):
    machine, rich_os = stack
    prober = KProberII(machine, rich_os).install()
    machine.run(until=0.1)
    prober.uninstall()
    machine.run(until=0.2)
    iterations = prober.iterations
    machine.run(until=0.5)
    assert prober.iterations == iterations  # no further activity


def test_kprober2_detection_latency_is_milliseconds(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    prober = KProberII(machine, rich_os,
                       oracle=ProberAccelerationOracle(machine)).install()
    machine.run(until=satin.policy.tp * 8)
    entries = [r.time for r in machine.trace.records("monitor")
               if r.message == "secure entry begins"]
    detections = sorted(d.time for d in prober.controller.detections)
    latencies = []
    for entry in entries:
        later = [d for d in detections if d >= entry]
        if later:
            latencies.append(later[0] - entry)
    assert latencies
    # Tns_delay ~ Tns_sched + Tns_threshold ~= 2e-3.
    assert all(1e-3 < lat < 4e-3 for lat in latencies)


def test_user_prober_detects_with_higher_threshold(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    prober = UserLevelProber(machine, rich_os,
                             oracle=ProberAccelerationOracle(machine)).install()
    machine.run(until=satin.policy.tp * 10)
    assert satin.round_count >= 6
    assert len(prober.controller.detections) >= satin.round_count - 2


def test_user_prober_unprivileged_no_kernel_trace(stack):
    machine, rich_os = stack
    prober = UserLevelProber(machine, rich_os).install()
    machine.run(until=0.2)
    # No kernel static memory was touched: vectors and syscalls pristine.
    assert not rich_os.vector_table.is_hijacked(IRQ_VECTOR_INDEX)


def test_kprober1_patches_and_restores_vector(stack):
    machine, rich_os = stack
    prober = KProberI(machine, rich_os).install()
    assert rich_os.vector_table.is_hijacked(IRQ_VECTOR_INDEX)
    assert rich_os.vector_table.read_entry(
        IRQ_VECTOR_INDEX, World.SECURE
    ) == EVIL_IRQ_HANDLER
    prober.uninstall()
    assert not rich_os.vector_table.is_hijacked(IRQ_VECTOR_INDEX)


def test_kprober1_reports_via_tick_hooks(stack):
    machine, rich_os = stack
    prober = KProberI(machine, rich_os).install()
    machine.run(until=0.5)
    assert prober.hook_invocations > 50  # spinners keep ticks alive


def test_kprober1_detects_whole_kernel_introspection(juno_stack):
    """Tick-granularity probing catches the ~0.1 s whole-kernel freezes.

    (It cannot catch SATIN's millisecond rounds — they are shorter than
    the tick period, which is exactly the divide-and-conquer guarantee.)
    """
    from repro.secure.baseline import pkm_like

    machine, rich_os = juno_stack
    engine = pkm_like(machine, rich_os, period=1.0, core_index=0).install()
    prober = KProberI(machine, rich_os,
                      observer_cores=[1, 2], target_cores=[0]).install()
    machine.run(until=3.5)
    assert engine.round_count >= 3
    assert len(prober.controller.detections) >= engine.round_count - 1


def test_kprober1_cannot_see_satin_rounds(stack):
    """SATIN's sub-tick-period rounds are invisible to KProber-I."""
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    prober = KProberI(machine, rich_os).install()
    machine.run(until=satin.policy.tp * 8)
    assert satin.round_count >= 5
    assert len(prober.controller.detections) == 0


def test_kprober1_threshold_scales_with_hz():
    assert kprober1_threshold(250) == pytest.approx(0.01)
    assert kprober1_threshold(1000) < kprober1_threshold(100)
