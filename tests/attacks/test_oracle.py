"""Acceleration oracle tests, including dense-vs-accelerated equivalence."""

from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.core.satin import install_satin
from repro.hw.world import World
from tests.conftest import fast_juno_config
from repro.hw.platform import build_machine
from repro.kernel.os import boot_rich_os


def test_no_skip_without_armed_timers(stack):
    machine, _ = stack
    oracle = ProberAccelerationOracle(machine)
    assert oracle.adjust(2e-4) == 2e-4
    assert oracle.skips == 0


def test_skip_to_guard_before_next_fire(stack):
    machine, _ = stack
    oracle = ProberAccelerationOracle(machine, guard_before=0.02)
    machine.core(0).secure_timer.program_wakeup(5.0, World.SECURE)
    suggested = oracle.adjust(2e-4)
    assert abs(suggested - (5.0 - 0.02)) < 1e-6
    assert oracle.skips == 1
    assert oracle.skipped_time > 4.0


def test_no_skip_when_fire_is_imminent(stack):
    machine, _ = stack
    oracle = ProberAccelerationOracle(machine, guard_before=0.02)
    machine.core(0).secure_timer.program_wakeup(machine.now + 0.021, World.SECURE)
    assert oracle.adjust(2e-4) == 2e-4


def test_no_skip_while_secure_world_active(stack):
    machine, _ = stack
    oracle = ProberAccelerationOracle(machine)
    from repro.sim.process import cpu

    def payload(core):
        yield cpu(1e-2)

    machine.core(1).secure_timer.program_wakeup(5.0, World.SECURE)
    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=machine.now + 1e-3)
    assert oracle.adjust(2e-4) == 2e-4


def test_guard_after_keeps_probing_dense(stack):
    machine, _ = stack
    oracle = ProberAccelerationOracle(machine, guard_after=0.05)
    from repro.sim.process import cpu

    def payload(core):
        yield cpu(1e-3)

    machine.core(1).secure_timer.program_wakeup(5.0, World.SECURE)
    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=machine.now + 0.01)  # round over, within guard_after
    assert oracle.adjust(2e-4) == 2e-4


def test_dense_and_accelerated_runs_agree():
    """The oracle must not change what the prober detects."""
    duration = 19.0 * 0.5 * 4  # ~4 rounds

    def run(accelerated):
        machine = build_machine(fast_juno_config(seed=55))
        rich_os = boot_rich_os(machine)
        satin = install_satin(machine, rich_os)
        oracle = ProberAccelerationOracle(machine) if accelerated else None
        prober = KProberII(machine, rich_os, oracle=oracle).install()
        machine.run(until=duration)
        return satin.round_count, [
            (d.suspect_core, round(d.time, 4)) for d in prober.controller.detections
        ]

    dense_rounds, dense_detections = run(accelerated=False)
    accel_rounds, accel_detections = run(accelerated=True)
    assert dense_rounds == accel_rounds
    # Same rounds detected, at (almost) the same times; tiny drifts come
    # from RNG stream consumption differences, so compare per round.
    assert len(dense_detections) == len(accel_detections)
    for (dense_core, dense_time), (accel_core, accel_time) in zip(
        dense_detections, accel_detections
    ):
        assert dense_core == accel_core
        assert abs(dense_time - accel_time) < 2e-3
