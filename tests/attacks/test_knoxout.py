"""Synchronous introspection + KNOX bypass tests (Section VII-A)."""

import pytest

from repro.attacks.knoxout import KnoxBypassAttack
from repro.errors import AttackError
from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID
from repro.secure.sync_introspection import SynchronousIntrospection


@pytest.fixture
def sync(stack):
    machine, rich_os = stack
    return SynchronousIntrospection(machine, rich_os).install()


def test_direct_write_to_syscall_table_is_blocked(stack, sync):
    machine, rich_os = stack
    attack = KnoxBypassAttack(sync)
    offset = rich_os.syscall_table.entry_offset(NR_GETTID)
    assert not attack.naive_write(offset, b"\xde\xad\xbe\xef\x00\x00\x00\x00")
    assert not rich_os.syscall_table.is_hijacked(NR_GETTID)
    assert sync.blocked_count == 1
    assert len(sync.mediations) == 1
    assert not sync.mediations[0].allowed


def test_direct_write_to_vector_table_is_blocked(stack, sync):
    machine, rich_os = stack
    from repro.kernel.vectors import IRQ_VECTOR_INDEX

    attack = KnoxBypassAttack(sync)
    offset = rich_os.vector_table.entry_offset(IRQ_VECTOR_INDEX)
    assert not attack.naive_write(offset, b"\x01" * 8)
    assert not rich_os.vector_table.is_hijacked(IRQ_VECTOR_INDEX)


def test_unprotected_kernel_data_still_writable(stack, sync):
    machine, rich_os = stack
    # A random .text byte is not in the (finite) hook list.
    assert sync.write_as_attacker(64, b"\xcc")


def test_bypass_flips_pte_and_lands_payload(stack, sync):
    machine, rich_os = stack
    attack = KnoxBypassAttack(sync)
    offset = rich_os.syscall_table.entry_offset(NR_GETTID)
    assert attack.bypass_and_write(offset, b"\xde\xad\xbe\xef\x00\x00\x00\x00")
    assert rich_os.syscall_table.is_hijacked(NR_GETTID)
    # The monitor never saw a mediation for the payload write: the PTE
    # flip removed the page from protection, silently.
    payload_mediations = [m for m in sync.mediations if m.offset == offset]
    assert payload_mediations == []
    assert [s.description for s in attack.steps] == [
        "write-what-where flips PTE",
        "payload write lands",
    ]


def test_bypass_requires_installed_protection(stack):
    machine, rich_os = stack
    sync = SynchronousIntrospection(machine, rich_os)
    with pytest.raises(AttackError):
        KnoxBypassAttack(sync)


def test_restore_protection_covers_the_pte_trace(stack, sync):
    machine, rich_os = stack
    attack = KnoxBypassAttack(sync)
    offset = rich_os.syscall_table.entry_offset(NR_GETTID)
    attack.bypass_and_write(offset, b"\x66" * 8)
    page = sync.page_table.page_of(offset)
    assert sync.page_table.is_writable(page)
    attack.restore_protection(offset)
    assert not sync.page_table.is_writable(page)
    # ...but the payload bytes remain: only memory re-reading finds them.
    assert rich_os.syscall_table.is_hijacked(NR_GETTID)


def test_asynchronous_introspection_catches_what_sync_missed(stack, sync):
    """The paper's layered-defence argument, end to end."""
    from repro.core.satin import install_satin

    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    attack = KnoxBypassAttack(sync)
    offset = rich_os.syscall_table.entry_offset(NR_GETTID)
    assert attack.bypass_and_write(offset, b"\x13\x37" * 4)
    assert sync.blocked_count == 0   # sync introspection saw nothing
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    alarmed_areas = {a.area_index for a in satin.alarms.alarms}
    # SATIN catches BOTH traces within one pass: the payload in the
    # syscall table (area 14) *and* the flipped PTE in .data (area 16) —
    # the "preparation trace" the paper warns KProber-I-style kernel
    # modifications leave behind.
    assert 14 in alarmed_areas
    assert 16 in alarmed_areas
