"""TZ-Evader state machine tests (against live SATIN)."""

import pytest

from repro.attacks.evader import EvaderState, TZEvader
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.rootkit import PersistentRootkit
from repro.core.satin import install_satin
from repro.errors import AttackError
from repro.kernel.syscalls import NR_GETTID


def _full_attack(machine, rich_os):
    satin = install_satin(machine, rich_os)
    oracle = ProberAccelerationOracle(machine)
    prober = KProberII(machine, rich_os, oracle=oracle).install()
    rootkit = PersistentRootkit(machine, rich_os)
    evader = TZEvader(machine, rich_os, rootkit, prober.controller).start()
    return satin, prober, rootkit, evader


def test_start_plants_rootkit(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    assert rootkit.active
    assert evader.state is EvaderState.ATTACKING


def test_double_start_rejected(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    with pytest.raises(AttackError):
        evader.start()


def test_hides_on_every_round_and_reattacks(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    machine.run(until=satin.policy.tp * 10)
    rounds = satin.round_count
    assert rounds >= 7
    assert evader.hide_attempts >= rounds - 1
    assert evader.hides_completed == evader.hide_attempts
    assert evader.reattacks >= evader.hides_completed - 1
    assert evader.state is EvaderState.ATTACKING  # back to attacking


def test_hide_latency_is_recovery_dominated(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    machine.run(until=satin.policy.tp * 6)
    assert evader.hide_latencies
    # Recovery is ~5-6 ms plus small scheduling overheads.
    assert all(4e-3 < lat < 1.2e-2 for lat in evader.hide_latencies)


def test_satin_still_detects_despite_evader(fast_juno_stack):
    """The headline result: the race is lost by the attacker."""
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    trace_area_scans = satin.checker.results_for_area(14)
    assert trace_area_scans
    assert all(not scan.match for scan in trace_area_scans)


def test_attack_stays_active_between_rounds(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    machine.run(until=satin.policy.tp * 6)
    # APT semantics: the rootkit spends the overwhelming majority of its
    # time attacking, hiding only for ~10 ms around each round.
    total = machine.now
    hidden_time = evader.hides_completed * 0.02  # generous per-hide bound
    assert hidden_time < 0.2 * total


def test_captures_while_active(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)

    def victim(task):
        while machine.now < satin.policy.tp * 4:
            yield from rich_os.syscall(task, NR_GETTID)
            from repro.sim.process import sleep
            yield sleep(0.01)

    rich_os.spawn("victim", victim)
    machine.run(until=satin.policy.tp * 4.5)
    assert rootkit.captures > 0  # the key-logger did its job


def test_stop_freezes_state_machine(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    machine.run(until=satin.policy.tp * 2)
    evader.stop()
    attempts = evader.hide_attempts
    machine.run(until=satin.policy.tp * 5)
    assert evader.hide_attempts == attempts


def test_summary_keys(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, prober, rootkit, evader = _full_attack(machine, rich_os)
    machine.run(until=satin.policy.tp * 3)
    summary = evader.summary()
    for key in ("state", "detections_seen", "hide_attempts",
                "hides_completed", "reattacks", "captures"):
        assert key in summary
