"""DKOM hiding vs the semantic cross-view checker."""

import pytest

from repro.attacks.dkom import DkomModuleHider
from repro.errors import AttackError
from repro.kernel.modules import ModuleList
from repro.secure.semantic import SemanticChecker, hidden_module_names


@pytest.fixture
def setup(stack):
    machine, rich_os = stack
    modules = ModuleList(rich_os.image)
    for name in ("usbcore", "ext4", "evil_mod"):
        modules.load(name)
    return machine, rich_os, modules


def test_hide_removes_from_list_but_not_slab(setup):
    machine, rich_os, modules = setup
    hider = DkomModuleHider(modules, "evil_mod")
    hider.hide()
    listed = [r.name for r in modules.walk_list()]
    scanned = [r.name for r in modules.scan_slab()]
    assert "evil_mod" not in listed
    assert "evil_mod" in scanned  # still resident


def test_hide_middle_of_list(setup):
    machine, rich_os, modules = setup
    hider = DkomModuleHider(modules, "ext4")
    hider.hide()
    assert [r.name for r in modules.walk_list()] == ["evil_mod", "usbcore"]


def test_double_hide_rejected(setup):
    machine, rich_os, modules = setup
    hider = DkomModuleHider(modules, "evil_mod")
    hider.hide()
    with pytest.raises(AttackError):
        hider.hide()


def test_hide_unknown_module_rejected(setup):
    machine, rich_os, modules = setup
    with pytest.raises(AttackError):
        DkomModuleHider(modules, "ghost").hide()


def test_relink_restores_list(setup):
    machine, rich_os, modules = setup
    hider = DkomModuleHider(modules, "evil_mod")
    hider.hide()
    hider.relink()
    assert "evil_mod" in [r.name for r in modules.walk_list()]
    assert not hider.hidden


def test_semantic_checker_clean_on_honest_kernel(setup):
    machine, rich_os, modules = setup
    checker = SemanticChecker(modules)
    result = checker.check_now()
    assert result.clean
    assert checker.detections == 0


def test_semantic_checker_catches_dkom(setup):
    machine, rich_os, modules = setup
    DkomModuleHider(modules, "evil_mod").hide()
    checker = SemanticChecker(modules)
    result = checker.check_now()
    assert not result.clean
    assert hidden_module_names(result) == ["evil_mod"]
    assert checker.detections == 1


def test_legitimate_unload_raises_no_alarm(setup):
    """rmmod frees the slot, so the cross-view diff stays clean."""
    machine, rich_os, modules = setup
    modules.unload("ext4")
    checker = SemanticChecker(modules)
    assert checker.check_now().clean


def test_timed_check_in_secure_world(setup):
    machine, rich_os, modules = setup
    DkomModuleHider(modules, "evil_mod").hide()
    checker = SemanticChecker(modules)
    outcomes = []

    def payload(core):
        result = yield from checker.run_check(core)
        outcomes.append((result, machine.now))

    start = machine.now
    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.sim.run(max_events=10_000)
    result, end = outcomes[0]
    assert not result.clean
    assert end > start  # the check consumed secure-world time


def test_checker_sees_relinked_module_as_clean(setup):
    machine, rich_os, modules = setup
    hider = DkomModuleHider(modules, "evil_mod")
    hider.hide()
    hider.relink()
    assert SemanticChecker(modules).check_now().clean
