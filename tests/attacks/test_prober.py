"""ProbeBuffer / ProbeController unit tests."""

import pytest

from repro.attacks.prober import ProbeBuffer, ProbeController
from repro.config import ProberConfig
from repro.errors import AttackError
from repro.sim.distributions import Constant

TSLEEP = 2e-4


def _advance(machine, dt):
    machine.sim.schedule(dt, lambda: None)
    machine.run()


def _keep_reporting(ctrl, machine, cores, duration):
    """Simulate probe loops: each core reports every tsleep."""
    steps = max(int(duration / TSLEEP), 1)
    for _ in range(steps):
        _advance(machine, TSLEEP)
        for core in cores:
            ctrl.report(core)


def _fresh_controller(machine, **kwargs):
    """Controller with warmed-up reporters on all requested cores."""
    kwargs.setdefault("config", ProberConfig(cross_core_delay=Constant(0.0)))
    ctrl = ProbeController(machine, **kwargs)
    cores = sorted(set(ctrl.observer_cores) | set(ctrl.target_cores))
    for core in cores:
        ctrl.report(core)
    # Run past the initial distrust window with regular reporting.
    _keep_reporting(ctrl, machine, cores, 3e-3)
    return ctrl


def test_buffer_self_read_is_fresh(machine):
    config = ProberConfig(cross_core_delay=Constant(1.0))  # huge remote delay
    buffer = ProbeBuffer(machine, config)
    buffer.write(0, 123.0)
    assert buffer.read(0, 0) == 123.0  # self-read ignores visibility delay


def test_buffer_remote_read_respects_delay(machine):
    config = ProberConfig(cross_core_delay=Constant(0.5))
    buffer = ProbeBuffer(machine, config)
    buffer.write(1, 10.0)  # written at t=0
    _advance(machine, 1.0)
    buffer.write(1, 20.0)  # written at t=1
    # At t=1, visibility horizon is t-0.5=0.5: only the first entry shows.
    assert buffer.read(0, 1) == 10.0


def test_buffer_read_unknown_core(machine):
    buffer = ProbeBuffer(machine, ProberConfig())
    assert buffer.read(0, 5) is None


def test_controller_requires_observers_and_targets(machine):
    with pytest.raises(AttackError):
        ProbeController(machine, observer_cores=[], target_cores=[0])


def test_detection_on_stale_core(machine):
    ctrl = _fresh_controller(machine, threshold=1e-3)
    # Core 1 goes silent; core 0 keeps its loop running.
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.01)
    detections = ctrl.compare(0)
    assert len(detections) == 1
    assert detections[0].suspect_core == 1
    assert detections[0].staleness >= 0.009


def test_detection_is_edge_triggered(machine):
    ctrl = _fresh_controller(machine, threshold=1e-3)
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.01)
    assert len(ctrl.compare(0)) == 1
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.002)
    assert ctrl.compare(0) == []  # still stale, already reported
    assert len(ctrl.detections) == 1


def test_clear_fires_when_core_reports_again(machine):
    ctrl = _fresh_controller(machine, threshold=1e-3)
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.01)
    ctrl.compare(0)
    assert ctrl.active_suspects == frozenset({1})
    _keep_reporting(ctrl, machine, [0, 1, 2, 3, 4, 5], 5 * TSLEEP)
    ctrl.compare(0)
    assert len(ctrl.clears) == 1
    assert ctrl.clears[0].suspect_core == 1
    assert ctrl.active_suspects == frozenset()


def test_listeners_invoked(machine):
    ctrl = _fresh_controller(machine, threshold=1e-3)
    detected, cleared = [], []
    ctrl.add_detect_listener(detected.append)
    ctrl.add_clear_listener(cleared.append)
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.01)
    ctrl.compare(0)
    _keep_reporting(ctrl, machine, [0, 1, 2, 3, 4, 5], 5 * TSLEEP)
    ctrl.compare(0)
    assert len(detected) == 1 and len(cleared) == 1


def test_self_gating_after_own_oversleep(machine):
    ctrl = _fresh_controller(machine, threshold=1e-3)
    # The OBSERVER vanishes for a long time, then reports and compares.
    _advance(machine, 0.05)
    ctrl.report(0)
    assert ctrl.compare(0) == []  # gated: its own gap is huge
    assert ctrl.gated_rounds >= 1


def test_distrust_window_after_oversleep(machine):
    config = ProberConfig(cross_core_delay=Constant(0.0))
    ctrl = _fresh_controller(machine, config=config, threshold=1e-3)
    _advance(machine, 0.05)  # everyone slept (oracle skip)
    for core in range(6):
        ctrl.report(core)
    # Second iteration: own gap normal, but inside the distrust window.
    _advance(machine, TSLEEP)
    for core in range(6):
        ctrl.report(core)
    before = ctrl.gated_rounds
    assert ctrl.compare(0) == []
    assert ctrl.gated_rounds == before + 1
    # After the window expires, sweeps resume normally.
    _keep_reporting(ctrl, machine, list(range(6)), config.distrust_window + 1e-3)
    assert ctrl.compare(0) == []  # everyone alive: no detections
    assert ctrl.gated_rounds == before + 1  # and no more gating


def test_staleness_recording(machine):
    ctrl = _fresh_controller(machine, threshold=1.0, record_staleness=True)
    _keep_reporting(ctrl, machine, list(range(6)), 2 * TSLEEP)
    ctrl.compare(0)
    assert len(ctrl.staleness_samples) == 5  # one per other core
    assert ctrl.max_staleness < 1e-3  # everyone fresh
    ctrl.reset_staleness_stats()
    assert ctrl.staleness_samples == [] and ctrl.max_staleness == 0.0


def test_pooled_staleness_prevents_re_detection_bounce(machine):
    """After any observer saw the fresh value, no observer re-detects."""
    ctrl = _fresh_controller(machine, threshold=1e-3)
    _keep_reporting(ctrl, machine, [0, 2, 3, 4, 5], 0.01)
    ctrl.compare(0)  # detect suspect 1
    _keep_reporting(ctrl, machine, [0, 1, 2, 3, 4, 5], 5 * TSLEEP)
    ctrl.compare(0)  # clear
    assert len(ctrl.clears) == 1
    assert ctrl.compare(2) == []  # observer 2 does not re-detect
    assert len(ctrl.detections) == 1
