"""Predictive evader tests: fixed schedules are fatal, randomized are not."""

from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.predictor import PredictiveEvader
from repro.attacks.rootkit import PersistentRootkit
from repro.config import SatinConfig
from repro.core.satin import Satin


def _setup(machine, rich_os, random_deviation):
    config = SatinConfig(tgoal=19.0 * 0.5, random_deviation=random_deviation)
    satin = Satin(machine, rich_os, config=config).install()
    prober = KProberII(
        machine, rich_os, oracle=ProberAccelerationOracle(machine)
    ).install()
    rootkit = PersistentRootkit(machine, rich_os)
    evader = PredictiveEvader(machine, rich_os, rootkit, prober.controller).start()
    return satin, evader, rootkit


def test_learns_fixed_period_and_hides_proactively(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, evader, rootkit = _setup(machine, rich_os, random_deviation=False)
    machine.run(until=satin.policy.tp * 20)
    assert evader.predictions_made >= 5
    assert evader.proactive_hides >= 5


def test_proactive_hiding_evades_fixed_schedule(fast_juno_stack):
    """Against a fixed period the trace-area scans all come up clean."""
    machine, rich_os = fast_juno_stack
    satin, evader, rootkit = _setup(machine, rich_os, random_deviation=False)
    while len(satin.checker.results_for_area(14)) < 2:
        machine.run_for(satin.policy.tp)
    # Skip the learning phase (the first few rounds are reactive).
    scans = satin.checker.results_for_area(14)
    post_learning = [s for s in scans if s.round_index >= 5]
    assert all(s.match for s in post_learning)


def test_random_deviation_defeats_prediction(fast_juno_stack):
    """With SATIN's random deviation the estimator never stabilises."""
    machine, rich_os = fast_juno_stack
    satin, evader, rootkit = _setup(machine, rich_os, random_deviation=True)
    while len(satin.checker.results_for_area(14)) < 2:
        machine.run_for(satin.policy.tp)
    assert evader.proactive_hides <= 2  # essentially no stable prediction
    scans = satin.checker.results_for_area(14)
    assert all(not s.match for s in scans)  # every scan catches the hijack


def test_predicted_period_reports_zero_on_jittery_input(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin, evader, rootkit = _setup(machine, rich_os, random_deviation=True)
    machine.run(until=satin.policy.tp * 8)
    assert evader.predicted_period() == 0.0
