"""Interrupt-storm attacker tests (the Section V-B design point)."""

import pytest

from repro.attacks.irq_storm import IrqStormAttacker
from repro.config import SatinConfig
from repro.core.satin import Satin
from repro.errors import AttackError


def test_storm_lifecycle(stack):
    machine, _ = stack
    storm = IrqStormAttacker(machine, interval=1e-4).start()
    with pytest.raises(AttackError):
        storm.start()
    machine.run(until=0.01)
    storm.stop()
    fired = storm.interrupts_fired
    machine.run(until=0.02)
    assert storm.interrupts_fired == fired


def test_storm_requires_positive_interval(stack):
    machine, _ = stack
    with pytest.raises(AttackError):
        IrqStormAttacker(machine, interval=0.0)


def test_storm_only_fires_at_secure_cores(stack):
    machine, _ = stack
    storm = IrqStormAttacker(machine, interval=1e-4).start()
    machine.run(until=0.05)
    assert storm.interrupts_fired == 0  # nobody in the secure world


def test_storm_stretches_preemptible_rounds(fast_juno_stack):
    """Without NS blocking, the storm voids the area-size guarantee."""
    machine, rich_os = fast_juno_stack
    config = SatinConfig(tgoal=19 * 0.5, block_ns_interrupts=False)
    satin = Satin(machine, rich_os, config=config).install()
    IrqStormAttacker(machine, interval=1e-5).start()
    machine.run(until=satin.policy.tp * 6)
    assert satin.round_count >= 4
    window = satin.race.tns_delay + satin.race.tns_recover
    durations = [r.duration for r in satin.checker.results]
    assert max(durations) > window  # guarantee violated
    assert machine.monitor.preemptions > 50


def test_blocking_neutralises_the_storm(fast_juno_stack):
    """With SATIN's NS blocking the same storm changes nothing."""
    machine, rich_os = fast_juno_stack
    satin = Satin(
        machine, rich_os, config=SatinConfig(tgoal=19 * 0.5)
    ).install()
    IrqStormAttacker(machine, interval=1e-5).start()
    machine.run(until=satin.policy.tp * 6)
    assert satin.round_count >= 4
    window = satin.race.tns_delay + satin.race.tns_recover
    durations = [r.duration for r in satin.checker.results]
    assert max(durations) < window
    assert machine.monitor.preemptions == 0
