"""Scheduler stress/property tests: invariants under random task mixes."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hw.platform import build_machine
from repro.kernel.os import boot_rich_os
from repro.kernel.threads import SchedPolicy, TaskState, pin_to
from repro.sim.process import cpu, sleep
from tests.conftest import small_config

task_spec = st.tuples(
    st.sampled_from(["cfs", "fifo"]),
    st.integers(min_value=0, max_value=5),        # core (pinned) or 6=free
    st.floats(min_value=1e-4, max_value=5e-3),    # cpu per step
    st.integers(min_value=1, max_value=6),        # steps
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(specs=st.lists(task_spec, min_size=1, max_size=10),
       seed=st.integers(min_value=0, max_value=1000))
def test_random_task_mixes_complete_with_exact_accounting(specs, seed):
    machine = build_machine(small_config(seed=seed))
    rich_os = boot_rich_os(machine)
    tasks = []
    for i, (policy, core, step_cpu, steps) in enumerate(specs):
        def body(task, _cpu=step_cpu, _steps=steps):
            for _ in range(_steps):
                yield cpu(_cpu)
                yield sleep(1e-4)

        affinity = pin_to(core) if core < 6 else None
        if policy == "fifo":
            task = rich_os.spawn_realtime(f"t{i}", body, priority=50,
                                          affinity=affinity)
        else:
            task = rich_os.spawn(f"t{i}", body, affinity=affinity)
        tasks.append((task, step_cpu * steps))

    machine.run(until=10.0)
    for task, expected_cpu in tasks:
        assert task.state is TaskState.EXITED
        assert task.total_cpu == pytest.approx(expected_cpu, rel=1e-6)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000))
def test_one_task_per_core_at_any_instant(seed):
    """Sampling invariant: a core never runs two tasks at once."""
    machine = build_machine(small_config(seed=seed))
    rich_os = boot_rich_os(machine)
    running_states = []

    def spawn_all():
        for i in range(10):
            def body(task):
                for _ in range(20):
                    yield cpu(5e-4)

            rich_os.spawn(f"w{i}", body)

    spawn_all()

    def sample():
        sched = rich_os.scheduler
        currents = [
            rq.current for rq in sched.run_queues if rq.current is not None
        ]
        running_states.append(len(set(id(t) for t in currents)) == len(currents))
        # every RUNNING task is some queue's current
        running = [t for t in sched.tasks if t.state is TaskState.RUNNING]
        running_states.append(
            all(any(rq.current is t for rq in sched.run_queues) for t in running)
        )

    for k in range(20):
        machine.sim.schedule(1e-3 * (k + 1), sample)
    machine.run(until=0.5)
    assert all(running_states)


def test_hundred_tasks_drain(stack):
    machine, rich_os = stack
    done = []

    def body(task):
        yield cpu(2e-4)
        done.append(task.tid)

    for i in range(100):
        rich_os.spawn(f"burst-{i}", body)
    machine.run(until=2.0)
    assert len(done) == 100


def test_fifo_starves_cfs_until_it_sleeps(stack):
    """SCHED_FIFO semantics: a spinning RT task monopolises its core."""
    machine, rich_os = stack
    cfs_progress = []

    def cfs_body(task):
        yield cpu(1e-3)
        cfs_progress.append(machine.now)

    def rt_body(task):
        yield cpu(0.05)  # solid RT burn, no sleeping

    rich_os.spawn_realtime("rt", rt_body, affinity=pin_to(0))
    machine.run(until=1e-3)
    rich_os.spawn("cfs", cfs_body, affinity=pin_to(0))
    machine.run(until=0.2)
    assert cfs_progress and cfs_progress[0] > 0.05
