"""System call table tests."""

import pytest

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.syscalls import (
    NR_GETTID,
    SYSCALL_COUNT,
    default_handler_addr,
)


def test_defaults_installed(rich_os):
    table = rich_os.syscall_table
    assert table.read_entry(0, World.NORMAL) == default_handler_addr(0)
    assert table.read_entry(NR_GETTID, World.NORMAL) == default_handler_addr(NR_GETTID)


def test_entry_offsets_are_8_bytes_apart(rich_os):
    table = rich_os.syscall_table
    assert table.entry_offset(1) - table.entry_offset(0) == 8


def test_table_lives_in_area_14(rich_os):
    assert rich_os.syscall_table.section_index == 14


def test_hijack_and_detection(rich_os):
    table = rich_os.syscall_table
    assert not table.is_hijacked(NR_GETTID)
    table.write_entry(NR_GETTID, 0xDEAD, World.NORMAL)
    assert table.is_hijacked(NR_GETTID)
    assert table.read_entry(NR_GETTID, World.SECURE) == 0xDEAD
    table.write_entry(NR_GETTID, table.original_entry(NR_GETTID), World.NORMAL)
    assert not table.is_hijacked(NR_GETTID)


def test_out_of_range_syscall(rich_os):
    table = rich_os.syscall_table
    with pytest.raises(KernelError):
        table.entry_offset(-1)
    with pytest.raises(KernelError):
        table.entry_offset(SYSCALL_COUNT)


def test_entry_addr_physical(rich_os):
    table = rich_os.syscall_table
    assert table.entry_addr(0) == rich_os.image.addr_of(table.table_offset)


def test_original_entries_preserved(rich_os):
    table = rich_os.syscall_table
    for nr in (0, 63, NR_GETTID, SYSCALL_COUNT - 1):
        assert table.original_entry(nr) == default_handler_addr(nr)
