"""Loaded-module list tests."""

import pytest

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.modules import LIST_END, ModuleList


@pytest.fixture
def modules(rich_os):
    return ModuleList(rich_os.image)


def test_empty_list(modules):
    assert modules.read_head() == LIST_END
    assert modules.walk_list() == []
    assert modules.scan_slab() == []


def test_load_pushes_to_head(modules):
    modules.load("alpha")
    modules.load("beta")
    names = [r.name for r in modules.walk_list()]
    assert names == ["beta", "alpha"]


def test_load_allocates_slots(modules):
    a = modules.load("alpha")
    b = modules.load("beta")
    assert a.slot != b.slot
    assert a.live and b.live


def test_scan_matches_walk_for_honest_kernel(modules):
    for name in ("a", "b", "c"):
        modules.load(name)
    walked = {r.offset for r in modules.walk_list()}
    scanned = {r.offset for r in modules.scan_slab()}
    assert walked == scanned


def test_unload_unlinks_and_frees(modules):
    modules.load("alpha")
    modules.load("beta")
    modules.unload("alpha")
    assert [r.name for r in modules.walk_list()] == ["beta"]
    assert [r.name for r in modules.scan_slab()] == ["beta"]  # slot freed


def test_unload_head(modules):
    modules.load("alpha")
    modules.load("beta")
    modules.unload("beta")
    assert [r.name for r in modules.walk_list()] == ["alpha"]


def test_unload_missing_raises(modules):
    with pytest.raises(KernelError):
        modules.unload("ghost")


def test_slot_reuse_after_unload(modules):
    first = modules.load("alpha")
    modules.unload("alpha")
    second = modules.load("beta")
    assert second.slot == first.slot


def test_capacity_exhaustion():
    pass  # covered indirectly; explicit version below


def test_capacity_enforced(rich_os):
    modules = ModuleList(rich_os.image, capacity=2)
    modules.load("a")
    modules.load("b")
    with pytest.raises(KernelError):
        modules.load("c")


def test_long_name_rejected(modules):
    with pytest.raises(KernelError):
        modules.load("x" * 16)


def test_cycle_detection(modules):
    record = modules.load("alpha")
    # Corrupt: point the record at itself.
    modules._write_record(record.slot, "alpha", record.offset, record.flags,
                          World.NORMAL)
    with pytest.raises(KernelError):
        modules.walk_list()


def test_records_visible_to_secure_world(modules):
    modules.load("alpha")
    assert [r.name for r in modules.walk_list(World.SECURE)] == ["alpha"]
