"""Run queue data structure tests."""

import pytest

from repro.errors import SchedulingError
from repro.kernel.sched.runqueue import CoreRunQueue
from repro.kernel.threads import SchedPolicy, Task


def make_task(name, policy=SchedPolicy.CFS, priority=0, vruntime=0.0):
    task = Task(name, lambda t: iter(()), policy=policy, priority=priority)
    task.vruntime = vruntime
    return task


def test_fifo_before_cfs():
    rq = CoreRunQueue(0)
    cfs = make_task("cfs")
    fifo = make_task("fifo", SchedPolicy.FIFO, priority=1)
    rq.enqueue(cfs)
    rq.enqueue(fifo)
    assert rq.pick_next() is fifo
    assert rq.pick_next() is cfs


def test_fifo_highest_priority_wins():
    rq = CoreRunQueue(0)
    low = make_task("low", SchedPolicy.FIFO, priority=10)
    high = make_task("high", SchedPolicy.FIFO, priority=90)
    rq.enqueue(low)
    rq.enqueue(high)
    assert rq.pick_next() is high


def test_fifo_same_priority_is_fifo_order():
    rq = CoreRunQueue(0)
    first = make_task("first", SchedPolicy.FIFO, priority=50)
    second = make_task("second", SchedPolicy.FIFO, priority=50)
    rq.enqueue(first)
    rq.enqueue(second)
    assert rq.pick_next() is first


def test_cfs_smallest_vruntime_wins():
    rq = CoreRunQueue(0)
    behind = make_task("behind", vruntime=1.0)
    ahead = make_task("ahead", vruntime=2.0)
    rq.enqueue(ahead)
    rq.enqueue(behind)
    assert rq.pick_next() is behind


def test_cfs_clock_floors_new_vruntime():
    rq = CoreRunQueue(0)
    rq.cfs_clock = 5.0
    stale = make_task("stale", vruntime=0.0)
    rq.enqueue(stale)
    assert stale.vruntime == 5.0


def test_double_enqueue_rejected():
    rq = CoreRunQueue(0)
    task = make_task("t")
    rq.enqueue(task)
    with pytest.raises(SchedulingError):
        rq.enqueue(task)


def test_enqueue_current_rejected():
    rq = CoreRunQueue(0)
    task = make_task("t")
    rq.current = task
    with pytest.raises(SchedulingError):
        rq.enqueue(task)


def test_remove():
    rq = CoreRunQueue(0)
    a, b = make_task("a"), make_task("b", SchedPolicy.FIFO, priority=1)
    rq.enqueue(a)
    rq.enqueue(b)
    rq.remove(a)
    rq.remove(b)
    assert rq.pick_next() is None


def test_load_and_busy():
    rq = CoreRunQueue(0)
    assert not rq.busy and rq.load == 0
    task = make_task("t")
    rq.enqueue(task)
    assert rq.busy and rq.load == 1
    rq.pick_next()
    rq.current = task
    assert rq.busy and rq.load == 1


def test_max_fifo_priority():
    rq = CoreRunQueue(0)
    assert rq.max_fifo_priority() is None
    rq.enqueue(make_task("a", SchedPolicy.FIFO, priority=3))
    rq.enqueue(make_task("b", SchedPolicy.FIFO, priority=7))
    assert rq.max_fifo_priority() == 7


def test_enqueue_sets_core_index():
    rq = CoreRunQueue(4)
    task = make_task("t")
    rq.enqueue(task)
    assert task.core_index == 4
