"""Page table / protected write path tests."""

import pytest

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.paging import (
    PAGE_SIZE,
    PTE_WRITABLE,
    PageTable,
    ProtectedKernelMemory,
)


@pytest.fixture
def table(rich_os):
    return PageTable(rich_os.image)


def test_page_count_covers_image(table, rich_os):
    assert table.page_count * PAGE_SIZE >= rich_os.image.size
    assert (table.page_count - 1) * PAGE_SIZE < rich_os.image.size


def test_all_pages_writable_by_default(table):
    for page in (0, table.page_count // 2, table.page_count - 1):
        assert table.is_writable(page)


def test_page_of(table):
    assert table.page_of(0) == 0
    assert table.page_of(PAGE_SIZE) == 1
    assert table.page_of(PAGE_SIZE - 1) == 0
    with pytest.raises(KernelError):
        table.page_of(-1)


def test_pte_offset_bounds(table):
    with pytest.raises(KernelError):
        table.pte_offset(table.page_count)


def test_set_writable_roundtrip(table):
    table.set_writable(5, False, World.SECURE)
    assert not table.is_writable(5)
    table.set_writable(5, True, World.SECURE)
    assert table.is_writable(5)


def test_protect_range_covers_straddling_pages(table):
    pages = table.protect_range(PAGE_SIZE - 10, 20, World.SECURE)
    assert pages == [0, 1]
    assert not table.is_writable(0) and not table.is_writable(1)


def test_ptes_live_inside_kernel_data(table, rich_os):
    """The crux of the bypass: the PTEs are ordinary kernel bytes."""
    section = rich_os.image.section_at(table.pte_offset(0))
    assert section.name == ".data"


def test_protected_memory_allows_writable_pages(rich_os, table):
    mem = ProtectedKernelMemory(rich_os.image, table)
    assert mem.write(100, b"ok", World.NORMAL)
    assert rich_os.image.read(100, 2, World.NORMAL) == b"ok"


def test_protected_memory_blocks_readonly_pages(rich_os, table):
    mem = ProtectedKernelMemory(rich_os.image, table)
    before = rich_os.image.read(100, 4, World.NORMAL)
    table.set_writable(0, False, World.SECURE)
    assert not mem.write(100, b"nope", World.NORMAL)
    assert rich_os.image.read(100, 4, World.NORMAL) == before
    assert mem.blocked_writes == 1


def test_secure_world_bypasses_protection(rich_os, table):
    mem = ProtectedKernelMemory(rich_os.image, table)
    table.set_writable(0, False, World.SECURE)
    assert mem.write(100, b"sw", World.SECURE)


def test_mediator_can_allow(rich_os, table):
    mem = ProtectedKernelMemory(rich_os.image, table)
    table.set_writable(0, False, World.SECURE)
    mem.mediator = lambda page, offset, data: True
    assert mem.write(100, b"yes", World.NORMAL)
    assert mem.mediated_writes == 1
    assert mem.blocked_writes == 0
