"""Synthetic System.map tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    PAPER_AREA_COUNT,
    PAPER_KERNEL_SIZE,
    PAPER_LARGEST_AREA,
    PAPER_SMALLEST_AREA,
)
from repro.errors import KernelError
from repro.kernel.systemmap import (
    SYSCALL_SECTION_INDEX,
    VECTOR_SECTION_INDEX,
    SystemMap,
    synthesize_section_sizes,
)


@pytest.fixture(scope="module")
def system_map():
    return SystemMap()


def test_paper_constraints(system_map):
    sizes = [s.size for s in system_map]
    assert len(sizes) == PAPER_AREA_COUNT == 19
    assert sum(sizes) == PAPER_KERNEL_SIZE == 11_916_240
    assert max(sizes) == PAPER_LARGEST_AREA == 876_616
    assert min(sizes) == PAPER_SMALLEST_AREA == 431_360


def test_sections_are_contiguous(system_map):
    cursor = 0
    for section in system_map:
        assert section.offset == cursor
        cursor = section.end
    assert cursor == system_map.total_size


def test_section_at_every_boundary(system_map):
    for section in system_map:
        assert system_map.section_at(section.offset) is section
        assert system_map.section_at(section.end - 1) is section


def test_section_at_out_of_range(system_map):
    with pytest.raises(KernelError):
        system_map.section_at(-1)
    with pytest.raises(KernelError):
        system_map.section_at(system_map.total_size)


def test_syscall_table_in_area_14(system_map):
    offset = system_map.symbol("sys_call_table")
    assert system_map.section_at(offset).index == SYSCALL_SECTION_INDEX == 14


def test_vectors_in_vector_section(system_map):
    offset = system_map.symbol("vectors")
    assert system_map.section_at(offset).index == VECTOR_SECTION_INDEX


def test_symbols(system_map):
    assert system_map.symbol("_text") == 0
    assert system_map.symbol("_end") == system_map.total_size
    with pytest.raises(KernelError):
        system_map.symbol("not_a_symbol")


def test_section_by_name(system_map):
    assert system_map.section_by_name(".text").index == 1
    with pytest.raises(KernelError):
        system_map.section_by_name(".missing")


def test_deterministic():
    a = SystemMap()
    b = SystemMap()
    assert [s.size for s in a] == [s.size for s in b]


def test_sizes_are_8_byte_friendly(system_map):
    # Interior sections are 8-byte aligned by construction except the
    # residue carrier; the sum is exact regardless.
    assert sum(s.size for s in system_map) == PAPER_KERNEL_SIZE


def test_bad_count_rejected():
    with pytest.raises(KernelError):
        synthesize_section_sizes(count=7)


@settings(max_examples=25, deadline=None)
@given(scale=st.integers(min_value=2, max_value=40))
def test_scaled_maps_keep_shape(scale):
    total = PAPER_KERNEL_SIZE // scale
    sm = SystemMap(total=total)
    sizes = [s.size for s in sm]
    assert sum(sizes) == total
    assert len(sizes) == 19
    # The syscall/vector tables still fit inside their sections.
    sys_off = sm.symbol("sys_call_table")
    assert sm.section_at(sys_off).index == 14
    assert sys_off + 440 * 8 <= sm.section_at(sys_off).end
    vec_off = sm.symbol("vectors")
    assert vec_off + 16 * 8 <= sm.section_at(vec_off).end
