"""Exception vector table tests."""

import pytest

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.vectors import (
    IRQ_VECTOR_INDEX,
    VECTOR_NAMES,
    default_vector_addr,
)


def test_defaults_installed(rich_os):
    vectors = rich_os.vector_table
    for index in range(len(VECTOR_NAMES)):
        assert vectors.read_entry(index, World.NORMAL) == default_vector_addr(index)


def test_irq_vector_index_is_lower_el_a64_irq():
    assert VECTOR_NAMES[IRQ_VECTOR_INDEX] == "lower_el_a64_irq"


def test_hijack_roundtrip(rich_os):
    vectors = rich_os.vector_table
    vectors.write_entry(IRQ_VECTOR_INDEX, 0xBAD, World.NORMAL)
    assert vectors.is_hijacked(IRQ_VECTOR_INDEX)
    vectors.write_entry(
        IRQ_VECTOR_INDEX, vectors.original_entry(IRQ_VECTOR_INDEX), World.NORMAL
    )
    assert not vectors.is_hijacked(IRQ_VECTOR_INDEX)


def test_vbar_points_to_table(rich_os):
    vectors = rich_os.vector_table
    assert vectors.vbar_value == rich_os.image.addr_of(vectors.table_offset)
    # Every core's VBAR_EL1 was set at boot.
    for core in rich_os.machine.cores:
        assert core.registers.read("VBAR_EL1", World.NORMAL) == vectors.vbar_value


def test_vector_section_differs_from_syscall_section(rich_os):
    assert rich_os.vector_table.section_index != rich_os.syscall_table.section_index


def test_out_of_range_vector(rich_os):
    with pytest.raises(KernelError):
        rich_os.vector_table.entry_offset(16)
    with pytest.raises(KernelError):
        rich_os.vector_table.entry_offset(-1)
