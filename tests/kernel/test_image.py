"""Kernel image tests."""

import pytest

from repro.config import KernelConfig
from repro.errors import MemoryAccessError
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World
from repro.kernel.image import KernelImage
from tests.conftest import SMALL_KERNEL_SIZE


@pytest.fixture
def image():
    memory = PhysicalMemory()
    memory.add_region("dram", 0x8000_0000, 32 * 1024 * 1024)
    config = KernelConfig(image_size=SMALL_KERNEL_SIZE)
    return KernelImage(memory, config)


def test_content_is_deterministic(image):
    memory2 = PhysicalMemory()
    memory2.add_region("dram", 0x8000_0000, 32 * 1024 * 1024)
    image2 = KernelImage(memory2, KernelConfig(image_size=SMALL_KERNEL_SIZE))
    assert image.read(0, 4096, World.NORMAL) == image2.read(0, 4096, World.NORMAL)


def test_different_seed_changes_content():
    memory = PhysicalMemory()
    memory.add_region("dram", 0x8000_0000, 32 * 1024 * 1024)
    other = KernelImage(
        memory, KernelConfig(image_size=SMALL_KERNEL_SIZE, image_seed=7)
    )
    memory2 = PhysicalMemory()
    memory2.add_region("dram", 0x8000_0000, 32 * 1024 * 1024)
    default = KernelImage(memory2, KernelConfig(image_size=SMALL_KERNEL_SIZE))
    assert other.read(0, 1024, World.NORMAL) != default.read(0, 1024, World.NORMAL)


def test_addr_offset_roundtrip(image):
    addr = image.addr_of(1234)
    assert image.offset_of(addr) == 1234


def test_symbol_addr(image):
    sym = image.system_map.symbol("sys_call_table")
    assert image.symbol_addr("sys_call_table") == image.base + sym


def test_write_visible_to_both_worlds(image):
    image.write(100, b"evil", World.NORMAL)
    assert image.read(100, 4, World.SECURE) == b"evil"


def test_view_matches_read(image):
    view = image.view(0, 512, World.SECURE)
    assert bytes(view) == image.read(0, 512, World.NORMAL)


def test_section_lookup(image):
    section = image.section_at(0)
    assert section.index == 0


def test_read_past_dram_raises(image):
    with pytest.raises(MemoryAccessError):
        image.read(64 * 1024 * 1024, 8, World.NORMAL)


def test_size_matches_config(image):
    assert image.size == SMALL_KERNEL_SIZE
