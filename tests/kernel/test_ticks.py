"""Timer tick (HZ / NO_HZ_IDLE) tests."""

from repro.kernel.threads import pin_to
from repro.sim.process import cpu


def test_no_ticks_while_idle(stack):
    machine, rich_os = stack
    machine.run(until=0.5)
    assert rich_os.ticks.tick_count == 0


def test_ticks_at_hz_while_busy(stack):
    machine, rich_os = stack

    def hog(task):
        while machine.now < 0.5:
            yield cpu(1e-3)

    rich_os.spawn("hog", hog, affinity=pin_to(0))
    machine.run(until=0.5)
    hz = machine.config.kernel.hz
    expected = 0.5 * hz
    assert 0.8 * expected <= rich_os.ticks.tick_count <= 1.2 * expected


def test_ticks_stop_when_work_drains(stack):
    machine, rich_os = stack

    def brief(task):
        yield cpu(0.01)

    rich_os.spawn("brief", brief, affinity=pin_to(0))
    machine.run(until=0.02)
    count_after_work = rich_os.ticks.tick_count
    machine.run(until=1.0)
    # At most one residual armed tick fires after going idle.
    assert rich_os.ticks.tick_count <= count_after_work + 1


def test_tick_hook_runs_and_uninstalls(stack):
    machine, rich_os = stack
    hits = []

    def hook(core):
        hits.append(core.index)
        return 1e-6

    uninstall = rich_os.ticks.add_tick_hook(hook)

    def hog(task):
        while machine.now < 0.2:
            yield cpu(1e-3)

    rich_os.spawn("hog", hog, affinity=pin_to(1))
    machine.run(until=0.1)
    assert hits and all(h == 1 for h in hits)
    seen = len(hits)
    uninstall()
    machine.run(until=0.2)
    assert len(hits) == seen


def test_ticks_pend_and_coalesce_during_secure_world(stack):
    machine, rich_os = stack

    def hog(task):
        while machine.now < 0.5:
            yield cpu(1e-3)

    rich_os.spawn("hog", hog, affinity=pin_to(0))
    machine.run(until=0.1)

    def payload(core):
        machine.gic.set_ns_blocked(core.index, True)
        yield cpu(0.1)  # many tick periods
        machine.gic.set_ns_blocked(core.index, False)

    before = rich_os.ticks.tick_count
    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=0.195)  # still inside the secure round
    assert rich_os.ticks.tick_count == before  # all ticks pended
    machine.run(until=0.5)
    # The ~25 pended tick periods coalesced into one delivery, then
    # regular ticking resumed.
    assert rich_os.ticks.tick_count > before + 10


def test_tick_phases_staggered_across_cores(stack):
    machine, rich_os = stack
    mgr = rich_os.ticks
    phases = set(mgr._phase.values())
    assert len(phases) == len(machine.cores)
