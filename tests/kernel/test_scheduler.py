"""Scheduler behaviour tests: classes, affinity, secure steals."""

import pytest

from repro.errors import SchedulingError
from repro.hw.world import World
from repro.kernel.threads import SchedPolicy, Task, TaskState, pin_to
from repro.sim.process import Signal, cpu, sleep, wait


def _burn(amount, done, machine):
    def body(task):
        yield cpu(amount)
        done.append((task.name, machine.now))

    return body


def test_two_cfs_tasks_share_a_core_fairly(stack):
    machine, rich_os = stack
    done = []
    for name in ("a", "b"):
        rich_os.spawn(name, _burn(0.05, done, machine), affinity=pin_to(0))
    machine.run(until=1.0)
    assert len(done) == 2
    finish_a, finish_b = done[0][1], done[1][1]
    # Both needed ~0.05s CPU on a shared core: both finish near 0.1s,
    # within a couple of slices of each other.
    assert abs(finish_a - finish_b) < 0.02
    assert finish_b > 0.09


def test_fifo_task_preempts_cfs(stack):
    machine, rich_os = stack
    done = []
    rich_os.spawn("cfs", _burn(0.05, done, machine), affinity=pin_to(0))
    machine.run(until=0.01)
    rich_os.spawn_realtime("rt", _burn(0.01, done, machine), affinity=pin_to(0))
    machine.run(until=1.0)
    names = [name for name, _ in done]
    assert names == ["rt", "cfs"]  # RT finished first despite arriving later


def test_higher_priority_fifo_preempts_lower(stack):
    machine, rich_os = stack
    done = []
    rich_os.spawn_realtime("low", _burn(0.05, done, machine), priority=10,
                           affinity=pin_to(0))
    machine.run(until=0.001)
    rich_os.spawn_realtime("high", _burn(0.01, done, machine), priority=90,
                           affinity=pin_to(0))
    machine.run(until=1.0)
    assert [n for n, _ in done] == ["high", "low"]


def test_equal_priority_fifo_runs_to_completion(stack):
    machine, rich_os = stack
    done = []
    rich_os.spawn_realtime("first", _burn(0.03, done, machine), priority=50,
                           affinity=pin_to(0))
    machine.run(until=0.001)
    rich_os.spawn_realtime("second", _burn(0.01, done, machine), priority=50,
                           affinity=pin_to(0))
    machine.run(until=1.0)
    assert [n for n, _ in done] == ["first", "second"]


def test_pinned_task_freezes_while_core_in_secure_world(stack):
    machine, rich_os = stack
    from repro.sim.process import cpu as cpu_req

    progress = []

    def worker(task):
        for _ in range(100):
            yield cpu_req(1e-3)
            progress.append(machine.now)

    rich_os.spawn("pinned", worker, affinity=pin_to(0))

    def payload(core):
        yield cpu_req(0.05)

    machine.run(until=0.01)
    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=0.1)
    # No progress during [0.01, 0.06] while the core was in secure world.
    gap = [t for t in progress if 0.012 < t < 0.058]
    assert gap == []
    assert any(t > 0.06 for t in progress)  # resumed afterwards


def test_unpinned_task_prefers_available_cores(stack):
    machine, rich_os = stack

    def payload(core):
        yield cpu(0.05)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    done = []
    task = rich_os.spawn("free", _burn(0.01, done, machine))
    machine.run(until=0.04)
    assert done and task.core_index != 0


def test_sleep_wake_cycle(stack):
    machine, rich_os = stack
    marks = []

    def sleeper(task):
        yield sleep(0.1)
        marks.append(machine.now)

    rich_os.spawn("sleeper", sleeper)
    machine.run(until=1.0)
    assert len(marks) == 1
    assert 0.1 <= marks[0] < 0.101


def test_wait_signal_delivers_payload(stack):
    machine, rich_os = stack
    sig = Signal()
    got = []

    def waiter(task):
        value = yield wait(sig)
        got.append(value)

    rich_os.spawn("waiter", waiter)
    machine.run(until=0.01)
    sig.fire("payload")
    machine.run(until=0.02)
    assert got == ["payload"]


def test_task_exit_fires_signal_and_records_value(stack):
    machine, rich_os = stack

    def body(task):
        yield cpu(1e-3)
        return 123

    task = rich_os.spawn("exiting", body)
    machine.run(until=0.1)
    assert task.state is TaskState.EXITED
    assert task.exit_value == 123
    assert task.exited_signal.fire_count == 1


def _empty_body(task):
    return
    yield  # pragma: no cover


def test_spawn_twice_rejected(stack):
    machine, rich_os = stack
    task = Task("t", _empty_body)
    rich_os.scheduler.spawn(task)
    with pytest.raises(SchedulingError):
        rich_os.scheduler.spawn(task)


def test_affinity_violation_rejected(stack):
    machine, rich_os = stack
    task = Task("t", _empty_body, affinity=pin_to(1))
    with pytest.raises(SchedulingError):
        rich_os.scheduler.spawn(task, core_index=0)


def test_secure_preemption_counted_and_penalised(stack):
    machine, rich_os = stack

    def worker(task):
        for _ in range(200):
            yield cpu(1e-3)

    task = rich_os.spawn("w", worker, affinity=pin_to(0))
    machine.run(until=0.01)

    def payload(core):
        yield cpu(0.01)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=0.1)
    assert task.secure_preempt_count == 1
    assert task.preempt_count >= 1


def test_steal_time_extends_wall_clock(stack):
    machine, rich_os = stack
    done = []
    rich_os.spawn("w", _burn(0.01, done, machine), affinity=pin_to(0))
    machine.run(until=0.001)
    rich_os.scheduler.steal_time(0, 0.005)
    machine.run(until=0.1)
    # 10ms of CPU plus 5ms stolen: finishes after 15ms.
    assert done[0][1] >= 0.015


def test_cpu_time_accounting(stack):
    machine, rich_os = stack
    done = []
    task = rich_os.spawn("w", _burn(0.02, done, machine))
    machine.run(until=0.5)
    assert abs(task.total_cpu - 0.02) < 1e-9


def test_current_task_visibility(stack):
    machine, rich_os = stack

    def worker(task):
        yield cpu(0.05)

    task = rich_os.spawn("w", worker, affinity=pin_to(2))
    machine.run(until=0.01)
    assert rich_os.scheduler.current_task(2) is task
