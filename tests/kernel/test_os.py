"""RichOS facade tests."""

from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID
from repro.kernel.threads import FIFO_PRIORITY_MAX, SchedPolicy


def _empty_body(task):
    return
    yield  # pragma: no cover - makes this a generator function


def test_boot_installs_tables(rich_os):
    assert rich_os.kernel_size == rich_os.image.size
    assert rich_os.syscall_table.read_entry(0, World.NORMAL) != 0
    assert rich_os.vector_table.read_entry(0, World.NORMAL) != 0


def test_spawn_default_policy(stack):
    machine, rich_os = stack
    task = rich_os.spawn("t", _empty_body)
    assert task.policy is SchedPolicy.CFS


def test_spawn_realtime_policy_and_priority(rich_os):
    task = rich_os.spawn_realtime("rt", _empty_body)
    assert task.policy is SchedPolicy.FIFO
    assert task.priority == FIFO_PRIORITY_MAX == 99


def test_syscall_returns_tid_and_charges_time(stack):
    machine, rich_os = stack
    results = []

    def caller(task):
        start = machine.now
        tid = yield from rich_os.syscall(task, NR_GETTID)
        results.append((tid, machine.now - start))

    task = rich_os.spawn("caller", caller)
    machine.run(until=0.1)
    tid, elapsed = results[0]
    assert tid == task.tid
    assert elapsed > 0  # the syscall cost was charged


def test_hijacked_syscall_routes_to_interceptor(stack):
    machine, rich_os = stack
    captured = []
    evil = 0xDEAD0000
    rich_os.register_syscall_interceptor(evil, lambda task, nr: captured.append(nr))
    rich_os.syscall_table.write_entry(NR_GETTID, evil, World.NORMAL)

    def caller(task):
        yield from rich_os.syscall(task, NR_GETTID)

    rich_os.spawn("caller", caller)
    machine.run(until=0.1)
    assert captured == [NR_GETTID]
    assert rich_os.intercepted_syscalls == 1


def test_restored_syscall_stops_interception(stack):
    machine, rich_os = stack
    captured = []
    evil = 0xDEAD0000
    rich_os.register_syscall_interceptor(evil, lambda task, nr: captured.append(nr))
    table = rich_os.syscall_table
    table.write_entry(NR_GETTID, evil, World.NORMAL)
    table.write_entry(NR_GETTID, table.original_entry(NR_GETTID), World.NORMAL)

    def caller(task):
        yield from rich_os.syscall(task, NR_GETTID)

    rich_os.spawn("caller", caller)
    machine.run(until=0.1)
    assert captured == []
    assert rich_os.syscall_count == 1


def test_syscall_counters(stack):
    machine, rich_os = stack

    def caller(task):
        for _ in range(5):
            yield from rich_os.syscall(task, NR_GETTID)

    rich_os.spawn("caller", caller)
    machine.run(until=0.1)
    assert rich_os.syscall_count == 5
