"""Shared fixtures for the SATIN reproduction test suite.

Most tests use a *scaled* machine: the kernel image is 1/20th of the
paper's size (same 19-section shape), which keeps boot hashing and area
scans fast while preserving every structural invariant.  Tests that check
paper-calibrated absolute numbers use the full-size ``juno`` fixtures.
"""

from __future__ import annotations

import pytest

from repro.config import (
    KernelConfig,
    MachineConfig,
    PAPER_KERNEL_SIZE,
    SatinConfig,
    juno_r1_config,
)
from repro.hw.platform import Machine, build_machine
from repro.kernel.os import RichOS, boot_rich_os

#: 1/20th-size kernel used by the fast fixtures.
SMALL_KERNEL_SIZE = PAPER_KERNEL_SIZE // 20


def small_config(seed: int = 1234, **satin_kwargs) -> MachineConfig:
    """A Juno-shaped machine with a scaled-down kernel."""
    config = juno_r1_config(seed)
    config.kernel = KernelConfig(image_size=SMALL_KERNEL_SIZE)
    # Scale tgoal down so rounds still happen within short simulations.
    config.satin = SatinConfig(tgoal=19.0 * 0.5, **satin_kwargs)
    return config


@pytest.fixture
def machine() -> Machine:
    """A small fast machine (no OS booted)."""
    return build_machine(small_config())


@pytest.fixture
def stack(machine: Machine):
    """(machine, rich_os) tuple on the small machine."""
    return machine, boot_rich_os(machine)


@pytest.fixture
def rich_os(stack) -> RichOS:
    return stack[1]


def fast_juno_config(seed: int = 77) -> MachineConfig:
    """Full-size kernel (so SATIN rounds have realistic multi-ms
    durations) but a short base period, for attack/defence integration
    tests that need many rounds quickly."""
    config = juno_r1_config(seed)
    config.satin = SatinConfig(tgoal=19.0 * 0.5)
    return config


@pytest.fixture
def fast_juno_stack():
    machine = build_machine(fast_juno_config())
    return machine, boot_rich_os(machine)


@pytest.fixture
def juno_machine() -> Machine:
    """The paper's full-size platform."""
    return build_machine(juno_r1_config(seed=99))


@pytest.fixture
def juno_stack(juno_machine: Machine):
    return juno_machine, boot_rich_os(juno_machine)
