"""Edge cases for the secure world: scans, monitor, semantic checker."""

import pytest

from repro.hw.world import World
from repro.secure.hashes import djb2
from repro.secure.introspect import scan_area
from repro.sim.process import cpu


def test_scan_chunk_larger_than_length(stack):
    """A chunk size above the area length degenerates to one read."""
    machine, rich_os = stack
    expected = djb2(rich_os.image.read(0, 100, World.SECURE))
    digests = []

    def payload(core):
        digest = yield from scan_area(rich_os.image, core, 0, 100,
                                      chunk_size=1 << 20)
        digests.append(digest)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.sim.run(max_events=1000)
    assert digests == [expected]


def test_scan_zero_length_area(stack):
    machine, rich_os = stack
    digests = []

    def payload(core):
        digest = yield from scan_area(rich_os.image, core, 0, 0)
        digests.append(digest)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.sim.run(max_events=1000)
    assert digests == [djb2(b"")]


def test_scan_last_byte_of_kernel(stack):
    machine, rich_os = stack
    size = rich_os.image.size
    expected = djb2(rich_os.image.read(size - 17, 17, World.SECURE))
    digests = []

    def payload(core):
        digest = yield from scan_area(rich_os.image, core, size - 17, 17)
        digests.append(digest)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.sim.run(max_events=1000)
    assert digests == [expected]


def test_monitor_back_to_back_entries_same_core(stack):
    machine, _ = stack
    order = []

    def payload(tag):
        def inner(core):
            order.append((tag, machine.now))
            yield cpu(1e-4)

        return inner

    machine.monitor.request_secure_entry(machine.core(0), payload("first"))
    machine.sim.run(max_events=100)
    machine.monitor.request_secure_entry(machine.core(0), payload("second"))
    machine.sim.run(max_events=100)
    assert [tag for tag, _ in order] == ["first", "second"]
    assert machine.core(0).secure_entries == 2


def test_secure_entries_on_different_cores_do_not_interfere(stack):
    machine, rich_os = stack
    finished = []

    def payload(core):
        yield cpu(2e-3)
        finished.append(core.index)

    for index in (0, 3, 5):
        machine.monitor.request_secure_entry(machine.core(index), payload)
    machine.sim.run(max_events=1000)
    assert sorted(finished) == [0, 3, 5]
    # All within ~one payload duration: they truly ran in parallel.
    assert machine.now < 3e-3


def test_semantic_checker_empty_slab(stack):
    from repro.kernel.modules import ModuleList
    from repro.secure.semantic import SemanticChecker

    machine, rich_os = stack
    checker = SemanticChecker(ModuleList(rich_os.image))
    assert checker.check_now().clean


def test_semantic_checker_multiple_hidden(stack):
    from repro.attacks.dkom import DkomModuleHider
    from repro.kernel.modules import ModuleList
    from repro.secure.semantic import SemanticChecker, hidden_module_names

    machine, rich_os = stack
    modules = ModuleList(rich_os.image)
    for name in ("a", "b", "evil1", "evil2"):
        modules.load(name)
    DkomModuleHider(modules, "evil1").hide()
    DkomModuleHider(modules, "evil2").hide()
    result = SemanticChecker(modules).check_now()
    assert sorted(hidden_module_names(result)) == ["evil1", "evil2"]
