"""Hash function tests: vectorised fast paths vs references."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.hashes import (
    Djb2,
    Sdbm,
    djb2,
    djb2_reference,
    fnv1a,
    sdbm,
    sdbm_reference,
)


def test_djb2_known_values():
    # h = 5381; empty input leaves it untouched.
    assert djb2(b"") == 5381
    assert djb2(b"a") == (5381 * 33 + ord("a")) & ((1 << 64) - 1)


def test_djb2_matches_reference_basic():
    data = bytes(range(256)) * 10
    assert djb2(data) == djb2_reference(data)


def test_sdbm_matches_reference_basic():
    data = bytes(range(256)) * 10
    assert sdbm(data) == sdbm_reference(data)


def test_djb2_crosses_table_boundary():
    data = b"\xab" * ((1 << 16) + 17)
    assert djb2(data) == djb2_reference(data)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=4096))
def test_djb2_property_vs_reference(data):
    assert djb2(data) == djb2_reference(data)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=2048))
def test_sdbm_property_vs_reference(data):
    assert sdbm(data) == sdbm_reference(data)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=2048), st.integers(min_value=1, max_value=500))
def test_incremental_equals_oneshot(data, split):
    split = min(split, len(data))
    hasher = Djb2()
    hasher.update(data[:split])
    hasher.update(data[split:])
    assert hasher.digest() == djb2(data)


def test_incremental_sdbm():
    hasher = Sdbm()
    hasher.update(b"hello ")
    hasher.update(b"world")
    assert hasher.digest() == sdbm(b"hello world")


def test_single_byte_change_changes_digest():
    data = bytearray(b"\x00" * 1000)
    before = djb2(data)
    data[500] ^= 1
    assert djb2(data) != before


def test_memoryview_input():
    data = bytearray(b"some kernel bytes")
    assert djb2(memoryview(data)) == djb2(bytes(data))


def test_fnv1a_known_vectors():
    # Official FNV-1a 64 test vectors.
    assert fnv1a(b"") == 0xCBF29CE484222325
    assert fnv1a(b"a") == 0xAF63DC4C8601EC8C
    assert fnv1a(b"foobar") == 0x85944171F73967E8


def test_hashes_differ_from_each_other():
    data = b"collision check"
    assert len({djb2(data), sdbm(data), fnv1a(data)}) == 3
