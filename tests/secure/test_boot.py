"""Trusted boot / authorized hash store tests."""

import pytest

from repro.errors import IntrospectionError, SecureAccessError
from repro.hw.platform import SECURE_SRAM_BASE
from repro.hw.world import World
from repro.secure.boot import AuthorizedHashStore
from repro.secure.hashes import djb2


@pytest.fixture
def store_and_image(stack):
    machine, rich_os = stack
    store = AuthorizedHashStore(machine.memory, SECURE_SRAM_BASE)
    areas = [(s.offset, s.size) for s in rich_os.image.system_map]
    store.compute_at_boot(rich_os.image, areas)
    return machine, rich_os, store, areas


def test_digests_match_djb2_of_pristine_areas(store_and_image):
    machine, rich_os, store, areas = store_and_image
    offset, length = areas[0]
    expected = djb2(rich_os.image.read(offset, length, World.SECURE))
    assert store.expected_digest((offset, length)) == expected


def test_digest_unchanged_after_normal_world_mutation(store_and_image):
    machine, rich_os, store, areas = store_and_image
    offset, length = areas[3]
    recorded = store.expected_digest((offset, length))
    rich_os.image.write(offset + 10, b"evil", World.NORMAL)
    assert store.expected_digest((offset, length)) == recorded
    live = djb2(rich_os.image.read(offset, length, World.SECURE))
    assert live != recorded  # the mutation is detectable


def test_normal_world_cannot_read_store(store_and_image):
    machine, rich_os, store, areas = store_and_image
    with pytest.raises(SecureAccessError):
        store.expected_digest(areas[0], world=World.NORMAL)


def test_unknown_span_raises(store_and_image):
    _, _, store, _ = store_and_image
    with pytest.raises(IntrospectionError):
        store.expected_digest((123, 456))


def test_store_must_live_in_secure_memory(stack):
    machine, _ = stack
    with pytest.raises(IntrospectionError):
        AuthorizedHashStore(machine.memory, machine.dram.base)


def test_capacity_enforced(stack):
    machine, rich_os = stack
    store = AuthorizedHashStore(machine.memory, SECURE_SRAM_BASE, capacity_entries=2)
    areas = [(s.offset, s.size) for s in rich_os.image.system_map]
    with pytest.raises(IntrospectionError):
        store.compute_at_boot(rich_os.image, areas)


def test_spans_enumeration(store_and_image):
    _, _, store, areas = store_and_image
    assert store.spans == areas
    assert len(store) == len(areas)
