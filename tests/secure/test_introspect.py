"""Scanning primitive tests, including the byte-level race semantics."""

import pytest

from repro.hw.platform import SECURE_SRAM_BASE
from repro.hw.world import World
from repro.secure.boot import AuthorizedHashStore
from repro.secure.hashes import djb2
from repro.secure.introspect import check_area, scan_area
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.sim.process import run_coroutine


def _drive_secure(machine, core, gen):
    """Run a secure coroutine through the monitor; returns (result, end).

    ``end`` is the simulated time at which the coroutine finished, so
    duration measurements are immune to the clock advancing to ``until``.
    """
    results = []

    def payload(entered_core):
        value = yield from gen(entered_core)
        results.append((value, machine.sim.now))

    machine.monitor.request_secure_entry(core, payload)
    machine.sim.run(max_events=1_000_000)
    assert results, "secure payload did not complete"
    return results[0]


def test_scan_digest_matches_djb2(stack):
    machine, rich_os = stack
    length = 64 * 1024
    expected = djb2(rich_os.image.read(0, length, World.SECURE))
    digest, _ = _drive_secure(
        machine, machine.core(0),
        lambda core: scan_area(rich_os.image, core, 0, length),
    )
    assert digest == expected


def test_scan_detects_mutation(stack):
    machine, rich_os = stack
    length = 64 * 1024
    clean = djb2(rich_os.image.read(0, length, World.SECURE))
    rich_os.image.write(1000, b"\xff\xff", World.NORMAL)
    digest, _ = _drive_secure(
        machine, machine.core(0),
        lambda core: scan_area(rich_os.image, core, 0, length),
    )
    assert digest != clean


def test_scan_duration_scales_with_size(stack):
    machine, rich_os = stack
    core = machine.core(0)
    durations = []
    for length in (32 * 1024, 64 * 1024):
        start = machine.now
        _, end = _drive_secure(
            machine, core, lambda c, l=length: scan_area(rich_os.image, c, 0, l)
        )
        durations.append(end - start)
    # Double the bytes, roughly double the duration.
    assert 1.7 < durations[1] / durations[0] < 2.3


def test_scan_per_byte_cost_calibrated(juno_stack):
    machine, rich_os = juno_stack
    core = machine.big_core()  # A57
    length = 1 << 20
    start = machine.now
    _, end = _drive_secure(machine, core, lambda c: scan_area(rich_os.image, c, 0, length))
    per_byte = (end - start - 3.6e-6) / length  # minus the entry switch
    assert 6.6e-9 < per_byte < 7.6e-9  # Table I A57 range


def test_check_area_result_fields(stack):
    machine, rich_os = stack
    store = AuthorizedHashStore(machine.memory, SECURE_SRAM_BASE)
    span = (0, 32 * 1024)
    store.compute_at_boot(rich_os.image, [span])
    result, _ = _drive_secure(
        machine, machine.core(1),
        lambda core: check_area(rich_os.image, store, core, span[0], span[1]),
    )
    assert result.match
    assert result.core_index == 1
    assert result.length == span[1]
    assert result.end_time > result.start_time
    assert result.duration > 0


def test_race_restore_before_chunk_read_stays_clean(stack):
    """A byte restored before its chunk is read hashes clean."""
    machine, rich_os = stack
    length = 256 * 1024
    chunk = 4096
    clean = djb2(rich_os.image.read(0, length, World.SECURE))
    # Mutate a byte deep into the area, then restore it while the scan is
    # still in the early chunks.
    target = length - 100
    original = rich_os.image.read(target, 1, World.NORMAL)
    rich_os.image.write(target, b"\xee", World.NORMAL)

    digests = []

    def payload(core):
        digest = yield from scan_area(rich_os.image, core, 0, length, chunk)
        digests.append(digest)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    # Let the scan begin, then restore early (well before the last chunk).
    machine.run(until=machine.now + 1e-4)
    rich_os.image.write(target, original, World.NORMAL)
    machine.run(until=machine.now + 5.0)
    assert digests[0] == clean


def test_race_restore_after_chunk_read_is_detected(stack):
    """A byte restored after its chunk was read still causes a mismatch."""
    machine, rich_os = stack
    length = 256 * 1024
    chunk = 4096
    clean = djb2(rich_os.image.read(0, length, World.SECURE))
    target = 10  # first chunk: read almost immediately
    original = rich_os.image.read(target, 1, World.NORMAL)
    rich_os.image.write(target, b"\xee", World.NORMAL)

    digests = []

    def payload(core):
        digest = yield from scan_area(rich_os.image, core, 0, length, chunk)
        digests.append(digest)

    machine.monitor.request_secure_entry(machine.core(0), payload)
    machine.run(until=machine.now + 1e-3)  # chunk 0 long since read
    rich_os.image.write(target, original, World.NORMAL)
    machine.run(until=machine.now + 5.0)
    assert digests[0] != clean


def test_snapshot_scan_matches_direct_scan(stack):
    machine, rich_os = stack
    buffer = SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE + 0x10000, 1 << 20)
    length = 64 * 1024
    direct = djb2(rich_os.image.read(0, length, World.SECURE))
    digest, _ = _drive_secure(
        machine, machine.core(0),
        lambda core: scan_area(rich_os.image, core, 0, length, snapshot_buffer=buffer),
    )
    assert digest == direct
    assert buffer.snapshots_taken == 1
