"""Snapshot buffer tests."""

import pytest

from repro.errors import IntrospectionError
from repro.hw.platform import SECURE_SRAM_BASE
from repro.hw.world import World
from repro.secure.hashes import djb2
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.sim.process import run_coroutine


def test_buffer_must_be_secure(stack):
    machine, _ = stack
    with pytest.raises(IntrospectionError):
        SecureSnapshotBuffer(machine.memory, machine.dram.base, 4096)


def test_buffer_must_fit_region(stack):
    machine, _ = stack
    too_big = machine.config.secure_memory_size + 1
    with pytest.raises(IntrospectionError):
        SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE, too_big)


def test_take_and_hash_copies_and_hashes(stack):
    machine, rich_os = stack
    buffer = SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE, 1 << 16)
    source = rich_os.image.addr_of(0)
    length = 8192
    outcome = []

    def proc():
        digest, copy = yield from buffer.take_and_hash(
            machine.core(0), source, length
        )
        outcome.append((digest, copy))

    run_coroutine(machine.sim, proc())
    machine.run(until=machine.now + 1.0)
    digest, copy = outcome[0]
    original = rich_os.image.read(0, length, World.SECURE)
    assert copy == original
    assert digest == djb2(original)
    # The copy physically landed in secure SRAM.
    assert machine.memory.read(SECURE_SRAM_BASE, length, World.SECURE) == original


def test_capacity_exceeded_raises(stack):
    machine, rich_os = stack
    buffer = SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE, 1024)

    def proc():
        yield from buffer.take_and_hash(machine.core(0), rich_os.image.addr_of(0), 2048)

    with pytest.raises(IntrospectionError):
        run_coroutine(machine.sim, proc())
        machine.run(until=machine.now + 1.0)


def test_snapshot_charges_time(stack):
    machine, rich_os = stack
    buffer = SecureSnapshotBuffer(machine.memory, SECURE_SRAM_BASE, 1 << 16)
    done = []

    def proc():
        yield from buffer.take_and_hash(machine.core(0), rich_os.image.addr_of(0), 8192)
        done.append(machine.now)

    start = machine.now
    run_coroutine(machine.sim, proc())
    machine.run(until=machine.now + 1.0)
    assert done[0] - start > 8192 * 5e-9  # at least ~per-byte cost
