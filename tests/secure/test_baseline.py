"""Baseline introspection mechanism tests."""

from repro.secure.baseline import pkm_like, random_whole_kernel


def test_pkm_scans_whole_kernel_on_fixed_core(stack):
    machine, rich_os = stack
    engine = pkm_like(machine, rich_os, period=0.2, core_index=1).install()
    machine.run(until=1.0)
    assert engine.round_count >= 3
    assert len(engine.areas) == 1
    assert engine.areas[0].length == rich_os.image.size
    assert all(r.core_index == 1 for r in engine.checker.results)
    # Strictly periodic up to the scan time folded into each re-arm (the
    # next wake is programmed after the round finishes).
    starts = [r.start_time for r in engine.checker.results]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(abs(g - 0.2) < 0.05 for g in gaps)
    assert max(gaps) - min(gaps) < 5e-3  # regular, hence predictable


def test_random_baseline_uses_multiple_cores_and_varies_period(stack):
    machine, rich_os = stack
    engine = random_whole_kernel(machine, rich_os, mean_period=0.2).install()
    machine.run(until=6.0)
    results = engine.checker.results
    assert len(results) >= 8
    cores_used = {r.core_index for r in results}
    assert len(cores_used) >= 3
    starts = [r.start_time for r in results]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert max(gaps) - min(gaps) > 0.05  # visibly randomized


def test_baselines_detect_a_naive_persistent_change(stack):
    """Without an evader, even the baseline catches the hijack."""
    from repro.hw.world import World
    from repro.kernel.syscalls import NR_GETTID

    machine, rich_os = stack
    engine = pkm_like(machine, rich_os, period=0.2).install()
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    machine.run(until=0.5)
    assert engine.detection_count >= 1
