"""Test Secure Payload runtime tests."""

import pytest

from repro.errors import IntrospectionError
from repro.hw.world import World
from repro.secure.tsp import TestSecurePayload
from repro.sim.process import cpu


def test_timer_service_dispatch(machine):
    tsp = TestSecurePayload(machine)
    served = []

    def service(core):
        served.append(core.index)
        yield cpu(1e-5)

    tsp.set_timer_service(service)
    machine.core(2).secure_timer.program_wakeup(0.1, World.SECURE)
    machine.run(until=0.2)
    assert served == [2]
    assert tsp.timer_entries == 1


def test_spurious_wake_without_service(machine):
    tsp = TestSecurePayload(machine)
    machine.core(0).secure_timer.program_wakeup(0.1, World.SECURE)
    machine.run(until=0.2)
    assert tsp.timer_entries == 1
    assert machine.core(0).world is World.NORMAL  # returned cleanly


def test_double_service_install_rejected(machine):
    tsp = TestSecurePayload(machine)

    def service(core):
        yield cpu(1e-6)

    tsp.set_timer_service(service)
    with pytest.raises(IntrospectionError):
        tsp.set_timer_service(service)


def test_service_can_be_cleared_and_replaced(machine):
    tsp = TestSecurePayload(machine)

    def service(core):
        yield cpu(1e-6)

    tsp.set_timer_service(service)
    tsp.set_timer_service(None)
    tsp.set_timer_service(service)  # no error after clearing
