"""Shard-merge invariants: aggregating K partial result sets must equal
aggregating the concatenated whole (mean, CI bounds, order statistics)."""

import random

import pytest

from repro.analysis.stats import (
    Summary,
    boxplot_stats,
    mean_ci,
    merge_sorted_samples,
    percentile,
)
from repro.errors import ReproError


def shards_and_whole(seed=7, k=5, sizes=(3, 17, 1, 40, 9)):
    rng = random.Random(seed)
    shards = [[rng.lognormvariate(0.0, 1.0) for _ in range(n)] for n in sizes[:k]]
    whole = [x for shard in shards for x in shard]
    return shards, whole


def test_merged_summary_equals_whole_summary():
    shards, whole = shards_and_whole()
    merged = Summary.merged([Summary.of(s) for s in shards])
    direct = Summary.of(whole)
    assert merged.count == direct.count
    assert merged.average == pytest.approx(direct.average, rel=1e-12)
    assert merged.stdev == pytest.approx(direct.stdev, rel=1e-12)
    assert merged.maximum == direct.maximum
    assert merged.minimum == direct.minimum


def test_merged_summary_single_shard_identity():
    _, whole = shards_and_whole(k=1, sizes=(12,))
    merged = Summary.merged([Summary.of(whole)])
    direct = Summary.of(whole)
    assert merged.count == direct.count
    assert merged.average == direct.average
    assert merged.maximum == direct.maximum
    assert merged.minimum == direct.minimum
    # var -> stdev -> var costs one ulp
    assert merged.stdev == pytest.approx(direct.stdev, rel=1e-15)


def test_merged_summary_handles_single_sample_shards():
    shards = [[1.0], [2.0], [3.0], [4.0]]
    merged = Summary.merged([Summary.of(s) for s in shards])
    direct = Summary.of([1.0, 2.0, 3.0, 4.0])
    assert merged.average == pytest.approx(direct.average)
    assert merged.stdev == pytest.approx(direct.stdev)


def test_merged_summary_rejects_empty():
    with pytest.raises(ReproError):
        Summary.merged([])


def test_ci_bounds_match_on_merge():
    """CI computed from merged samples equals CI of the concatenated whole."""
    shards, whole = shards_and_whole(seed=11)
    merged_samples = merge_sorted_samples(shards)
    assert mean_ci(merged_samples) == pytest.approx(mean_ci(sorted(whole)))
    lo, hi = mean_ci(whole)
    assert lo < sum(whole) / len(whole) < hi


def test_mean_ci_single_sample_degenerates():
    assert mean_ci([5.0]) == (5.0, 5.0)


def test_mean_ci_confidence_ordering():
    _, whole = shards_and_whole(seed=3)
    lo99, hi99 = mean_ci(whole, confidence=0.99)
    lo95, hi95 = mean_ci(whole, confidence=0.95)
    assert lo99 < lo95 and hi95 < hi99


def test_mean_ci_rejects_bad_confidence():
    with pytest.raises(ReproError):
        mean_ci([1.0, 2.0], confidence=1.5)


def test_order_statistics_survive_merge():
    shards, whole = shards_and_whole(seed=23, k=4, sizes=(8, 2, 31, 5))
    merged = merge_sorted_samples(shards)
    assert merged == sorted(whole)
    for p in (0.0, 25.0, 50.0, 75.0, 90.0, 100.0):
        assert percentile(merged, p) == percentile(whole, p)
    assert boxplot_stats(merged) == boxplot_stats(whole)


def test_merge_sorted_samples_accepts_unsorted_shards():
    assert merge_sorted_samples([[3.0, 1.0], [2.0]]) == [1.0, 2.0, 3.0]
