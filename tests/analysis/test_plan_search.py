"""``repro plan`` search engine and CLI: analytic-first, deterministic.

The search must answer from the solver alone by default (milliseconds,
no campaign runs), rank deterministically, mark the whole-kernel
baseline infeasible for the same reason the paper rejects it, and only
spend simulation seeds on tie-breaks when asked.
"""

import json

import pytest

from repro.analysis.planning.search import (
    PlanCandidate,
    evaluate_candidate,
    render_plan,
    search_plan,
)
from repro.cli import main
from repro.config import preset_config
from repro.errors import CampaignError


def test_default_search_is_analytic_and_deterministic():
    first = search_plan()
    second = search_plan()
    assert first == second  # pure function of the grid
    assert first["feasible"] > 0
    assert first["winner"] is not None
    assert first["tie_break"] is None  # no seeds spent by default
    # ranked ascending by worst-case latency; the winner is the head
    his = [c["detection_latency"]["hi"] for c in first["candidates"]]
    assert his == sorted(his)
    assert first["winner"]["label"] == next(
        c["label"] for c in first["candidates"] if c["feasible"]
    )
    json.dumps(first)  # JSON-safe throughout


def test_whole_kernel_baseline_is_infeasible():
    """The paper's TZ-Evader-defeated baseline: one 11.9 MB area cannot
    respect the Eq. 2 safe-area bound."""
    report = evaluate_candidate(
        PlanCandidate("juno_r1", 76.0, 1.0, "whole"),
        preset_config("juno_r1", seed=2019),
        overhead_budget=0.002,
    )
    assert report["area_count"] == 1
    assert not report["feasible"]
    assert any("Eq. 2 bound" in r for r in report["infeasible_reasons"])


def test_tight_budget_kills_everything():
    report = search_plan(overhead_budget=1e-9)
    assert report["feasible"] == 0
    assert report["winner"] is None
    assert "no feasible candidate" in render_plan(report)


def test_budget_must_be_positive():
    with pytest.raises(CampaignError):
        search_plan(overhead_budget=0.0)
    with pytest.raises(CampaignError):
        search_plan(presets=())


def test_tie_break_simulates_only_the_closest_contenders(tmp_path):
    """With one seed, the tie-break measures the winner plus at most
    ``tie_break_top`` contested candidates, re-ranking on the measured
    gap — and stays deterministic on a re-run (warm cache)."""
    kwargs = dict(
        tgoals=(76.0,),
        deviations=(0.5, 1.0),
        tie_break_seeds=1,
        tie_break_top=1,
        cache_dir=str(tmp_path),
    )
    report = search_plan(**kwargs)
    tie = report["tie_break"]
    assert tie is not None and tie["quantity"] == "avg area gap"
    assert len(tie["measured"]) <= 2  # winner + top-1 contested
    assert all(value is not None for value in tie["measured"].values())
    assert report["winner"]["label"] in tie["measured"]
    again = search_plan(**kwargs)
    assert again == report


def test_cli_plan_smoke(tmp_path, capsys):
    out_file = tmp_path / "plan.json"
    code = main([
        "plan", "--tgoal", "76", "--deviation", "0.5",
        "--partition", "sections", "--partition", "whole",
        "--json", str(out_file),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "# repro plan" in out
    assert "winner: juno_r1/sections/tgoal=76/dev=0.5" in out
    assert "INFEASIBLE" in out  # the whole-kernel row
    payload = json.loads(out_file.read_text())
    assert payload["winner"]["label"] == "juno_r1/sections/tgoal=76/dev=0.5"


def test_cli_plan_exit_3_when_nothing_feasible(capsys):
    code = main(["plan", "--budget", "1e-9"])
    assert code == 3
    assert "no feasible candidate" in capsys.readouterr().out


def test_cli_plan_rejects_bad_budget(capsys):
    code = main(["plan", "--budget", "0"])
    assert code == 2
    assert "budget" in capsys.readouterr().err
