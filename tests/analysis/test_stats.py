"""Statistics helper tests."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    Summary,
    boxplot_stats,
    geometric_mean,
    percentile,
    ratios_within,
    relative_error,
)
from repro.errors import ReproError


def test_summary_of_samples():
    s = Summary.of([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.average == 2.0
    assert s.maximum == 3.0 and s.minimum == 1.0
    assert s.stdev == pytest.approx(statistics.stdev([1.0, 2.0, 3.0]))


def test_summary_single_sample():
    s = Summary.of([5.0])
    assert s.stdev == 0.0 and s.average == 5.0


def test_summary_empty_rejected():
    with pytest.raises(ReproError):
        Summary.of([])


def test_percentile_endpoints():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 4.0
    assert percentile(data, 50) == 2.5


def test_percentile_bounds_checked():
    with pytest.raises(ReproError):
        percentile([1.0], 101)
    with pytest.raises(ReproError):
        percentile([], 50)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(data, p):
    value = percentile(data, p)
    assert min(data) <= value <= max(data)


def test_boxplot_stats_basic():
    data = list(range(1, 101))
    box = boxplot_stats([float(x) for x in data])
    assert box.q1 == pytest.approx(25.75)
    assert box.median == pytest.approx(50.5)
    assert box.q3 == pytest.approx(75.25)
    assert box.outliers == ()


def test_boxplot_detects_outliers():
    data = [1.0] * 20 + [2.0] * 20 + [100.0]
    box = boxplot_stats(data)
    assert 100.0 in box.outliers
    assert box.whisker_high <= 2.0


def test_geometric_mean():
    assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
    with pytest.raises(ReproError):
        geometric_mean([])
    with pytest.raises(ReproError):
        geometric_mean([1.0, 0.0])


def test_relative_error():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    with pytest.raises(ReproError):
        relative_error(1.0, 0.0)


def test_ratios_within():
    assert ratios_within([1, 2, 3, 4], 2, 3) == 0.5
    with pytest.raises(ReproError):
        ratios_within([], 0, 1)
