"""Table rendering and order-statistics fast-path tests."""

import random

import pytest

from repro.analysis.orderstats import (
    expected_max_quantile,
    sample_max_of_n,
    sample_maxima,
)
from repro.analysis.tables import pct, render_comparison, render_table, sci
from repro.errors import ReproError
from repro.sim.distributions import BoundedPareto, Uniform


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

def test_sci_format_matches_paper_style():
    assert sci(2.61e-4) == "2.61 x 10^-4 s"
    assert sci(1.07e-8) == "1.07 x 10^-8 s"
    assert sci(8.04e-2) == "8.04 x 10^-2 s"


def test_sci_rounding_rollover():
    assert sci(9.999e-4, digits=2) == "1.00 x 10^-3 s"


def test_sci_zero_and_unitless():
    assert sci(0) == "0 s"
    assert sci(1.5e3, unit="") == "1.50 x 10^3"


def test_pct():
    assert pct(0.00711) == "0.711%"
    assert pct(0.035, digits=1) == "3.5%"


def test_render_table_structure():
    out = render_table(("a", "bb"), [("1", "2"), ("333", "4")], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "| a " in lines[2]
    assert lines[-1].startswith("+")


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(("a", "b"), [("only-one",)])


def test_render_comparison_header():
    out = render_comparison("T", [("x", "1", "2")])
    assert "quantity" in out and "paper" in out


# ---------------------------------------------------------------------------
# Order statistics
# ---------------------------------------------------------------------------

def test_sample_max_requires_positive_n():
    with pytest.raises(ReproError):
        sample_max_of_n(Uniform(0, 1), 0, random.Random(1))


def test_max_of_one_is_plain_sample():
    rng = random.Random(1)
    samples = [sample_max_of_n(Uniform(0, 1), 1, rng) for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 0.5) < 0.05


def test_max_of_n_uniform_matches_theory():
    # E[max of n U(0,1)] = n/(n+1).
    rng = random.Random(2)
    n = 9
    samples = [sample_max_of_n(Uniform(0, 1), n, rng) for _ in range(2000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - n / (n + 1)) < 0.01


def test_fast_path_vs_brute_force_pareto():
    dist = BoundedPareto(1e-4, 3.0, 1e-2)
    rng = random.Random(3)
    n = 200
    fast = sorted(sample_max_of_n(dist, n, rng) for _ in range(800))
    brute = sorted(max(dist.sample(rng) for _ in range(n)) for _ in range(800))
    assert abs(fast[400] - brute[400]) / brute[400] < 0.1


def test_sample_maxima_count():
    rng = random.Random(4)
    values = sample_maxima(Uniform(0, 1), 10, 25, rng)
    assert len(values) == 25


def test_expected_max_quantile():
    # Median of max of n U(0,1) is 0.5^(1/n).
    n = 7
    assert expected_max_quantile(Uniform(0, 1), n, 0.5) == pytest.approx(
        0.5 ** (1 / n), rel=1e-6
    )
    with pytest.raises(ReproError):
        expected_max_quantile(Uniform(0, 1), 5, 1.5)
