"""Contracts of the closed-form race solver against the E7 MC layer.

The envelope functions promise *containment*: no Monte-Carlo estimate
drawn from the calibrated distributions may fall outside the support
corners (ISSUE acceptance: "analytical bounds contain the MC estimate
on every tested config").  The quadrature estimate promises *accuracy*:
within Monte-Carlo noise of the 20k-trial E7 number.  Both are checked
here — the hypothesis sweep uses the Rao-Blackwellised conditional
probability (exactly the MC indicator's conditional expectation) so the
containment check is pathwise-exact and flake-free.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.planning.solver import (
    DECISION_THRESHOLD,
    Interval,
    RaceModel,
    conditional_escape_probability,
    detection_latency_bounds,
    escape_probability_bounds,
    escape_probability_estimate,
    safe_area_bounds,
    scan_overhead_bounds,
    solve_preset,
)
from repro.config import juno_r1_config, preset_config
from repro.core.race import RaceParameters, evasion_succeeds, s_bound
from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry

ALL_PRESETS = ("juno_r1", "generic_octa", "smm_like")


@pytest.fixture(scope="module")
def juno_model():
    return RaceModel.from_machine(juno_r1_config(2019))


# ----------------------------------------------------------------------
# Interval: the bound type itself
# ----------------------------------------------------------------------


def test_interval_basic_properties():
    iv = Interval(1.0, 3.0)
    assert iv.width == 2.0 and iv.midpoint == 2.0
    assert iv.contains(1.0) and iv.contains(3.0) and not iv.contains(3.01)
    assert iv.contains(3.01, slack=0.02)
    assert iv.straddles(2.0)
    assert not iv.straddles(1.0) and not iv.straddles(3.0)  # strict
    assert iv.overlaps(Interval(3.0, 4.0)) and not iv.overlaps(Interval(3.1, 4.0))
    assert iv.as_dict() == {"lo": 1.0, "hi": 3.0}


def test_interval_rejects_inverted_bounds():
    with pytest.raises(ConfigurationError):
        Interval(2.0, 1.0)


# ----------------------------------------------------------------------
# conditional probability == the MC indicator's expectation
# ----------------------------------------------------------------------


def test_conditional_probability_matches_indicator_fraction(juno_model):
    """For a fixed timing tuple, the exact fraction of escaping positions
    equals the closed form (the Rao-Blackwell identity, checked on a
    dense deterministic position grid against ``evasion_succeeds``)."""
    span = float(juno_model.kernel_size)
    params = RaceParameters(
        ts_switch=juno_model.ts_switch.mean,
        ts_1byte=juno_model.ts_1byte.mean,
        tns_sched=juno_model.tsleep / 3.0,
        tns_threshold=juno_model.tns_threshold,
        tns_recover=juno_model.tns_recover.mean,
        kernel_size=int(span),
    )
    n = 200_001
    hits = sum(
        evasion_succeeds(params, span * (i + 0.5) / n) for i in range(n)
    )
    closed = conditional_escape_probability(
        span,
        params.ts_switch,
        params.ts_1byte,
        params.tns_sched,
        params.tns_threshold,
        params.tns_recover,
    )
    assert hits / n == pytest.approx(closed, abs=2.0 / n)


# ----------------------------------------------------------------------
# hypothesis: pathwise containment across area size and wake-up law
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    span_fraction=st.floats(min_value=1e-4, max_value=1.0),
    tsleep_scale=st.floats(min_value=0.1, max_value=4.0),
    seed=st.integers(min_value=0, max_value=10_000),
    trials=st.integers(min_value=1, max_value=64),
)
def test_envelope_contains_every_sampled_probability(
    span_fraction, tsleep_scale, seed, trials
):
    """ISSUE satellite: sweep the scan-area size and the wake-up
    distribution's width; every per-trial conditional escape probability
    sampled the E7 way must land inside the analytic envelope — so every
    MC average does too, with zero sampling flake."""
    base = RaceModel.from_machine(juno_r1_config(2019))
    model = RaceModel(
        ts_switch=base.ts_switch,
        ts_1byte=base.ts_1byte,
        tns_recover=base.tns_recover,
        tsleep=base.tsleep * tsleep_scale,
        tns_threshold=base.tns_threshold,
        kernel_size=base.kernel_size,
    )
    span = max(model.kernel_size * span_fraction, 1.0)
    envelope = escape_probability_bounds(model, span)
    rng = RngRegistry(seed).stream("race.mc")
    for _ in range(trials):
        p = conditional_escape_probability(
            span,
            model.ts_switch.sample(rng),
            model.ts_1byte.sample(rng),
            rng.uniform(0.0, model.tsleep),
            model.tns_threshold,
            model.tns_recover.sample(rng),
        )
        assert envelope.contains(p, slack=1e-12)


def test_envelope_contains_e7_monte_carlo_on_all_presets():
    """The indicator-level check on the full E7 recipe (20k trials,
    uniform positions) for every shipped preset: the whole-kernel MC
    escape frequency sits inside the solver's envelope."""
    for preset in ALL_PRESETS:
        machine_cfg = preset_config(preset, seed=2019)
        model = RaceModel.from_machine(machine_cfg)
        envelope = escape_probability_bounds(model)
        rng = RngRegistry(2019).stream("race.mc")
        timing = machine_cfg.clusters[-1].timing
        escapes = 0
        trials = 20_000
        for _ in range(trials):
            params = RaceParameters(
                ts_switch=timing.world_switch.sample(rng),
                ts_1byte=timing.hash_byte.sample(rng),
                tns_sched=rng.uniform(0.0, machine_cfg.prober.tsleep),
                tns_threshold=machine_cfg.prober.detect_threshold,
                tns_recover=timing.recover_trace_8b.sample(rng),
                kernel_size=model.kernel_size,
            )
            if evasion_succeeds(params, rng.uniform(0, model.kernel_size)):
                escapes += 1
        assert envelope.contains(escapes / trials, slack=1e-9), preset


# ----------------------------------------------------------------------
# quadrature: accuracy against the E7 number, containment in envelope
# ----------------------------------------------------------------------


def test_quadrature_matches_e7_monte_carlo(juno_model):
    from repro.experiments.race_analysis import run_race_analysis

    estimate = escape_probability_estimate(juno_model)
    mc = run_race_analysis(seed=2019).values["mc_escape_rate"]
    # 20k-trial MC standard error is ~0.002; the quadrature should land
    # well inside +-3 sigma of it.
    assert estimate == pytest.approx(mc, abs=0.006)
    assert escape_probability_bounds(juno_model).contains(estimate)


def test_quadrature_estimate_inside_envelope_on_all_presets():
    for preset in ALL_PRESETS:
        model = RaceModel.from_machine(preset_config(preset, seed=2019))
        envelope = escape_probability_bounds(model)
        assert envelope.contains(
            escape_probability_estimate(model), slack=1e-12
        ), preset


# ----------------------------------------------------------------------
# safe-area envelope brackets the paper's Eq. 2 point value
# ----------------------------------------------------------------------


def test_safe_area_envelope_brackets_paper_bound(juno_model):
    envelope = safe_area_bounds(juno_model)
    point = s_bound(RaceParameters())  # the E7 mean-timing bound
    assert envelope.contains(float(point))
    assert envelope.lo > 0


# ----------------------------------------------------------------------
# detection-latency envelope contains the measured E9 metric
# ----------------------------------------------------------------------


def test_detection_latency_envelope_contains_measured_gaps(juno_model):
    """ISSUE satellite: the E9 "avg area gap" per-seed values (full
    simulated stack) must fall inside the analytic envelope built from
    the same SATIN parameters."""
    from repro.config import PAPER_AREA_COUNT
    from repro.experiments.report import run_experiment

    satin_cfg = juno_r1_config(2019).satin
    envelope = detection_latency_bounds(
        juno_model,
        area_count=PAPER_AREA_COUNT,
        tgoal=satin_cfg.tgoal,
        deviation_fraction=satin_cfg.deviation_fraction,
    )
    for seed in (0, 1, 2019):
        result = run_experiment("E9", seed=seed)
        gap = next(
            row["measured"]
            for row in result.comparisons
            if row["quantity"] == "avg area gap"
        )
        assert envelope.contains(gap), (seed, gap, envelope)


def test_detection_latency_scales_with_round_period(juno_model):
    tight = detection_latency_bounds(juno_model, 19, 76.0, 0.5)
    loose = detection_latency_bounds(juno_model, 19, 152.0, 0.5)
    assert loose.hi > tight.hi
    assert tight.lo >= 0.0
    with pytest.raises(ConfigurationError):
        detection_latency_bounds(juno_model, 0, 76.0)


def test_scan_overhead_bounds_are_ordered_and_small(juno_model):
    overhead = scan_overhead_bounds(juno_model, 19, 76.0)
    assert 0.0 < overhead.lo <= overhead.hi < 0.01
    with pytest.raises(ConfigurationError):
        scan_overhead_bounds(juno_model, 19, 0.0)


# ----------------------------------------------------------------------
# solve_preset: the planner-facing summary
# ----------------------------------------------------------------------


def test_solve_preset_juno_is_contested():
    """Juno's envelope straddles the paper's 90% threshold — exactly why
    the adaptive planner routes simulation seeds to it."""
    solution = solve_preset("juno_r1", juno_r1_config(2019))
    assert solution.contested
    assert solution.escape.straddles(DECISION_THRESHOLD)
    assert solution.escape.contains(solution.escape_estimate)
    payload = solution.as_dict()
    assert payload["preset"] == "juno_r1"
    assert set(payload["escape"]) == {"lo", "hi"}


def test_solve_preset_handles_unclipped_support():
    """smm_like's per-byte cost has support down to zero; the bound
    degenerates to [0, hi] rather than dividing by zero."""
    solution = solve_preset("smm_like", preset_config("smm_like", seed=2019))
    assert solution.escape.lo == 0.0
    assert 0.0 <= solution.escape_estimate <= 1.0
    assert not math.isnan(solution.safe_area.hi)
