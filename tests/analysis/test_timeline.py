"""Timeline reconstruction tests."""

from repro.analysis.timeline import (
    TimelineEvent,
    build_timeline,
    render_timeline,
    round_timeline,
)
from repro.core.satin import install_satin


def test_empty_timeline_renders_placeholder():
    assert render_timeline([]) == "(no events)"


def test_event_render_relative_times():
    event = TimelineEvent(1.0015, "x", "hello")
    assert event.render(origin=1.0) == "[     1.500 ms] hello"


def test_build_timeline_labels_rounds(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 3)
    events = build_timeline(machine)
    labels = [e.label for e in events]
    assert any("-> secure world" in label for label in labels)
    assert any("scanning area" in label for label in labels)
    assert any("CLEAN" in label for label in labels)


def test_build_timeline_window_and_category_filters(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 4)
    first_round = satin.checker.results[0]
    events = build_timeline(
        machine,
        start=first_round.start_time - 1e-3,
        end=first_round.end_time + 1e-3,
        categories=["satin"],
    )
    assert events
    assert all(e.category == "satin" for e in events)
    assert all(
        first_round.start_time - 1e-3 <= e.time <= first_round.end_time + 1e-3
        for e in events
    )


def test_events_are_time_ordered(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 5)
    events = build_timeline(machine)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_render_limit(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 5)
    events = build_timeline(machine)
    text = render_timeline(events, limit=2)
    assert "more events" in text
    assert len(text.splitlines()) == 3


def test_round_timeline_convenience(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 3)
    first_round = satin.checker.results[0]
    text = round_timeline(machine, first_round.start_time)
    assert "scanning area" in text
