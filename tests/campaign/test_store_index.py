"""Store index: O(1) warm resume, migration shim, gc + pins."""

import json
import os

import pytest

from repro.campaign.runner import CampaignSpec, run_campaign
from repro.campaign.store import INDEX_SCHEMA, ResultStore, campaign_dirs


def make_store(tmp_path, campaign_id="E7-test"):
    return ResultStore(str(tmp_path), campaign_id)


def record(key, **extra):
    body = {"key": key, "status": "ok", "payload": {}}
    body.update(extra)
    return body


# ---------------------------------------------------------------------------
# Index lifecycle
# ---------------------------------------------------------------------------


def test_put_saves_entries_and_save_index_persists(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.put(record("b222"))
    store.save_index()
    with open(store.index_path(), "r", encoding="utf-8") as handle:
        saved = json.load(handle)
    assert saved["schema"] == INDEX_SCHEMA
    assert set(saved["entries"]) == {"a111", "b222"}
    name, offset, length = saved["entries"]["a111"]
    assert name == "shard-0a.jsonl" and offset == 0 and length > 0


def test_indexed_reopen_reads_without_full_scan(tmp_path):
    store = make_store(tmp_path)
    for key in ("a111", "b222", "c333"):
        store.put(record(key, payload={"k": key}))
    store.save_index()

    warm = make_store(tmp_path)
    assert warm.get("b222")["key"] == "b222"
    assert warm.full_scans == 0
    assert warm.record_reads == 1
    assert len(warm) == 3


def test_warm_campaign_resume_performs_no_full_scan(tmp_path):
    spec = CampaignSpec(
        "E7", seeds=[1, 2, 3], jobs=0, cache_dir=str(tmp_path), resume=True
    )
    first = run_campaign(spec, progress=False)
    assert first.ran == 3

    second = run_campaign(spec, progress=False)
    assert second.ran == 0 and second.cached == 3
    health = second.manifest_path and json.load(
        open(second.manifest_path)
    ).get("store")
    assert health is not None
    # the acceptance criterion: indexed resume does zero full shard scans
    assert health["index"]["full_scans"] == 0
    assert health["index"]["record_reads"] >= 3
    assert health["records"] == 3


def test_pre_index_store_is_lazily_migrated(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.put(record("b222"))
    assert not os.path.exists(store.index_path())  # put() alone saves none

    legacy = make_store(tmp_path)
    assert not os.path.exists(legacy.index_path())
    assert legacy.get("a111") is not None
    assert legacy.lazy_reindexed == 1
    assert os.path.exists(legacy.index_path())  # saved on migration
    assert legacy.health()["index"]["lazy_reindexed"] == 1


def test_grown_shard_triggers_tail_scan_not_rebuild(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.save_index()
    # grow the shard behind the saved index
    with open(store.shard_path("a222"), "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record("a222"), sort_keys=True) + "\n")

    warm = make_store(tmp_path)
    assert warm.get("a222") is not None
    assert warm.tail_scans == 1
    assert warm.full_scans == 0 and warm.index_rebuilds == 0


def test_corrupt_index_rebuilds(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.save_index()
    with open(store.index_path(), "w", encoding="utf-8") as handle:
        handle.write("{ not json")

    reopened = make_store(tmp_path)
    assert reopened.get("a111") is not None
    assert reopened.index_rebuilds == 1


def test_shrunk_shard_rebuilds(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.put(record("a222"))
    store.save_index()
    # truncate the shard (external rewrite) — index offsets now lie
    path = store.shard_path("a111")
    with open(path, "r", encoding="utf-8") as handle:
        first_line = handle.readline()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(first_line)

    reopened = make_store(tmp_path)
    assert reopened.get("a111") is not None
    assert reopened.index_rebuilds == 1
    assert len(reopened) == 1


def test_stale_entry_falls_back_to_full_load(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    store.put(record("a222"))
    store.save_index()
    # corrupt the index entry's offset without touching shard sizes
    with open(store.index_path(), "r", encoding="utf-8") as handle:
        saved = json.load(handle)
    a, b = saved["entries"]["a111"], saved["entries"]["a222"]
    saved["entries"]["a111"], saved["entries"]["a222"] = b, a
    with open(store.index_path(), "w", encoding="utf-8") as handle:
        json.dump(saved, handle)

    reopened = make_store(tmp_path)
    assert reopened.get("a111")["key"] == "a111"  # corrected via full load
    assert reopened.full_scans == 1


# ---------------------------------------------------------------------------
# Truncated-line accounting (counted once per path)
# ---------------------------------------------------------------------------


def test_truncated_lines_counted_once_across_reloads(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111"))
    with open(store.shard_path("a111"), "a", encoding="utf-8") as handle:
        handle.write('{"key": "a222", "status"')  # torn mid-write

    reopened = make_store(tmp_path)
    with pytest.warns(RuntimeWarning):
        reopened.load()
    assert reopened.truncated_records == 1
    # re-loading must not double-count the same torn line (and must not
    # re-warn: the warning fires once per path)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reopened.load()
        reopened.load()
    assert reopened.truncated_records == 1
    assert reopened.health()["truncated_records"] == 1


# ---------------------------------------------------------------------------
# gc + pins
# ---------------------------------------------------------------------------


def _lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [line for line in handle if line.strip()]


def test_gc_drops_superseded_and_torn_lines(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111", payload={"v": 1}))
    store.put(record("a111", payload={"v": 2}))  # supersedes
    store.put(record("a222"))
    with open(store.shard_path("a111"), "a", encoding="utf-8") as handle:
        handle.write('{"torn')

    report = store.gc()
    assert report["superseded_dropped"] == 1
    assert report["truncated_dropped"] == 1
    assert report["records_kept"] == 2
    assert len(_lines(store.shard_path("a111"))) == 2
    # the surviving record is the latest
    fresh = make_store(tmp_path)
    assert fresh.get("a111")["payload"] == {"v": 2}
    assert fresh.truncated_records == 0


def test_gc_dry_run_touches_nothing(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111", payload={"v": 1}))
    store.put(record("a111", payload={"v": 2}))
    before = _lines(store.shard_path("a111"))
    report = store.gc(dry_run=True)
    assert report["dry_run"] and report["superseded_dropped"] == 1
    assert _lines(store.shard_path("a111")) == before


def test_gc_preserves_pinned_lines_verbatim(tmp_path):
    store = make_store(tmp_path)
    store.put(record("a111", payload={"v": 1}))
    store.put(record("a111", payload={"v": 2}))
    store.put(record("a222", payload={"v": 1}))
    store.put(record("a222", payload={"v": 2}))
    store.pin("a111")

    report = store.gc()
    assert report["pinned"] == 1
    lines = _lines(store.shard_path("a111"))
    keys = [json.loads(line)["key"] for line in lines]
    # both pinned lines survive; the unpinned key was compacted to one
    assert keys.count("a111") == 2 and keys.count("a222") == 1


def test_gc_resolves_quarantine_unless_pinned(tmp_path):
    store = make_store(tmp_path)
    store.quarantine({"key": "a111", "status": "failed", "attempts": 2})
    store.quarantine({"key": "b222", "status": "failed", "attempts": 2})
    store.put(record("a111"))  # retried ok -> quarantine entry resolved
    store.put(record("b222"))
    store.pin("b222")

    report = store.gc()
    assert report["quarantine_resolved"] == 1
    assert report["quarantine_kept"] == 1
    kept = [json.loads(line)["key"] for line in _lines(store.quarantine_path())]
    assert kept == ["b222"]


def test_campaign_dirs_finds_stores_and_skips_jobs(tmp_path):
    make_store(tmp_path, "E7-one").put(record("a111"))
    make_store(tmp_path, "E9-two").put(record("b222"))
    os.makedirs(os.path.join(str(tmp_path), "jobs", "job-0001"))
    os.makedirs(os.path.join(str(tmp_path), "unrelated"))
    found = [os.path.basename(p) for p in campaign_dirs(str(tmp_path))]
    assert found == ["E7-one", "E9-two"]
