"""Content-addressed result store behaviour."""

import json
import os

from repro.campaign.store import ResultStore


def make_store(tmp_path):
    return ResultStore(str(tmp_path), "E7-test")


def test_put_get_roundtrip(tmp_path):
    store = make_store(tmp_path)
    record = {"key": "abc123", "status": "ok", "payload": {"x": 1.5}}
    store.put(record)
    assert store.get("abc123") == record
    assert "abc123" in store
    assert len(store) == 1


def test_records_persist_across_reopen(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a1", "status": "ok", "payload": {}})
    store.put({"key": "b2", "status": "ok", "payload": {}})
    reopened = make_store(tmp_path)
    assert reopened.load() == 2
    assert reopened.get("a1") is not None and reopened.get("b2") is not None


def test_keys_route_to_shards_by_first_hex_digit(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a111", "status": "ok"})
    store.put({"key": "a222", "status": "ok"})
    store.put({"key": "f333", "status": "ok"})
    names = sorted(os.path.basename(p) for p in store.shard_paths())
    assert names == ["shard-0a.jsonl", "shard-0f.jsonl"]


def test_corrupt_lines_are_skipped(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a1", "status": "ok", "payload": {"v": 1}})
    # Simulate a run killed mid-write: torn JSON on the final line.
    with open(store.shard_path("a1"), "a", encoding="utf-8") as handle:
        handle.write('{"key": "a2", "status": "o')
    reopened = make_store(tmp_path)
    assert reopened.load() == 1
    assert reopened.get("a2") is None


def test_later_records_supersede_earlier(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a1", "status": "ok", "payload": {"v": 1}})
    store.put({"key": "a1", "status": "ok", "payload": {"v": 2}})
    reopened = make_store(tmp_path)
    reopened.load()
    assert reopened.get("a1")["payload"]["v"] == 2


def test_quarantine_is_separate_from_cache(tmp_path):
    store = make_store(tmp_path)
    store.quarantine({"key": "bad1", "status": "timeout", "seed": 9})
    assert store.get("bad1") is None  # never served as a cache hit
    assert [q["key"] for q in store.quarantined()] == ["bad1"]


def test_shard_lines_are_valid_json(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "c9", "status": "ok", "payload": {"pi": 3.14}})
    with open(store.shard_path("c9"), encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert lines == [{"key": "c9", "status": "ok", "payload": {"pi": 3.14}}]


def test_corrupt_lines_are_counted_and_warned(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a1", "status": "ok", "payload": {"v": 1}})
    store.put({"key": "b7", "status": "ok", "payload": {"v": 2}})
    with open(store.shard_path("a1"), "a", encoding="utf-8") as handle:
        handle.write('{"key": "a2", "status": "o')  # torn tail
    with open(store.shard_path("b7"), "a", encoding="utf-8") as handle:
        handle.write('[1, 2, 3]\n')  # valid JSON, not a record

    import pytest

    reopened = make_store(tmp_path)
    with pytest.warns(RuntimeWarning, match="corrupt record"):
        assert reopened.load() == 2
    assert reopened.corrupt_lines_skipped == 2
    # A clean reload resets the count.
    for path in reopened.shard_paths():
        lines = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "key" in record:
                    lines.append(line)
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
    assert reopened.load() == 2
    assert reopened.corrupt_lines_skipped == 0


def test_corrupt_quarantine_lines_are_tolerated(tmp_path):
    store = make_store(tmp_path)
    store.quarantine({"key": "bad1", "status": "timeout", "seed": 9})
    with open(store.quarantine_path(), "a", encoding="utf-8") as handle:
        handle.write('{"key": "bad2", "stat')

    import pytest

    with pytest.warns(RuntimeWarning, match="corrupt record"):
        assert [q["key"] for q in store.quarantined()] == ["bad1"]


def test_undecodable_bytes_do_not_abort_the_shard(tmp_path):
    store = make_store(tmp_path)
    store.put({"key": "a1", "status": "ok", "payload": {"v": 1}})
    with open(store.shard_path("a1"), "ab") as handle:
        handle.write(b'{"key": "a2"\xff\xfe')  # torn multi-byte tail

    import pytest

    reopened = make_store(tmp_path)
    with pytest.warns(RuntimeWarning, match="corrupt record"):
        assert reopened.load() == 1
    assert reopened.corrupt_lines_skipped == 1
