"""Clean cancellation: Ctrl-C or a service cancel must not lose work.

ISSUE satellite: a KeyboardInterrupt mid-campaign used to dump a
traceback and leave no manifest.  Now the pool is drained, completed
shards stay flushed, and a partial manifest marked ``cancelled: true``
is written before the run returns.
"""

import threading

from repro.campaign.runner import CampaignSpec, run_campaign
from repro.campaign.store import ResultStore
from repro.obs.manifest import load_manifest

HELPERS = "tests.campaign.pool_helpers"


def spec_for(tmp_path, **kwargs):
    defaults = dict(
        experiment_id="E7",
        seeds=[1, 2, 3, 4],
        jobs=0,
        cache_dir=str(tmp_path),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_keyboard_interrupt_writes_partial_manifest(tmp_path):
    # interrupt_at_seed_3 completes seeds 1-2, then raises KeyboardInterrupt.
    result = run_campaign(
        spec_for(tmp_path), progress=False,
        trial_fn=f"{HELPERS}:interrupt_at_seed_3",
    )
    assert result.cancelled
    assert [r["seed"] for r in result.records] == [1, 2]
    assert result.rendered.startswith("!! campaign cancelled")
    assert "2/4 trials" in result.rendered

    manifest = load_manifest(result.manifest_path)
    assert manifest["cancelled"] is True
    statuses = [t["status"] for t in manifest["trials"]]
    assert statuses == ["ok", "ok", "missing", "missing"]


def test_interrupted_run_resumes_from_flushed_shards(tmp_path):
    spec = spec_for(tmp_path)
    run_campaign(
        spec, progress=False, trial_fn=f"{HELPERS}:interrupt_at_seed_3"
    )
    # the two completed trials were flushed before the interrupt
    store = ResultStore(spec.cache_dir, spec.campaign_id())
    store.load()
    assert sum(1 for t in spec.trial_tasks() if store.ok_record(t["key"])) == 2

    # rerun with --resume under the real trial fn: only 3 and 4 execute
    finished = run_campaign(spec_for(tmp_path, resume=True), progress=False)
    assert not finished.cancelled
    assert finished.cached == 2 and finished.ran == 2
    manifest = load_manifest(finished.manifest_path)
    assert manifest["cancelled"] is False and len(manifest["trials"]) == 4


def test_cancel_event_before_start_runs_nothing(tmp_path):
    event = threading.Event()
    event.set()
    result = run_campaign(spec_for(tmp_path), progress=False, cancel_event=event)
    assert result.cancelled and result.records == []
    manifest = load_manifest(result.manifest_path)
    assert manifest["cancelled"] is True
    assert all(t["status"] == "missing" for t in manifest["trials"])


def test_cancelled_run_counts_in_supervisor_metrics(tmp_path):
    result = run_campaign(
        spec_for(tmp_path), progress=False,
        trial_fn=f"{HELPERS}:interrupt_at_seed_3",
    )
    manifest = load_manifest(result.manifest_path)
    assert manifest["supervisor"]["counters"]["campaign.cancelled"] == 1
