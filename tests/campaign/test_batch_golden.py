"""Golden differential contract for ``--batch`` campaign dispatch.

A batched campaign must be indistinguishable from a scalar one in every
result-bearing byte: same per-trial payloads, same rendered tables, same
``manifest_fingerprint`` — across all four executor backends, with
forced mid-trial divergence (every seed ejected to the scalar engine),
and under hypothesis-randomized SATIN variants.  Only the manifest's
``batch`` provenance section (outside the fingerprint view) and the
supervisor's dispatch counters may differ.
"""

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import batch_runner
from repro.campaign.batch_runner import (
    batch_active,
    batch_stats,
    group_tasks,
    run_batch_trials,
    split_outcome,
)
from repro.campaign.pool import TrialOutcome
from repro.campaign.runner import CampaignSpec, run_campaign
from repro.obs.manifest import load_manifest, manifest_fingerprint, render_manifest

#: Every backend must reproduce the scalar inline fingerprint exactly.
BACKEND_MATRIX = [
    ("inline", dict(jobs=0, backend="inline")),
    ("thread", dict(jobs=2, backend="thread")),
    ("fork", dict(jobs=2, backend="fork")),
    ("queue", dict(jobs=2, backend="queue", queue_workers=2)),
]


def run_one(tmp_path, label, experiment_id="E1", seeds=(0, 1, 2, 3), satin=None,
            **kwargs):
    if kwargs.get("backend") == "queue":
        kwargs.setdefault("queue_dir", str(tmp_path / f"queue-{label}"))
    spec = CampaignSpec(
        experiment_id=experiment_id,
        seeds=list(seeds),
        satin=satin,
        cache_dir=str(tmp_path / f"cache-{label}"),
        **kwargs,
    )
    result = run_campaign(spec, progress=False)
    return result, load_manifest(result.manifest_path)


# ----------------------------------------------------------------------
# the headline contract: batch == scalar, byte for byte, every backend
# ----------------------------------------------------------------------


def test_batch_matches_scalar_across_all_backends(tmp_path):
    """ISSUE acceptance: the differential harness across inline, thread,
    fork and queue — batched fingerprints and rendered reports must equal
    the scalar inline run exactly."""
    scalar_result, scalar_manifest = run_one(tmp_path, "scalar", jobs=0)
    reference = manifest_fingerprint(scalar_manifest)
    reference_metrics = json.dumps(scalar_manifest["metrics"], sort_keys=True)
    assert "batch" not in scalar_manifest

    for name, overrides in BACKEND_MATRIX:
        result, manifest = run_one(
            tmp_path, f"batch-{name}", batch=True, batch_size=3, **overrides
        )
        assert result.total == 4 and not result.quarantined
        assert manifest_fingerprint(manifest) == reference, f"{name} diverged"
        assert json.dumps(manifest["metrics"], sort_keys=True) == reference_metrics
        assert result.rendered == scalar_result.rendered, f"{name} rendering diverged"
        # provenance: everything actually ran batched, across 2 groups
        # (batch_size=3 splits 4 same-config seeds into 3+1)
        batch = manifest["batch"]
        assert batch["enabled"] and batch["groups"] == 2
        assert batch["batched"] == 4 and batch["scalar_fallback"] == 0
        assert batch["ejections"] == []


@pytest.mark.slow
def test_batch_matches_scalar_on_e9(tmp_path):
    """The stack-aware experiment (full six-core machine, hottest replay
    streams) batches bit-exactly too."""
    _, scalar = run_one(tmp_path, "scalar", experiment_id="E9", seeds=(0, 1, 2), jobs=0)
    result, batched = run_one(
        tmp_path, "batch", experiment_id="E9", seeds=(0, 1, 2), jobs=0, batch=True
    )
    assert manifest_fingerprint(batched) == manifest_fingerprint(scalar)
    assert batched["batch"]["batched"] == 3


# ----------------------------------------------------------------------
# forced divergence: ejected seeds equal the pure-scalar run
# ----------------------------------------------------------------------


def test_forced_divergence_falls_back_and_stays_identical(tmp_path, monkeypatch):
    """ISSUE acceptance: with REPRO_BATCH_TRIP every member diverges
    mid-trial; each ejected seed reruns scalar and the campaign's bytes
    are still identical to a never-batched run."""
    _, scalar = run_one(tmp_path, "scalar", jobs=0)
    monkeypatch.setenv(batch_runner.TRIP_ENV, "40")
    result, tripped = run_one(tmp_path, "tripped", jobs=0, batch=True)
    assert manifest_fingerprint(tripped) == manifest_fingerprint(scalar)
    batch = tripped["batch"]
    assert batch["batched"] == 0 and batch["scalar_fallback"] == 4
    assert len(batch["ejections"]) == 4
    assert all("tripped after" in e["reason"] for e in batch["ejections"])
    # supervisor counters distinguish the two dispatch modes (metrics satellite)
    counters = tripped["supervisor"]["counters"]
    assert counters["campaign.trials_scalar_fallback"] == 4
    assert counters.get("campaign.trials_batched", 0) == 0


def test_partial_divergence_mixes_modes(tmp_path, monkeypatch):
    """A trip budget big enough for E1's cheap trial means no ejection;
    this pins the budget boundary by comparing against the scalar count
    of uniforms (regression guard for the detector being too eager)."""
    monkeypatch.setenv(batch_runner.TRIP_ENV, "1000000")
    _, manifest = run_one(tmp_path, "roomy", jobs=0, batch=True)
    assert manifest["batch"]["batched"] == 4
    assert manifest["batch"]["ejections"] == []


# ----------------------------------------------------------------------
# kill switch / auto-off
# ----------------------------------------------------------------------


def test_no_batch_env_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv(batch_runner.NO_BATCH_ENV, "1")
    _, manifest = run_one(tmp_path, "killed", jobs=0, batch=True)
    assert "batch" not in manifest  # ran fully scalar


def test_batch_auto_off_for_fault_plans():
    class FakeSpec:
        batch = True
        plan = object()  # chaos sweeps carry a FaultPlan

    class PlainSpec:
        batch = True
        plan = None

    assert not batch_active(FakeSpec())
    assert batch_active(PlainSpec())
    assert not batch_active(CampaignSpec(experiment_id="E1", seeds=[1]))  # no opt-in


# ----------------------------------------------------------------------
# dispatch plumbing: grouping and outcome splitting
# ----------------------------------------------------------------------


def _task(seed, preset="juno_r1", experiment_id="E1", satin=None):
    return {
        "key": f"k{experiment_id}-{preset}-{seed}",
        "experiment_id": experiment_id,
        "seed": seed,
        "full": False,
        "preset": preset,
        "satin": satin,
    }


def test_group_tasks_splits_by_config_and_size():
    tasks = [_task(s) for s in range(5)] + [_task(9, preset="other")]
    groups = group_tasks(tasks, "fn:path", batch_size=2)
    assert [len(g["tasks"]) for g in groups] == [2, 2, 1, 1]
    assert all(g["kind"] == "batch" and g["fn"] == "fn:path" for g in groups)
    # order preserved: flattening the groups recovers the input order
    flat = [t["key"] for g in groups for t in g["tasks"]]
    assert flat == [t["key"] for t in tasks]
    # keys are distinct and content-derived
    assert len({g["key"] for g in groups}) == len(groups)


def test_group_tasks_separates_satin_variants():
    tasks = [_task(0), _task(1, satin={"tgoal": 60.0}), _task(2, satin={"tgoal": 60.0})]
    groups = group_tasks(tasks, "fn", batch_size=8)
    assert [len(g["tasks"]) for g in groups] == [1, 2]


def test_split_outcome_wholesale_failure_fails_every_member():
    super_task = {"tasks": [_task(0), _task(1)]}
    outcome = TrialOutcome(key="b", status="timeout", error="hung", attempts=3)
    pairs = split_outcome(super_task, outcome)
    assert len(pairs) == 2
    for member, member_outcome in pairs:
        assert not member_outcome.ok
        assert member_outcome.status == "timeout"
        assert member_outcome.key == member["key"]
        assert member_outcome.attempts == 3


def test_split_outcome_maps_members_and_flags_missing():
    super_task = {"tasks": [_task(0), _task(1), _task(2)]}
    payload = {
        "members": [
            {"key": "kE1-juno_r1-0", "ok": True, "payload": {"v": 1}, "elapsed": 0.5},
            {"key": "kE1-juno_r1-1", "ok": False, "error": "boom", "elapsed": 0.1},
        ],
        "batched": 1,
        "scalar_fallback": 0,
        "ejections": [],
    }
    outcome = TrialOutcome(key="b", status="ok", payload=payload, attempts=1)
    pairs = dict((m["seed"], o) for m, o in split_outcome(super_task, outcome))
    assert pairs[0].ok and pairs[0].payload == {"v": 1}
    assert not pairs[1].ok and pairs[1].error == "boom"
    assert not pairs[2].ok and "missing member" in pairs[2].error
    assert batch_stats(outcome) == {"batched": 1, "scalar_fallback": 0, "ejections": []}


def test_run_batch_trials_isolates_member_errors(monkeypatch):
    """One member blowing up (not a divergence) must not sink siblings."""
    calls = []

    def fake_fn(task):
        calls.append(task["seed"])
        if task["seed"] == 1:
            raise ValueError("member exploded")
        return {"seed": task["seed"]}

    monkeypatch.setattr(
        "repro.campaign.pool.resolve_function", lambda path: fake_fn
    )
    monkeypatch.setattr(
        batch_runner, "resolve_function", lambda path: fake_fn
    )
    result = run_batch_trials(
        {"tasks": [_task(0), _task(1), _task(2)], "fn": "ignored"}
    )
    by_seed = {m["seed"]: m for m in result["members"]}
    assert by_seed[0]["ok"] and by_seed[2]["ok"]
    assert not by_seed[1]["ok"] and "member exploded" in by_seed[1]["error"]
    assert result["batched"] == 2


# ----------------------------------------------------------------------
# observability: the metrics rollup distinguishes dispatch modes
# ----------------------------------------------------------------------


def test_metrics_rollup_renders_batch_dispatch(tmp_path):
    _, manifest = run_one(tmp_path, "rollup", jobs=0, batch=True)
    counters = manifest["supervisor"]["counters"]
    assert counters["campaign.trials_batched"] == 4
    assert counters.get("campaign.trials_scalar_fallback", 0) == 0
    rendered = render_manifest(manifest)
    assert "batch dispatch: 1 group(s), 4 trials batched, 0 scalar fallback" in rendered


def test_scalar_rollup_has_no_batch_line(tmp_path):
    _, manifest = run_one(tmp_path, "plain", jobs=0)
    assert "batch dispatch" not in render_manifest(manifest)


# ----------------------------------------------------------------------
# hypothesis: randomized SATIN variants stay bit-exact under --batch
# ----------------------------------------------------------------------


@pytest.mark.slow
@settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    tgoal=st.floats(min_value=60.0, max_value=200.0),
    deviation=st.floats(min_value=0.2, max_value=1.0),
    seed=st.integers(min_value=0, max_value=500),
)
def test_randomized_satin_variants_batch_bit_exactly(tmp_path, tgoal, deviation, seed):
    """E9 (the stack-aware experiment) under randomized SATIN overrides:
    scalar and batched fingerprints must still be byte-identical."""
    satin = {"tgoal": tgoal, "deviation_fraction": deviation}
    label = f"{seed}-{tgoal:.3f}-{deviation:.3f}"
    _, scalar = run_one(
        tmp_path, f"s{label}", experiment_id="E9", seeds=(seed,), satin=satin, jobs=0
    )
    _, batched = run_one(
        tmp_path, f"b{label}", experiment_id="E9", seeds=(seed,), satin=satin,
        jobs=0, batch=True,
    )
    assert manifest_fingerprint(batched) == manifest_fingerprint(scalar)
    assert batched["batch"]["batched"] == 1


def test_figure4_stream_replays_bit_exactly():
    """The figure-4 time-series generator (its own named stream) under a
    replay plan equals the scalar run exactly."""
    from repro.experiments.figure4 import run_figure4
    from repro.sim.batch import ReplayPlan, use_replay

    scalar = run_figure4(seed=2019)
    with use_replay(ReplayPlan()):
        replayed = run_figure4(seed=2019)
    assert replayed.rendered == scalar.rendered
    assert replayed.values == scalar.values
