"""Golden determinism contract for ``--adaptive`` campaign dispatch.

The planner's promise (ISSUE acceptance): every stopping decision is a
pure function of (config, seed stream, CI target), so an adaptive run
consumes the same seed prefix and produces a byte-identical manifest
fingerprint on a fresh-cache re-run, a warm-cache resume, and under
``--jobs N`` — while the ``planner`` provenance section stays outside
the fingerprint view.
"""

import pytest

from repro.analysis.planning.planner import select_quantity
from repro.campaign.runner import CampaignSpec, run_campaign
from repro.errors import CampaignError
from repro.obs.manifest import load_manifest, manifest_fingerprint, render_manifest

HELPERS = "tests.campaign.pool_helpers"

#: Calibrated on the fixed E1 campaign over seeds 0..11: the "A53 hash
#: avg" CI width is 1.44e-10 after 4 seeds and 1.06e-10 after 8, so this
#: target stops the (contested, hence double-round) juno_r1 preset at
#: exactly 8 of the 12-seed budget on round 2.
E1_TARGET_WIDTH = 1.2e-10


def run_adaptive(tmp_path, label, seeds=range(12), ci_width=E1_TARGET_WIDTH,
                 experiment_id="E1", trial_fn=None, **kwargs):
    kwargs.setdefault("jobs", 0)
    kwargs.setdefault("cache_dir", str(tmp_path / f"cache-{label}"))
    spec = CampaignSpec(
        experiment_id=experiment_id,
        seeds=list(seeds),
        adaptive=True,
        ci_width=ci_width,
        min_seeds=kwargs.pop("min_seeds", 4),
        round_size=kwargs.pop("round_size", 2),
        **kwargs,
    )
    extra = {} if trial_fn is None else {"trial_fn": trial_fn}
    result = run_campaign(spec, progress=False, **extra)
    return result, load_manifest(result.manifest_path)


# ----------------------------------------------------------------------
# the headline golden: same seeds consumed, identical fingerprint
# ----------------------------------------------------------------------


def test_adaptive_stopping_is_deterministic(tmp_path):
    """Fresh cache, warm-cache resume, and --jobs 2 all consume the same
    8-seed prefix and fingerprint identically."""
    result, manifest = run_adaptive(tmp_path, "a")
    planner = manifest["planner"]
    assert planner["adaptive"] is True
    assert planner["consumed_trials"] == 8
    assert planner["budget_trials"] == 12
    assert planner["seeds_saved"] == 4
    assert planner["rounds"] == 2
    entry = planner["presets"]["juno_r1"]
    assert entry["stopped"] == "ci-met"
    assert entry["stop_round"] == 2
    assert entry["consumed"] == 8
    assert entry["ci_width"] <= E1_TARGET_WIDTH
    # juno_r1's Eq. 2 envelope straddles the 90% threshold => contested,
    # and the solver verdict rides along in the provenance.
    assert entry["contested"] is True
    assert entry["solver"]["escape"]["lo"] < 0.90 < entry["solver"]["escape"]["hi"]
    # the manifest's result view covers exactly the consumed trials
    assert manifest["spec"]["seeds"] == 8
    assert len(manifest["trials"]) == 8
    assert sorted(t["seed"] for t in manifest["trials"]) == list(range(8))

    reference = manifest_fingerprint(manifest)

    # fresh cache
    _, again = run_adaptive(tmp_path, "b")
    assert manifest_fingerprint(again) == reference
    assert again["planner"]["consumed_trials"] == 8

    # warm-cache resume over the same store
    _, resumed = run_adaptive(tmp_path, "a", resume=True)
    assert manifest_fingerprint(resumed) == reference

    # parallel dispatch must not change the stopping decision
    _, threaded = run_adaptive(tmp_path, "jobs2", jobs=2, backend="thread")
    assert manifest_fingerprint(threaded) == reference
    assert threaded["planner"]["consumed_trials"] == 8


def test_planner_section_is_outside_the_fingerprint(tmp_path):
    result, manifest = run_adaptive(tmp_path, "fp")
    with_planner = manifest_fingerprint(manifest)
    stripped = dict(manifest)
    stripped.pop("planner")
    assert manifest_fingerprint(stripped) == with_planner


def test_adaptive_matches_fixed_run_over_consumed_prefix(tmp_path):
    """An adaptive run is indistinguishable (fingerprint-wise) from a
    fixed run over exactly the seeds it consumed — adaptivity changes
    which trials run, never what any trial produces."""
    _, adaptive = run_adaptive(tmp_path, "adaptive")
    consumed = sorted(t["seed"] for t in adaptive["trials"])
    fixed_spec = CampaignSpec(
        experiment_id="E1",
        seeds=consumed,
        jobs=0,
        cache_dir=str(tmp_path / "cache-fixed"),
    )
    fixed = load_manifest(run_campaign(fixed_spec, progress=False).manifest_path)
    assert manifest_fingerprint(fixed) == manifest_fingerprint(adaptive)


def test_adaptive_shares_the_fixed_runs_cache(tmp_path):
    """campaign_id excludes the planner knobs, so an adaptive run resumes
    straight from a fixed run's store and runs nothing."""
    fixed_spec = CampaignSpec(
        experiment_id="E1",
        seeds=list(range(12)),
        jobs=0,
        cache_dir=str(tmp_path / "shared"),
    )
    run_campaign(fixed_spec, progress=False)
    result, _ = run_adaptive(
        tmp_path.joinpath("unused"), "warm",
        cache_dir=str(tmp_path / "shared"), resume=True,
    )
    assert result.cached == 8 and result.ran == 0


# ----------------------------------------------------------------------
# stopping paths: budget exhaustion, no quantity, explicit quantity
# ----------------------------------------------------------------------


def test_budget_exhaustion_consumes_everything(tmp_path):
    """An unreachable width target spends the whole budget and says so."""
    result, manifest = run_adaptive(
        tmp_path, "exhaust", seeds=range(4), ci_width=1e-15,
        min_seeds=2, round_size=1, trial_fn=f"{HELPERS}:seeded_comparison",
    )
    planner = manifest["planner"]
    assert planner["consumed_trials"] == 4
    assert planner["seeds_saved"] == 0
    assert planner["presets"]["juno_r1"]["stopped"] == "budget-exhausted"
    assert result.total == 4


def test_no_comparisons_stops_after_one_round(tmp_path):
    result, manifest = run_adaptive(
        tmp_path, "noq", seeds=range(6), min_seeds=2, round_size=1,
        trial_fn=f"{HELPERS}:double_seed",
    )
    planner = manifest["planner"]
    assert planner["quantity"] is None
    assert planner["presets"]["juno_r1"]["stopped"] == "no-ci-quantity"
    assert planner["consumed_trials"] == 2  # exactly min_seeds


def test_explicit_constant_quantity_stops_at_min_seeds(tmp_path):
    """--ci-quantity pins the tracked quantity even when constant: the
    width is zero after round 1 and the run stops at min_seeds."""
    _, manifest = run_adaptive(
        tmp_path, "const", seeds=range(8), ci_width=1.0,
        ci_quantity="rounds", min_seeds=3, round_size=1,
        trial_fn=f"{HELPERS}:seeded_comparison",
    )
    planner = manifest["planner"]
    assert planner["quantity"] == "rounds"
    assert planner["consumed_trials"] == 3
    assert planner["presets"]["juno_r1"]["stopped"] == "ci-met"


def test_unknown_explicit_quantity_raises(tmp_path):
    with pytest.raises(CampaignError, match="not a comparison quantity"):
        run_adaptive(
            tmp_path, "bad", seeds=range(4), ci_quantity="nope",
            min_seeds=2, round_size=1,
            trial_fn=f"{HELPERS}:seeded_comparison",
        )


# ----------------------------------------------------------------------
# rendering and spec validation
# ----------------------------------------------------------------------


def test_rendered_report_and_manifest_carry_planner_summary(tmp_path):
    result, manifest = run_adaptive(tmp_path, "render")
    assert "adaptive planner: target 95% CI width" in result.rendered
    assert "consumed 8/12 trials" in result.rendered
    rendered = render_manifest(manifest)
    assert "adaptive planner: 8/12 trials" in rendered


def test_adaptive_spec_validation():
    with pytest.raises(CampaignError, match="ci-width"):
        CampaignSpec(experiment_id="E1", seeds=[0, 1], adaptive=True)
    with pytest.raises(CampaignError, match="min_seeds"):
        CampaignSpec(
            experiment_id="E1", seeds=[0, 1], adaptive=True,
            ci_width=1.0, min_seeds=1,
        )
    with pytest.raises(CampaignError, match="round_size"):
        CampaignSpec(
            experiment_id="E1", seeds=[0, 1], adaptive=True,
            ci_width=1.0, round_size=0,
        )


def test_select_quantity_prefers_spread_over_constant():
    records = [
        {"payload": {"comparisons": [
            {"quantity": "const", "paper": 1, "measured": 5.0},
            {"quantity": "varies", "paper": 1, "measured": float(i)},
        ]}}
        for i in range(3)
    ]
    assert select_quantity(records) == "varies"
    assert select_quantity([]) is None
    # all-constant records fall back to the first numeric quantity
    flat = [
        {"payload": {"comparisons": [
            {"quantity": "const", "paper": 1, "measured": 5.0},
        ]}}
        for _ in range(3)
    ]
    assert select_quantity(flat) == "const"
