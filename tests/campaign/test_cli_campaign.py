"""CLI integration for ``python -m repro campaign`` and ``report --jobs``."""

from repro.cli import main


def test_cli_campaign_runs_and_prints_summary(tmp_path, capsys):
    code = main([
        "campaign", "E7", "--seeds", "3", "--jobs", "0",
        "--cache-dir", str(tmp_path), "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "# campaign E7" in out
    assert "3 total, 3 ran, 0 cached" in out


def test_cli_campaign_resume_hits_cache(tmp_path, capsys):
    args = ["campaign", "E7", "--seeds", "3", "--jobs", "0",
            "--cache-dir", str(tmp_path), "--quiet"]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--resume"]) == 0
    assert "0 ran, 3 cached" in capsys.readouterr().out


def test_cli_campaign_writes_output_file(tmp_path, capsys):
    target = tmp_path / "summary.md"
    code = main([
        "campaign", "E7", "--seeds", "2", "--jobs", "0",
        "--cache-dir", str(tmp_path / "cache"), "--quiet",
        "-o", str(target),
    ])
    assert code == 0
    assert "# campaign E7" in target.read_text()


def test_cli_campaign_unknown_experiment(tmp_path, capsys):
    code = main([
        "campaign", "E99", "--seeds", "2", "--jobs", "0",
        "--cache-dir", str(tmp_path), "--quiet",
    ])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_campaign_unknown_preset(tmp_path, capsys):
    code = main([
        "campaign", "E9", "--seeds", "2", "--jobs", "0",
        "--preset", "nope", "--cache-dir", str(tmp_path), "--quiet",
    ])
    assert code == 2
    assert "unknown preset" in capsys.readouterr().err


def test_cli_report_with_jobs_matches_serial(tmp_path, capsys):
    assert main(["report", "--only", "E7", "--jobs", "0"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["report", "--only", "E7"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out
