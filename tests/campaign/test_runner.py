"""Campaign runner: grid expansion, caching, aggregation, quarantine."""

import io

import pytest

from repro.campaign.runner import (
    CampaignSpec,
    aggregate_records,
    run_campaign,
)
from repro.errors import CampaignError

HELPERS = "tests.campaign.pool_helpers"


def spec_for(tmp_path, **kwargs):
    defaults = dict(
        experiment_id="E7",
        seeds=[1, 2, 3, 4],
        jobs=0,
        cache_dir=str(tmp_path),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_spec_validation(tmp_path):
    with pytest.raises(CampaignError):
        CampaignSpec("E7", seeds=[])
    with pytest.raises(CampaignError):
        CampaignSpec("E7", seeds=[1, 1])
    with pytest.raises(CampaignError):
        CampaignSpec("E7", seeds=[1], presets=())


def test_trial_tasks_are_deterministic_and_unique(tmp_path):
    spec = spec_for(tmp_path, presets=("juno_r1", "generic_octa"),
                    experiment_id="E9")
    tasks = spec.trial_tasks()
    assert len(tasks) == 8
    assert tasks == spec.trial_tasks()
    assert len({t["key"] for t in tasks}) == 8
    # preset-major then seed order
    assert [t["preset"] for t in tasks[:4]] == ["juno_r1"] * 4
    assert [t["seed"] for t in tasks[:4]] == [1, 2, 3, 4]


def test_campaign_id_ignores_seed_range(tmp_path):
    a = spec_for(tmp_path, seeds=[1, 2]).campaign_id()
    b = spec_for(tmp_path, seeds=[3, 4, 5]).campaign_id()
    assert a == b
    assert a.startswith("E7-")
    assert spec_for(tmp_path, full=True).campaign_id() != a


def test_campaign_runs_and_aggregates(tmp_path):
    result = run_campaign(spec_for(tmp_path), progress=False)
    assert result.total == 4 and result.ran == 4 and result.cached == 0
    assert len(result.records) == 4
    assert [r["seed"] for r in result.records] == [1, 2, 3, 4]
    assert "MC escape rate" in result.rendered
    assert "0 quarantined" in result.rendered


def test_resume_serves_from_cache(tmp_path):
    first = run_campaign(spec_for(tmp_path), progress=False)
    second = run_campaign(spec_for(tmp_path, resume=True), progress=False)
    assert second.cached == 4 and second.ran == 0
    assert second.cache_hit_ratio == 1.0
    # aggregate tables identical whether cached or computed
    assert first.rendered.split("\n", 2)[2] == second.rendered.split("\n", 2)[2]


def test_resume_extends_seed_range_incrementally(tmp_path):
    run_campaign(spec_for(tmp_path, seeds=[1, 2]), progress=False)
    grown = run_campaign(
        spec_for(tmp_path, seeds=[1, 2, 3], resume=True), progress=False
    )
    assert grown.cached == 2 and grown.ran == 1


def test_without_resume_cache_is_ignored(tmp_path):
    run_campaign(spec_for(tmp_path), progress=False)
    rerun = run_campaign(spec_for(tmp_path), progress=False)
    assert rerun.cached == 0 and rerun.ran == 4


def test_parallel_equals_serial_rendering(tmp_path):
    serial = run_campaign(spec_for(tmp_path / "a"), progress=False)
    parallel = run_campaign(spec_for(tmp_path / "b", jobs=2), progress=False)
    assert serial.rendered == parallel.rendered


def test_timeout_quarantine_does_not_abort_campaign(tmp_path):
    """The acceptance scenario: one worker killed mid-trial per attempt."""
    spec = spec_for(tmp_path, jobs=2, timeout=0.6, seeds=[0, 1, 2])
    stream = io.StringIO()

    # hang_on_flag hangs when the task carries hang=True; seed 0 never
    # finishes, seeds 1..2 are instant.
    tasks = spec.trial_tasks()
    tasks[0]["hang"] = True

    class HangSpec(CampaignSpec):
        def trial_tasks(self):
            return tasks

    hang_spec = HangSpec(**{**spec.__dict__})
    result = run_campaign(
        hang_spec, stream=stream, progress=True,
        trial_fn=f"{HELPERS}:hang_on_flag",
    )
    assert len(result.quarantined) == 1
    assert result.quarantined[0]["status"] == "timeout"
    assert result.quarantined[0]["attempts"] == 2  # retried once
    assert len(result.records) == 2  # the campaign finished anyway
    assert "quarantined trials (failed every attempt):" in result.rendered
    assert "seed=0" in result.rendered
    # the failure is also listed in the persistent quarantine log
    from repro.campaign.store import ResultStore

    store = ResultStore(spec.cache_dir, spec.campaign_id())
    assert len(store.quarantined()) == 1


def test_aggregate_records_groups_by_preset():
    def record(preset, measured):
        return {
            "preset": preset,
            "payload": {
                "comparisons": [
                    {"quantity": "q", "paper": 1.0, "measured": measured}
                ]
            },
        }

    sections = aggregate_records(
        [record("juno_r1", 1.0), record("juno_r1", 3.0), record("octa", 5.0)]
    )
    assert len(sections) == 2
    assert "juno_r1 — 2 trials" in sections[0]
    assert "octa — 1 trials" in sections[1]


def test_aggregate_records_handles_non_numeric_measured():
    records = [
        {
            "preset": "juno_r1",
            "payload": {
                "comparisons": [
                    {"quantity": "verdict", "paper": "all fail", "measured": "ok"}
                ]
            },
        }
    ]
    sections = aggregate_records(records)
    assert "n/a" in sections[0]
