"""Worker-pool robustness: timeout, crash isolation, retry, inline mode."""

import os

import pytest

from repro.campaign.pool import TrialOutcome, resolve_function, run_tasks
from repro.errors import CampaignError

HELPERS = "tests.campaign.pool_helpers"


def test_resolve_function_roundtrip():
    fn = resolve_function(f"{HELPERS}:double_seed")
    assert fn({"key": "k", "seed": 21}) == {"value": 42}


def test_resolve_function_bad_paths():
    with pytest.raises(CampaignError):
        resolve_function("no-colon")
    with pytest.raises(CampaignError):
        resolve_function(f"{HELPERS}:missing_fn")


def test_empty_task_list():
    assert run_tasks([], f"{HELPERS}:double_seed", jobs=2) == {}


def test_duplicate_keys_rejected():
    with pytest.raises(CampaignError):
        run_tasks([{"key": "a"}, {"key": "a"}], f"{HELPERS}:double_seed")


def test_parallel_success():
    tasks = [{"key": f"k{i}", "seed": i} for i in range(6)]
    outcomes = run_tasks(tasks, f"{HELPERS}:double_seed", jobs=3, timeout=30)
    assert all(outcomes[f"k{i}"].ok for i in range(6))
    assert all(outcomes[f"k{i}"].payload == {"value": i * 2} for i in range(6))
    assert all(outcomes[f"k{i}"].attempts == 1 for i in range(6))


def test_timeout_retries_then_quarantines_without_aborting():
    """A hung worker is killed; the trial retried once, then reported."""
    tasks = [
        {"key": "hung", "seed": 0, "hang": True},
        {"key": "fine1", "seed": 1},
        {"key": "fine2", "seed": 2},
    ]
    outcomes = run_tasks(tasks, f"{HELPERS}:hang_on_flag", jobs=2, timeout=0.6)
    hung = outcomes["hung"]
    assert hung.status == "timeout"
    assert hung.attempts == 2  # first run + one retry
    assert hung.failures == ["timeout"]
    assert outcomes["fine1"].ok and outcomes["fine2"].ok


def test_worker_crash_is_isolated():
    tasks = [
        {"key": "boom", "seed": 0, "crash": True},
        {"key": "fine", "seed": 1},
    ]
    outcomes = run_tasks(tasks, f"{HELPERS}:exit_on_flag", jobs=2, timeout=30)
    assert outcomes["boom"].status == "crashed"
    assert "exitcode" in outcomes["boom"].error
    assert outcomes["fine"].ok


def test_transient_failure_recovers_on_retry(tmp_path):
    marker = str(tmp_path / "marker")
    outcomes = run_tasks(
        [{"key": "flaky", "marker": marker}],
        f"{HELPERS}:fail_once",
        jobs=1,
        timeout=30,
    )
    assert outcomes["flaky"].ok
    assert outcomes["flaky"].attempts == 2
    assert outcomes["flaky"].failures == ["error"]


def test_exceptions_carry_tracebacks():
    outcomes = run_tasks(
        [{"key": "bad"}], f"{HELPERS}:always_raise", jobs=1, timeout=30
    )
    assert outcomes["bad"].status == "error"
    assert "ValueError" in outcomes["bad"].error


def test_on_final_and_on_retry_callbacks(tmp_path):
    finals, retries = [], []
    marker = str(tmp_path / "m")
    run_tasks(
        [{"key": "flaky", "marker": marker}],
        f"{HELPERS}:fail_once",
        jobs=1,
        timeout=30,
        on_final=lambda task, outcome: finals.append((task["key"], outcome.status)),
        on_retry=lambda task, kind: retries.append((task["key"], kind)),
    )
    assert finals == [("flaky", "ok")]
    assert retries == [("flaky", "error")]


def test_inline_mode_matches_pool_payloads():
    tasks = [{"key": f"k{i}", "seed": i} for i in range(4)]
    inline = run_tasks(tasks, f"{HELPERS}:double_seed", jobs=0)
    pooled = run_tasks(tasks, f"{HELPERS}:double_seed", jobs=2, timeout=30)
    assert {k: v.payload for k, v in inline.items()} == {
        k: v.payload for k, v in pooled.items()
    }


def test_inline_mode_retries_and_reports(tmp_path):
    marker = str(tmp_path / "m")
    outcomes = run_tasks([{"key": "f", "marker": marker}], f"{HELPERS}:fail_once", jobs=0)
    assert outcomes["f"].ok and outcomes["f"].attempts == 2

    outcomes = run_tasks([{"key": "b"}], f"{HELPERS}:always_raise", jobs=0)
    assert outcomes["b"].status == "error" and outcomes["b"].attempts == 2


def test_invalid_arguments():
    with pytest.raises(CampaignError):
        run_tasks([{"key": "a"}], f"{HELPERS}:double_seed", jobs=-1)
    with pytest.raises(CampaignError):
        run_tasks([{"key": "a"}], f"{HELPERS}:double_seed", max_attempts=0)


def test_outcome_ok_property():
    assert TrialOutcome(key="k", status="ok").ok
    assert not TrialOutcome(key="k", status="timeout").ok


# ---------------------------------------------------------------------------
# Respawn backoff
# ---------------------------------------------------------------------------

def test_respawn_backoff_is_deterministic_and_capped():
    from repro.campaign.pool import _respawn_backoff

    a = _respawn_backoff("key1", 1, base=0.25, cap=10.0)
    b = _respawn_backoff("key1", 1, base=0.25, cap=10.0)
    assert a == b  # jitter is derived, not drawn
    assert _respawn_backoff("key2", 1, base=0.25, cap=10.0) != a
    # Exponential growth until the cap.
    delays = [
        _respawn_backoff("key1", n, base=0.25, cap=10.0) for n in range(1, 12)
    ]
    assert delays[0] >= 0.25
    assert all(d <= 10.0 for d in delays)
    assert delays[-1] == 10.0  # saturated
    raw = [min(10.0, 0.25 * 2 ** (n - 1)) for n in range(1, 12)]
    for delay, base_delay in zip(delays, raw):
        assert base_delay <= delay <= min(10.0, base_delay * 1.25)


def test_crashes_apply_backoff_counters():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    tasks = [
        {"key": "boom", "seed": 0, "crash": True},
        {"key": "fine", "seed": 1},
    ]
    outcomes = run_tasks(
        tasks, f"{HELPERS}:exit_on_flag", jobs=2, timeout=30,
        metrics=metrics, respawn_backoff_base=0.05, respawn_backoff_cap=0.2,
    )
    assert outcomes["boom"].status == "crashed"
    assert outcomes["fine"].ok
    snapshot = metrics.snapshot()
    # One backoff per kill: first attempt + one retry.
    assert snapshot["counters"]["campaign.respawn_backoffs"] == 2
    assert snapshot["counters"]["campaign.worker_respawns"] == 2
    hist = snapshot["histograms"]["campaign.respawn_backoff_seconds"]
    assert hist["count"] == 2
    assert hist["max"] <= 0.2


def test_cooling_slot_does_not_wedge_the_run():
    """With one worker and a crash, the cooldown delays but never blocks."""
    tasks = [
        {"key": "boom", "seed": 0, "crash": True},
        {"key": "fine", "seed": 1},
    ]
    outcomes = run_tasks(
        tasks, f"{HELPERS}:exit_on_flag", jobs=1, timeout=30,
        respawn_backoff_base=0.05, respawn_backoff_cap=0.1,
    )
    assert outcomes["boom"].status == "crashed"
    assert outcomes["fine"].ok
