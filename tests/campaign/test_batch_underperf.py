"""``--batch`` underperformance note: detection, one-time warning,
manifest rendering, and dashboard byte-identity exclusion."""

from repro.campaign import runner
from repro.campaign.runner import _note_batch_underperformance
from repro.obs.dashboard.data import dashboard_data_from_manifest
from repro.obs.manifest import render_manifest


def info(dispatch, members, batched=4):
    return {
        "enabled": True,
        "groups": 1,
        "batched": batched,
        "scalar_fallback": 0,
        "ejections": [],
        "dispatch_seconds": dispatch,
        "member_seconds": members,
    }


def test_underperformance_detected_and_warned_once(monkeypatch, capsys):
    monkeypatch.setattr(runner, "_batch_underperformance_warned", False)
    batch = info(dispatch=10.0, members=5.0)
    _note_batch_underperformance(batch)
    note = batch["underperformance"]
    assert note["overhead_ratio"] == 2.0
    assert note["dispatch_seconds"] == 10.0 and note["member_seconds"] == 5.0
    err = capsys.readouterr().err
    assert "warning: --batch dispatch took 10.0s" in err
    assert "scalar path would likely be faster" in err
    # one warning per process, however many campaigns notice it
    _note_batch_underperformance(info(dispatch=10.0, members=5.0))
    assert "warning" not in capsys.readouterr().err


def test_no_note_within_tolerance(monkeypatch, capsys):
    monkeypatch.setattr(runner, "_batch_underperformance_warned", False)
    # inside the 10% + 0.25s noise envelope
    batch = info(dispatch=5.7, members=5.0)
    _note_batch_underperformance(batch)
    assert "underperformance" not in batch
    # nothing actually batched => nothing to compare
    empty = info(dispatch=100.0, members=0.0, batched=0)
    _note_batch_underperformance(empty)
    assert "underperformance" not in empty
    assert capsys.readouterr().err == ""


def _manifest_with_batch(batch):
    return {
        "schema": "satin-campaign/v1",
        "campaign_id": "E1-x",
        "experiment_id": "E1",
        "code_version": "test",
        "cancelled": False,
        "spec": {"seeds": 4, "presets": ["juno_r1"], "full": False},
        "trials": [],
        "totals": {"trials": 0, "quarantined": 0},
        "metrics": {},
        "batch": batch,
    }


def test_render_manifest_carries_the_note(monkeypatch):
    monkeypatch.setattr(runner, "_batch_underperformance_warned", True)
    batch = info(dispatch=10.0, members=5.0)
    _note_batch_underperformance(batch)
    rendered = render_manifest(_manifest_with_batch(batch))
    assert "!! batch underperformed its scalar estimate" in rendered
    assert "dispatch 10.0s vs members 5.0s (2.0x)" in rendered
    clean = render_manifest(_manifest_with_batch(info(dispatch=5.0, members=5.0)))
    assert "underperformed" not in clean


def test_dashboard_strips_wall_clock_batch_fields(monkeypatch):
    """dashboard.json must stay byte-identical between serial and
    --jobs N runs, so the wall-clock dispatch accounting (and the note
    derived from it) never reaches the dashboard data."""
    monkeypatch.setattr(runner, "_batch_underperformance_warned", True)
    batch = info(dispatch=10.0, members=5.0)
    _note_batch_underperformance(batch)
    data = dashboard_data_from_manifest(_manifest_with_batch(batch))
    assert "dispatch_seconds" not in data["batch"]
    assert "member_seconds" not in data["batch"]
    assert "underperformance" not in data["batch"]
    assert data["batch"]["batched"] == 4  # the rest survives
