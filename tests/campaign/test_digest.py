"""Digest stability: cache keys must never silently drift."""

import pytest

from repro.campaign.digest import canonical_form, stable_digest, trial_key
from repro.config import (
    MachineConfig,
    SatinConfig,
    generic_octa_config,
    juno_r1_config,
)
from repro.errors import CampaignError

#: Regression pin: the digest of the paper's platform at seed 42.  If this
#: changes, every cached campaign trial is silently invalidated — bump
#: repro.campaign.digest.CODE_VERSION instead when semantics change.
JUNO_R1_SEED42_DIGEST = "b52f8af86a1cfb06"


def test_juno_r1_digest_is_pinned():
    assert juno_r1_config(seed=42).config_digest() == JUNO_R1_SEED42_DIGEST


def test_digest_is_deterministic_across_instances():
    assert (
        juno_r1_config(seed=7).config_digest()
        == juno_r1_config(seed=7).config_digest()
    )


def test_seed_changes_digest():
    assert juno_r1_config(seed=1).config_digest() != juno_r1_config(seed=2).config_digest()


def test_preset_changes_digest():
    assert (
        juno_r1_config(seed=1).config_digest()
        != generic_octa_config(seed=1).config_digest()
    )


def test_distribution_parameters_are_covered():
    a = juno_r1_config(seed=1)
    b = juno_r1_config(seed=1)
    b.clusters[0].timing.hash_byte.sigma = 0.999
    assert a.config_digest() != b.config_digest()


def test_satin_config_digest_covers_fields():
    assert SatinConfig().config_digest() == SatinConfig().config_digest()
    assert SatinConfig().config_digest() != SatinConfig(tgoal=10.0).config_digest()
    assert (
        SatinConfig().config_digest()
        != SatinConfig(partition_mode="whole", enforce_area_bound=False).config_digest()
    )


def test_canonical_form_sorts_dict_keys():
    assert canonical_form({"b": 1, "a": 2}) == {"a": 2, "b": 1}
    assert stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})


def test_canonical_form_distinguishes_float_and_int():
    assert stable_digest(1) != stable_digest(1.0)


def test_canonical_form_rejects_opaque_objects():
    with pytest.raises(CampaignError):
        canonical_form(object())


def test_trial_key_varies_on_each_component():
    base = trial_key("E9", 1, False, "abc")
    assert trial_key("E9", 2, False, "abc") != base
    assert trial_key("E9", 1, True, "abc") != base
    assert trial_key("E9", 1, False, "abd") != base
    assert trial_key("E7", 1, False, "abc") != base
    assert trial_key("e9", 1, False, "abc") == base  # id case-insensitive


def test_trial_key_includes_code_version():
    assert trial_key("E9", 1, False, "abc", code_version="v1") != trial_key(
        "E9", 1, False, "abc", code_version="v2"
    )


def test_machine_config_default_equals_juno_preset():
    assert MachineConfig(seed=42).config_digest() == JUNO_R1_SEED42_DIGEST
