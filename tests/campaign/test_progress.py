"""Progress meter: registry-backed counts and quiet/non-TTY output modes."""

import io

from repro.campaign.progress import CACHED, DONE, FAILED, RETRIES, ProgressMeter
from repro.obs.metrics import MetricsRegistry


def meter(total=4, **kwargs):
    stream = io.StringIO()  # isatty() -> False: the non-TTY path
    return ProgressMeter(total=total, stream=stream, interval=0.0, **kwargs), stream


def test_counts_live_in_the_registry():
    registry = MetricsRegistry()
    m, _ = meter(registry=registry)
    m.note_done()
    m.note_done()
    m.note_failed()
    m.note_cached(3)
    m.note_retry()
    assert (m.done, m.failed, m.cached, m.retries) == (2, 1, 3, 1)
    assert registry.counter(DONE).value == 2
    assert registry.counter(FAILED).value == 1
    assert registry.counter(CACHED).value == 3
    assert registry.counter(RETRIES).value == 1


def test_non_tty_emits_full_lines():
    m, stream = meter(total=2)
    m.note_done()
    m.note_done()
    m.finish()
    lines = stream.getvalue().splitlines()
    assert lines and all(line.startswith("[campaign]") for line in lines)
    assert "2/2" in lines[-1]
    assert "\r" not in stream.getvalue()


def test_quiet_mode_prints_only_the_final_tally():
    m, stream = meter(total=3, quiet=True)
    m.note_done()
    m.note_failed()
    m.note_cached()
    assert stream.getvalue() == ""  # nothing until finish()
    m.finish()
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    assert "3/3" in lines[0] and "1 failed" in lines[0]


def test_disabled_meter_is_silent_even_on_finish():
    m, stream = meter(enabled=False)
    m.note_done()
    m.finish()
    assert stream.getvalue() == ""


def test_render_mentions_retries_only_when_present():
    m, _ = meter(total=2)
    assert "retried" not in m.render()
    m.note_retry()
    assert "1 retried" in m.render()
