"""Trial functions the pool tests resolve by import path.

They live in a real module (not a test file) so the pool's
``"module:function"`` resolution exercises the same path production uses,
and so spawn-based platforms could import them too.
"""

from __future__ import annotations

import os
import time


def double_seed(task):
    return {"value": task["seed"] * 2}


def hang_on_flag(task):
    """Sleeps far past any test timeout when the task says so."""
    if task.get("hang"):
        time.sleep(120)
    return {"value": task["seed"]}


def exit_on_flag(task):
    """Simulates a worker killed mid-trial (OOM-kill, segfault)."""
    if task.get("crash"):
        os._exit(23)
    return {"value": task["seed"]}


def fail_once(task):
    """Fails the first attempt, succeeds the second (marker-file state)."""
    marker = task["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("transient failure")
    return {"value": "recovered"}


def always_raise(task):
    raise ValueError(f"trial {task['key']} is broken")


def interrupt_at_seed_3(task):
    """Simulates the user hitting Ctrl-C partway through a sweep."""
    if task["seed"] >= 3:
        raise KeyboardInterrupt
    return {"value": task["seed"]}


def slow_double_seed(task):
    """double_seed with enough latency for cancel/progress races."""
    time.sleep(task.get("delay", 0.2))
    return {"value": task["seed"] * 2}


def seeded_comparison(task):
    """A comparison-shaped payload: one constant and one seed-dependent
    quantity, so the adaptive planner's quantity selection and CI
    tracking can run without a real experiment."""
    return {
        "comparisons": [
            {"quantity": "rounds", "paper": 19, "measured": 19},
            {
                "quantity": "gap",
                "paper": 150.0,
                "measured": 100.0 + 10.0 * task["seed"],
            },
        ]
    }
