"""Fused (coalesced) scans: equivalence, gating, and the write guard.

A coalesced scan replaces one event per 4 KiB chunk with a single
:class:`~repro.sim.events.SpanEvent`, on the claim that nothing can
interleave.  These tests pin the three load-bearing properties: the fused
timeline is bit-identical to the per-chunk one, the checker refuses to
fuse while any registered interference source is armed, and a write that
does sneak into a fused span is detected loudly rather than silently
hashed at the wrong time.
"""

import pytest

from repro.attacks.rootkit import PersistentRootkit
from repro.core.satin import install_satin
from repro.errors import SimulationError
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.kernel.os import boot_rich_os
from repro.secure.introspect import scan_area
from tests.conftest import small_config


def _satin_stack(coalesce):
    machine = build_machine(small_config(seed=7))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    satin.checker.coalesce_scans = coalesce
    return machine, satin


def _run_rounds(machine, satin, rounds):
    guard = 0
    while satin.checker.round_count < rounds and guard < rounds * 50:
        machine.run_for(satin.policy.tp)
        guard += 1
    return satin.checker.results[:rounds]


def test_fused_rounds_match_per_chunk_rounds_exactly():
    rounds = 25
    fused_machine, fused_satin = _satin_stack(coalesce=True)
    chunk_machine, chunk_satin = _satin_stack(coalesce=False)
    fused = _run_rounds(fused_machine, fused_satin, rounds)
    chunked = _run_rounds(chunk_machine, chunk_satin, rounds)
    assert len(fused) == len(chunked) == rounds
    for f, c in zip(fused, chunked):
        assert (f.area_index, f.start_time, f.end_time, f.digest, f.expected) == (
            c.area_index, c.start_time, c.end_time, c.digest, c.expected
        )
    # Span accounting makes the fused engine charge one logical event per
    # chunk, so even the event counters agree...
    assert fused_machine.sim.events_fired == chunk_machine.sim.events_fired
    # ...while the heap saw far less traffic.
    assert fused_machine.sim._queue._seq < chunk_machine.sim._queue._seq


def test_interference_registry_gates_coalescing():
    machine, satin = _satin_stack(coalesce=True)
    assert not machine.scan_interference()
    probes = []
    machine.register_interference(lambda: bool(probes))
    assert not machine.scan_interference()
    probes.append("armed")
    assert machine.scan_interference()
    probes.clear()
    assert not machine.scan_interference()


def test_installed_rootkit_arms_interference():
    machine, satin = _satin_stack(coalesce=True)
    assert not machine.scan_interference()
    rootkit = PersistentRootkit(machine, satin.rich_os)
    rootkit.install()
    # An installed attacker can race any scan, so fusion must stay off.
    assert machine.scan_interference()
    rootkit.installed = False
    assert not machine.scan_interference()


def test_write_during_fused_span_raises():
    machine = build_machine(small_config(seed=11))
    rich_os = boot_rich_os(machine)
    sim = machine.sim
    failures = []

    def payload(core):
        try:
            yield from scan_area(rich_os.image, core, 0, 64 * 1024, coalesce=True)
        except SimulationError as exc:
            failures.append(exc)

    # A writer that keeps poking the image; at least one poke lands inside
    # the fused span's window.
    def poke():
        rich_os.image.write(512, b"\xAA", World.NORMAL)
        sim.schedule(5e-5, poke)

    sim.schedule(5e-5, poke)
    machine.monitor.request_secure_entry(machine.core(0), payload)
    sim.run(until=1.0, max_events=200_000)
    assert failures, "interleaved write went undetected in a coalesced scan"
    assert "interleaved" in str(failures[0])
