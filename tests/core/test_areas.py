"""Area partitioning tests."""

import pytest

from repro.core.areas import (
    area_containing,
    build_partition,
    partition_packed,
    partition_sections,
    partition_whole,
    validate_partition,
)
from repro.errors import IntrospectionError
from repro.kernel.systemmap import SystemMap


@pytest.fixture(scope="module")
def system_map():
    return SystemMap()


def test_sections_mode_gives_19_areas(system_map):
    areas = partition_sections(system_map)
    assert len(areas) == 19
    validate_partition(areas, system_map.total_size)


def test_sections_mode_matches_sections(system_map):
    areas = partition_sections(system_map)
    for area, section in zip(areas, system_map):
        assert area.offset == section.offset
        assert area.length == section.size
        assert area.section_names == (section.name,)


def test_oversized_section_is_split(system_map):
    max_size = 500_000  # below the largest section (876,616)
    areas = partition_sections(system_map, max_area_size=max_size)
    assert all(a.length <= max_size for a in areas)
    validate_partition(areas, system_map.total_size)
    assert len(areas) > 19


def test_whole_mode_single_area(system_map):
    areas = partition_whole(system_map)
    assert len(areas) == 1
    assert areas[0].length == system_map.total_size
    validate_partition(areas, system_map.total_size)


def test_packed_mode_respects_bound(system_map):
    bound = 1_218_351
    areas = partition_packed(system_map, bound)
    assert all(a.length <= bound for a in areas)
    validate_partition(areas, system_map.total_size)
    # Packing merges sections, so fewer areas than sections.
    assert len(areas) < 19


def test_packed_mode_groups_are_consecutive(system_map):
    areas = partition_packed(system_map, 1_218_351)
    for area in areas:
        if len(area.section_names) > 1:
            # multi-section areas record each member name
            assert all(isinstance(n, str) for n in area.section_names)


def test_packed_requires_positive_bound(system_map):
    with pytest.raises(IntrospectionError):
        partition_packed(system_map, 0)


def test_build_partition_dispatch(system_map):
    assert len(build_partition(system_map, "sections")) == 19
    assert len(build_partition(system_map, "whole")) == 1
    assert build_partition(system_map, "packed", 1_218_351)
    with pytest.raises(IntrospectionError):
        build_partition(system_map, "bogus")
    with pytest.raises(IntrospectionError):
        build_partition(system_map, "packed")  # needs max_area_size


def test_validate_partition_catches_gaps(system_map):
    areas = partition_sections(system_map)
    broken = [areas[0], areas[2]]  # skips area 1
    with pytest.raises(IntrospectionError):
        validate_partition(broken, system_map.total_size)


def test_validate_partition_catches_short_coverage(system_map):
    areas = partition_sections(system_map)[:-1]
    with pytest.raises(IntrospectionError):
        validate_partition(areas, system_map.total_size)


def test_validate_partition_rejects_empty():
    with pytest.raises(IntrospectionError):
        validate_partition([], 100)


def test_area_containing(system_map):
    areas = partition_sections(system_map)
    for probe in (0, 1, system_map.total_size // 2, system_map.total_size - 1):
        area = area_containing(areas, probe)
        assert area.contains(probe)
    with pytest.raises(IntrospectionError):
        area_containing(areas, system_map.total_size)


def test_syscall_table_lands_in_area_14(system_map):
    areas = partition_sections(system_map)
    offset = system_map.symbol("sys_call_table")
    assert area_containing(areas, offset).index == 14
