"""Self Activation Module / wake-up time queue tests."""

import random

import pytest

from repro.core.activation import SelfActivationModule, WakeUpTimeQueue
from repro.errors import IntrospectionError, SecureAccessError
from repro.hw.platform import SECURE_SRAM_BASE
from repro.hw.world import World


def make_queue(machine, slots=6, tp=1.0, deviation=1.0, start=0.0):
    return WakeUpTimeQueue(
        machine.memory,
        SECURE_SRAM_BASE + 0x1000,
        slot_count=slots,
        tp=tp,
        deviation_fraction=deviation,
        rng=random.Random(7),
        start_time=start,
    )


def test_queue_requires_secure_memory(machine):
    with pytest.raises(IntrospectionError):
        WakeUpTimeQueue(
            machine.memory, machine.dram.base, 6, 1.0, 1.0, random.Random(1)
        )


def test_queue_requires_slots(machine):
    with pytest.raises(IntrospectionError):
        make_queue(machine, slots=0)


def test_take_returns_future_times(machine):
    queue = make_queue(machine)
    for _ in range(20):
        assert queue.take(0.0) > 0.0


def test_takes_are_within_deviation_window(machine):
    """Each generated time is (i+1)*tp +- tp from the refresh base."""
    queue = make_queue(machine, slots=6, tp=1.0, deviation=1.0)
    times = sorted(queue.take(0.0) for _ in range(6))
    for i, t in enumerate(times):
        # The i-th smallest is within the union of windows; weakest bound:
        assert 0.0 < t <= 7.0


def test_no_deviation_gives_exact_grid(machine):
    queue = make_queue(machine, slots=6, tp=1.0, deviation=0.0)
    times = sorted(queue.take(0.0) for _ in range(6))
    assert times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])


def test_refresh_advances_base(machine):
    queue = make_queue(machine, slots=2, tp=1.0, deviation=0.0)
    first_batch = sorted(queue.take(0.0) for _ in range(2))
    second_batch = sorted(queue.take(0.0) for _ in range(2))
    assert first_batch == pytest.approx([1.0, 2.0])
    assert second_batch == pytest.approx([3.0, 4.0])
    assert queue.refresh_count == 2


def test_take_clamps_to_now(machine):
    queue = make_queue(machine, slots=2, tp=0.1, deviation=0.0)
    # Ask far in the future: generated times are in the past and clamp.
    t = queue.take(100.0)
    assert t >= 100.0


def test_assignment_order_is_randomized(machine):
    # With deviation 0 the values are a grid; consumption order random
    # means consecutive takes are NOT always increasing.
    queue = make_queue(machine, slots=6, tp=1.0, deviation=0.0)
    raw = [queue.take(0.0) for _ in range(6)]
    assert raw != sorted(raw)


def test_queue_is_physically_in_secure_memory(machine):
    queue = make_queue(machine)
    queue.take(0.0)
    with pytest.raises(SecureAccessError):
        machine.memory.read(queue.queue_base, 8, World.NORMAL)


def test_activation_arms_all_cores_random_mode(machine):
    queue = make_queue(machine, slots=6, tp=0.5)
    activation = SelfActivationModule(machine, queue, random_core=True)
    activation.arm_initial()
    armed = [c.secure_timer.next_fire_time() for c in machine.cores]
    assert all(t is not None for t in armed)
    assert activation.arm_count == 6


def test_activation_fixed_core_arms_one(machine):
    queue = make_queue(machine, slots=1, tp=0.5)
    activation = SelfActivationModule(
        machine, queue, random_core=False, fixed_core_index=3
    )
    activation.arm_initial()
    armed = [c.secure_timer.next_fire_time() for c in machine.cores]
    assert armed[3] is not None
    assert sum(1 for t in armed if t is not None) == 1


def test_disarm_all(machine):
    queue = make_queue(machine)
    activation = SelfActivationModule(machine, queue)
    activation.arm_initial()
    activation.disarm_all()
    assert all(c.secure_timer.next_fire_time() is None for c in machine.cores)


def test_rearm_consumes_queue(machine):
    queue = make_queue(machine, slots=6, tp=0.5)
    activation = SelfActivationModule(machine, queue)
    activation.arm_initial()
    takes_before = queue.takes
    activation.rearm(machine.core(0))
    assert queue.takes == takes_before + 1
