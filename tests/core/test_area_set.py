"""Kernel Area Set tests: random selection without replacement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.area_set import KernelAreaSet
from repro.core.areas import partition_sections
from repro.errors import IntrospectionError
from repro.kernel.systemmap import SystemMap


@pytest.fixture
def areas():
    return partition_sections(SystemMap())


def test_one_pass_covers_every_area_once(areas):
    area_set = KernelAreaSet(areas, random.Random(1))
    picked = [area_set.pick().index for _ in range(len(areas))]
    assert sorted(picked) == list(range(len(areas)))
    assert area_set.pass_count == 1


def test_refill_after_exhaustion(areas):
    area_set = KernelAreaSet(areas, random.Random(1))
    for _ in range(len(areas)):
        area_set.pick()
    assert area_set.remaining_in_pass == len(areas)  # refilled
    area_set.pick()
    assert area_set.remaining_in_pass == len(areas) - 1


def test_order_differs_between_passes(areas):
    area_set = KernelAreaSet(areas, random.Random(1))
    first = [area_set.pick().index for _ in range(len(areas))]
    second = [area_set.pick().index for _ in range(len(areas))]
    assert first != second  # random order (vanishing collision chance)
    assert sorted(first) == sorted(second)


def test_empty_area_list_rejected():
    with pytest.raises(IntrospectionError):
        KernelAreaSet([], random.Random(1))


def test_counters(areas):
    area_set = KernelAreaSet(areas, random.Random(3))
    for _ in range(len(areas) * 3):
        area_set.pick()
    assert area_set.total_picks == len(areas) * 3
    assert area_set.pass_count == 3
    assert all(count == 3 for count in area_set.pick_counts.values())


@settings(max_examples=40, deadline=None)
@given(
    picks=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pick_spread_never_exceeds_one(picks, seed):
    """Divide-and-conquer fairness: no area lags another by more than 1."""
    areas = partition_sections(SystemMap())
    area_set = KernelAreaSet(areas, random.Random(seed))
    for _ in range(picks):
        area_set.pick()
    assert area_set.max_pick_spread() <= 1


def test_rounds_per_pass(areas):
    area_set = KernelAreaSet(areas, random.Random(1))
    assert area_set.rounds_per_pass == 19
