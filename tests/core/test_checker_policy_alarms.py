"""Integrity checker, policy derivation, and alarm sink tests."""

import pytest

from repro.core.alarms import AlarmRecord, AlarmSink
from repro.core.areas import partition_sections
from repro.core.policy import derive_policy
from repro.core.race import RaceParameters
from repro.core.satin import Satin, install_satin
from repro.errors import IntrospectionError
from repro.hw.world import World
from repro.kernel.systemmap import SystemMap


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------

def test_policy_tp_is_tgoal_over_m():
    areas = partition_sections(SystemMap())
    policy = derive_policy(tgoal=152.0, areas=areas)
    assert policy.tp == pytest.approx(8.0)
    assert policy.area_count == 19


def test_policy_full_pass_near_152s():
    """Paper: one full kernel pass takes approximately 152 s."""
    areas = partition_sections(SystemMap())
    policy = derive_policy(tgoal=152.0, areas=areas)
    assert 151.0 < policy.full_pass_time < 153.0


def test_policy_enforces_bound():
    areas = partition_sections(SystemMap())
    with pytest.raises(IntrospectionError):
        derive_policy(tgoal=152.0, areas=areas, max_area_size=1000)


def test_policy_bound_override_disabled():
    areas = partition_sections(SystemMap())
    policy = derive_policy(
        tgoal=152.0, areas=areas, max_area_size=1000, enforce_bound=False
    )
    assert policy.max_area_size == 1000


def test_policy_uses_race_bound_by_default():
    areas = partition_sections(SystemMap())
    policy = derive_policy(tgoal=152.0, areas=areas, race=RaceParameters())
    assert policy.max_area_size == 1_218_351


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------

def test_checker_counts_and_results_per_area(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 21)
    checker = satin.checker
    assert checker.round_count == len(checker.results)
    seen_area = checker.results[0].area_index
    per_area = checker.results_for_area(seen_area)
    assert all(r.area_index == seen_area for r in per_area)
    assert checker.average_round_duration() > 0


def test_checker_mismatch_counter(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    rich_os.image.write(10, b"\xff" * 4, World.NORMAL)  # area 0 corrupted
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    assert satin.checker.mismatch_count == len(satin.alarms)
    assert satin.checker.mismatch_count >= 1


# ---------------------------------------------------------------------------
# Alarms
# ---------------------------------------------------------------------------

def _alarm(area=1, time=1.0):
    return AlarmRecord(
        time=time, area_index=area, offset=0, length=10,
        core_index=0, round_index=0, digest=1, expected=2,
    )


def test_alarm_sink_collects_and_notifies():
    sink = AlarmSink()
    seen = []
    sink.add_listener(seen.append)
    alarm = _alarm()
    sink.raise_alarm(alarm)
    assert len(sink) == 1
    assert seen == [alarm]


def test_alarms_for_area_filter():
    sink = AlarmSink()
    sink.raise_alarm(_alarm(area=1))
    sink.raise_alarm(_alarm(area=2))
    sink.raise_alarm(_alarm(area=1))
    assert len(sink.alarms_for_area(1)) == 2
    assert len(sink.alarms_for_area(3)) == 0
