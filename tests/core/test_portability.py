"""Portability tests (Section VII-D): SATIN beyond the Juno r1.

SATIN's three requirements — multi-core, a high-privileged mode, a secure
timer — are topology-independent in this library; these tests run the
full mechanism on a generic octa-core SoC and an x86/SMM-flavoured
platform.
"""

import pytest

from repro.config import (
    KernelConfig,
    SatinConfig,
    generic_octa_config,
    smm_like_config,
)
from repro.core.race import RaceParameters, max_safe_area_size
from repro.core.satin import install_satin
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.kernel.os import boot_rich_os
from repro.kernel.syscalls import NR_GETTID
from tests.conftest import SMALL_KERNEL_SIZE


def _shrink(config):
    config.kernel = KernelConfig(image_size=SMALL_KERNEL_SIZE)
    config.satin = SatinConfig(tgoal=19 * 0.25)
    return config


def test_octa_core_satin_detects(s=None):
    machine = build_machine(_shrink(generic_octa_config(seed=9)))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    assert len(machine.cores) == 8
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    assert satin.alarms.alarms[0].area_index == 14


def test_octa_core_spreads_rounds_over_all_cores():
    machine = build_machine(_shrink(generic_octa_config(seed=9)))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 40)
    cores_used = {r.core_index for r in satin.checker.results}
    assert len(cores_used) >= 6


def test_smm_platform_boots_and_detects():
    machine = build_machine(_shrink(smm_like_config(seed=9)))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    assert satin.detection_count >= 1


def test_smm_switch_cost_is_order_of_magnitude_larger():
    juno_switch = 3.6e-6
    config = smm_like_config()
    lo, hi = config.clusters[0].timing.world_switch.support()
    assert lo > 5 * juno_switch


def test_smm_race_bound_absorbs_the_slower_switch():
    """The Eq. 2 machinery transfers unchanged: a costlier switch only
    shifts the bound, it does not break the derivation."""
    smm = RaceParameters(ts_switch=6e-5, ts_1byte=4e-9, tns_recover=4e-3)
    juno = RaceParameters()
    assert max_safe_area_size(smm) > 0
    # Faster per-byte scanning on x86 buys a *larger* safe area despite
    # the slower switch.
    assert max_safe_area_size(smm) > max_safe_area_size(juno)
