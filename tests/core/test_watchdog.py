"""RoundWatchdog tests: missed-wake detection, retries, liveness alarms."""

from repro.core.alarms import SEVERITY_LIVENESS
from repro.core.satin import install_satin
from repro.core.watchdog import RoundWatchdog
from repro.hw.platform import build_machine
from repro.kernel.os import boot_rich_os

from tests.conftest import small_config


def _hardened(seed=1234, **harden_kwargs):
    machine = build_machine(small_config(seed))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    watchdog = satin.harden(**harden_kwargs)
    return machine, satin, watchdog


def test_clean_run_misses_nothing():
    machine, satin, watchdog = _hardened()
    machine.run(until=satin.policy.tp * 10)
    assert watchdog.checks > 0
    assert watchdog.missed_wakes == 0
    assert watchdog.degraded_rounds == 0
    assert satin.alarms.by_severity(SEVERITY_LIVENESS) == []


def test_boot_time_arms_are_guarded():
    # harden() runs after install(), so the initial per-core arms never
    # pass through the arm listener — the constructor must guard them
    # retroactively or a fault on a core's very first wake goes unwatched.
    machine, satin, watchdog = _hardened()
    participating = len(satin.activation.participating_cores)
    assert len(watchdog._generation) == participating
    # One pending check per core before any round has run.
    assert all(gen >= 1 for gen in watchdog._generation.values())


def test_dropped_wake_is_detected_and_rearmed():
    machine, satin, watchdog = _hardened()
    core = satin.activation.participating_cores[0]
    dropped = []

    def drop_first(core_index):
        if core_index == core.index and not dropped:
            dropped.append(machine.sim.now)
            return "drop"
        return None

    core.secure_timer.fault_filter = drop_first
    machine.run(until=satin.policy.tp * 6)
    assert dropped, "the filter never saw an expiry"
    assert watchdog.missed_wakes >= 1
    assert watchdog.rearms >= 1
    assert any(c == core.index for _, c in watchdog.missed_events)
    # The re-arm recovered the core: it kept servicing wakes afterwards.
    assert satin.tsp.timer_entries_per_core.get(core.index, 0) > 0


def test_persistent_drop_raises_liveness_alarm():
    machine, satin, watchdog = _hardened(max_retries=2)
    core = satin.activation.participating_cores[0]
    core.secure_timer.fault_filter = (
        lambda core_index: "drop" if core_index == core.index else None
    )
    machine.run(until=satin.policy.tp * 8)
    assert watchdog.degraded_rounds >= 1
    liveness = satin.alarms.by_severity(SEVERITY_LIVENESS)
    assert liveness
    assert all(a.kind == "missed_round" for a in liveness)
    assert all(a.core_index == core.index for a in liveness)
    # The retry budget resets after each alarm: the watchdog keeps
    # fighting instead of giving up, so rearms keep accumulating.
    assert watchdog.rearms > watchdog.max_retries


def test_late_wake_within_grace_is_not_a_miss():
    machine, satin, watchdog = _hardened()
    grace = watchdog.grace
    core = satin.activation.participating_cores[0]
    delayed = []

    def delay_first(core_index):
        if core_index == core.index and not delayed:
            delayed.append(machine.sim.now)
            return grace * 0.5
        return None

    core.secure_timer.fault_filter = delay_first
    machine.run(until=satin.policy.tp * 6)
    assert delayed
    assert watchdog.missed_wakes == 0


def test_superseded_generation_check_is_a_noop():
    machine, satin, watchdog = _hardened()
    core = satin.activation.participating_cores[0]
    machine.run(until=satin.policy.tp * 2)
    checks_before = watchdog.checks
    missed_before = watchdog.missed_wakes
    # A stale check (older generation) must not record a miss.
    watchdog._check(core, generation=-1, wake_at=machine.sim.now,
                    serviced_at_arm=0)
    assert watchdog.checks == checks_before + 1
    assert watchdog.missed_wakes == missed_before


def test_default_grace_is_a_fraction_of_tp():
    machine, satin, watchdog = _hardened()
    assert watchdog.grace == satin.policy.tp * 0.05
    assert watchdog.retry_delay == watchdog.grace


def test_cannot_harden_twice():
    import pytest

    from repro.errors import IntrospectionError

    machine, satin, watchdog = _hardened()
    assert isinstance(watchdog, RoundWatchdog)
    with pytest.raises(IntrospectionError, match="already hardened"):
        satin.harden()
