"""Auxiliary secure-world checks piggybacked on SATIN rounds."""

from repro.attacks.dkom import DkomModuleHider
from repro.core.satin import install_satin
from repro.kernel.modules import ModuleList
from repro.secure.semantic import SemanticChecker
from repro.sim.process import cpu


def test_auxiliary_check_runs_every_round(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    runs = []

    def factory(core):
        runs.append(core.index)
        yield cpu(1e-6)

    satin.add_auxiliary_check(factory)
    machine.run(until=satin.policy.tp * 6)
    assert satin.round_count >= 4
    assert len(runs) == satin.auxiliary_runs == satin.round_count


def test_semantic_checker_under_satin_scheduling(stack):
    """The DKOM-hidden module is found by the next SATIN round."""
    machine, rich_os = stack
    modules = ModuleList(rich_os.image)
    for name in ("usbcore", "evil_mod"):
        modules.load(name)
    satin = install_satin(machine, rich_os)
    checker = SemanticChecker(modules)
    satin.add_auxiliary_check(checker.run_check)

    machine.run(until=satin.policy.tp * 3)
    assert checker.detections == 0  # nothing hidden yet

    DkomModuleHider(modules, "evil_mod").hide()
    before = len(checker.results)
    machine.run(until=machine.now + satin.policy.tp * 3)
    new_results = checker.results[before:]
    assert new_results
    assert all(not r.clean for r in new_results)
    assert checker.detections >= 1


def test_auxiliary_time_counts_as_secure_time(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)

    def heavy(core):
        yield cpu(2e-3)

    satin.add_auxiliary_check(heavy)
    machine.run(until=satin.policy.tp * 4)
    total_secure = sum(c.secure_time_total for c in machine.cores)
    scan_time = sum(r.duration for r in satin.checker.results)
    # The auxiliary 2 ms per round shows up in secure-world residency.
    assert total_secure > scan_time + satin.round_count * 1.5e-3
