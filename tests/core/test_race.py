"""Analytical race-model tests (Equations 1 and 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PAPER_KERNEL_SIZE, PAPER_S_BOUND
from repro.core.race import (
    RaceParameters,
    escape_probability,
    evasion_succeeds,
    max_safe_area_size,
    s_bound,
    unprotected_fraction,
)
from repro.errors import ConfigurationError


def test_paper_s_bound():
    assert s_bound(RaceParameters()) == PAPER_S_BOUND == 1_218_351


def test_paper_unprotected_fraction():
    fraction = unprotected_fraction(RaceParameters())
    assert abs(fraction - 0.8978) < 0.001  # the paper rounds to ~90%


def test_escape_probability_alias():
    p = RaceParameters()
    assert escape_probability(p) == unprotected_fraction(p)


def test_evasion_boundary_consistent_with_bound():
    p = RaceParameters()
    bound = s_bound(p)
    assert not evasion_succeeds(p, bound - 1)
    assert evasion_succeeds(p, bound + 1)


def test_max_safe_area_size_matches_bound_formula():
    p = RaceParameters()
    assert max_safe_area_size(p) == s_bound(p)


def test_paper_areas_fit_the_bound():
    from repro.config import PAPER_LARGEST_AREA

    assert PAPER_LARGEST_AREA < max_safe_area_size(RaceParameters())


def test_tns_delay_composition():
    p = RaceParameters(tns_sched=1e-4, tns_threshold=2e-3)
    assert p.tns_delay == pytest.approx(2.1e-3)


def test_with_override():
    p = RaceParameters().with_(tns_recover=1e-2)
    assert p.tns_recover == 1e-2
    assert RaceParameters().tns_recover != 1e-2  # frozen original


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        RaceParameters(ts_1byte=0.0)
    with pytest.raises(ConfigurationError):
        RaceParameters(tns_recover=-1.0)
    with pytest.raises(ConfigurationError):
        RaceParameters(kernel_size=0)


def test_impossible_defence_raises():
    # A switch slower than the whole attacker pipeline leaves no safe size.
    p = RaceParameters(ts_switch=1.0, tns_sched=0.0, tns_threshold=0.0,
                       tns_recover=0.0)
    with pytest.raises(ConfigurationError):
        max_safe_area_size(p)


@settings(max_examples=60, deadline=None)
@given(
    recover=st.floats(min_value=1e-4, max_value=1e-1),
    extra=st.floats(min_value=1e-6, max_value=1e-2),
)
def test_s_bound_monotone_in_recovery_time(recover, extra):
    """A slower attacker leaves more of the kernel protected."""
    base = RaceParameters(tns_recover=recover)
    slower = RaceParameters(tns_recover=recover + extra)
    assert s_bound(slower) >= s_bound(base)


@settings(max_examples=60, deadline=None)
@given(per_byte=st.floats(min_value=1e-10, max_value=1e-7))
def test_unprotected_fraction_bounds(per_byte):
    p = RaceParameters(ts_1byte=per_byte)
    fraction = unprotected_fraction(p)
    assert 0.0 <= fraction <= 1.0


def test_faster_scanner_protects_more():
    fast = RaceParameters(ts_1byte=6.67e-9)
    slow = RaceParameters(ts_1byte=1.07e-8)
    assert unprotected_fraction(fast) < unprotected_fraction(slow)
