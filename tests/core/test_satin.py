"""SATIN engine tests."""

import pytest

from repro.config import SatinConfig
from repro.core.satin import Satin, install_satin
from repro.errors import IntrospectionError
from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID


def test_install_lifecycle(stack):
    machine, rich_os = stack
    satin = Satin(machine, rich_os)
    satin.install()
    with pytest.raises(IntrospectionError):
        satin.install()
    satin.uninstall()
    satin.uninstall()  # idempotent


def test_default_partition_is_19_areas(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    assert len(satin.areas) == 19
    assert satin.policy.area_count == 19


def test_rounds_happen_and_pick_random_cores(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 30)
    assert satin.round_count >= 20
    cores_used = {r.core_index for r in satin.checker.results}
    assert len(cores_used) >= 4


def test_full_pass_scans_every_area_once(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    while satin.round_count < 19:
        machine.run_for(satin.policy.tp)
    first_pass = satin.checker.results[:19]
    assert sorted(r.area_index for r in first_pass) == list(range(19))


def test_clean_kernel_raises_no_alarms(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 25)
    assert satin.detection_count == 0


def test_persistent_hijack_detected_in_trace_area(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    alarms = satin.alarms.alarms
    assert len(alarms) >= 1
    assert all(a.area_index == 14 for a in alarms)


def test_alarm_record_contents(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    assert alarm.digest != alarm.expected
    assert alarm.round_index >= 0
    assert 0 <= alarm.core_index < 6


def test_ns_interrupts_blocked_during_round(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    blocked_during_round = []

    original = satin.checker.run_round

    def wrapped(core):
        blocked_during_round.append(machine.gic.ns_blocked(core.index))
        result = yield from original(core)
        return result

    satin.checker.run_round = wrapped
    machine.run(until=satin.policy.tp * 4)
    # The flag is set by run_round itself (checked after entry), so sample
    # the trace instead: rounds ran and afterwards nothing stays blocked.
    assert satin.round_count >= 1
    assert all(not machine.gic.ns_blocked(c.index) for c in machine.cores)


def test_explicit_max_area_size_splits_sections(stack):
    machine, rich_os = stack
    config = SatinConfig(tgoal=9.5, max_area_size=20_000)
    satin = Satin(machine, rich_os, config=config)
    assert len(satin.areas) > 19
    assert all(a.length <= 20_000 for a in satin.areas)


def test_area_bound_enforced_against_hostile_race_model(stack):
    """A race model leaving almost no safe window rejects the partition."""
    from repro.core.race import RaceParameters

    machine, rich_os = stack
    hostile = RaceParameters(
        ts_switch=0.0, tns_sched=1e-6, tns_threshold=1e-6, tns_recover=1e-6
    )
    with pytest.raises(IntrospectionError):
        Satin(machine, rich_os, config=SatinConfig(tgoal=9.5), race=hostile)


def test_whole_kernel_mode_skips_bound(stack):
    machine, rich_os = stack
    config = SatinConfig(tgoal=1.0, partition_mode="whole",
                         enforce_area_bound=False)
    satin = Satin(machine, rich_os, config=config)
    assert len(satin.areas) == 1


def test_snapshot_mode_detects_too(stack):
    machine, rich_os = stack
    config = SatinConfig(tgoal=9.5, use_snapshot=True)
    satin = Satin(machine, rich_os, config=config).install()
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    assert satin.detection_count >= 1
    assert satin.snapshot_buffer.snapshots_taken >= 19


def test_summary_fields(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 5)
    summary = satin.summary()
    assert summary["areas"] == 19
    assert summary["rounds"] == satin.round_count
    assert summary["alarms"] == 0
    assert summary["avg_round_duration"] > 0
    assert summary["secure_entries"] >= summary["rounds"]


def test_uninstall_stops_rounds(stack):
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 3)
    count = satin.round_count
    satin.uninstall()
    machine.run(until=machine.now + satin.policy.tp * 5)
    assert satin.round_count == count


def test_round_duration_below_attack_window(stack):
    """Every round finishes inside the race bound (the SATIN guarantee)."""
    machine, rich_os = stack
    satin = install_satin(machine, rich_os)
    machine.run(until=satin.policy.tp * 25)
    window = satin.race.tns_delay + satin.race.tns_recover
    assert satin.checker.results
    assert all(r.duration < window for r in satin.checker.results)
