"""Experiment driver tests (reduced sizes; shapes and invariants)."""

import pytest

import repro
from repro.workloads.programs import program_by_name


def test_table1_relations():
    result = repro.run_table1(repetitions=12)
    assert result.values["hash_not_slower_than_snapshot_a53"]
    assert result.values["a57_faster_than_a53"]
    a53 = result.values["A53.hash"]
    a57 = result.values["A57.hash"]
    # Calibration: averages within 5% of Table I.
    assert abs(a53.average - 1.07e-8) / 1.07e-8 < 0.05
    assert abs(a57.average - 6.71e-9) / 6.71e-9 < 0.05
    assert "Table I" in result.rendered


def test_switch_delay_within_paper_range():
    result = repro.run_switch_delay(repetitions=25)
    assert result.values["within_paper_range"]
    assert result.values["clusters_similar"]


def test_recover_delay_matches_paper():
    result = repro.run_recover_delay(repetitions=25)
    assert result.values["a57_recovers_faster"]
    a53 = result.values["summaries"]["A53"]
    assert abs(a53.average - 5.80e-3) / 5.80e-3 < 0.06


def test_table2_growth():
    result = repro.run_table2(rounds=100)
    assert result.values["average_grows_with_period"]
    assert 1.5 < result.values["growth_8s_to_300s"] < 3.5
    assert result.values["worst_observed"] <= 2.0e-3


def test_single_core_ratio_near_quarter():
    result = repro.run_single_core_ratio(rounds=200)
    for ratio in result.values["ratios"].values():
        assert abs(ratio - 0.25) < 0.1


def test_figure4_boxplots():
    result = repro.run_figure4(rounds=60)
    boxes = result.values["boxes"]
    assert set(boxes) == {8.0, 16.0, 30.0, 120.0, 300.0}
    for box in boxes.values():
        assert box.q1 <= box.median <= box.q3
        assert box.whisker_low <= box.q1 and box.q3 <= box.whisker_high


def test_race_analysis_matches_paper():
    result = repro.run_race_analysis(mc_trials=4000)
    assert result.values["s_bound"] == 1_218_351
    assert abs(result.values["unprotected_fraction"] - 0.898) < 0.002
    assert abs(result.values["mc_escape_rate"] - 0.90) < 0.05


@pytest.mark.slow
def test_user_prober_eval():
    result = repro.run_user_prober_eval(introspection_rounds=5)
    delays = result.values["delay_summary"]
    assert delays is not None
    assert delays.maximum < 5.97e-3  # the paper's bound
    a57 = result.values["a57_check_summary"]
    if a57 is not None:
        assert abs(a57.average - 8.04e-2) / 8.04e-2 < 0.1


@pytest.mark.slow
def test_detection_experiment_one_pass():
    result = repro.run_detection_experiment(passes=1)
    stats = result.values["stats"]
    assert stats.prober_faithful
    assert stats.all_trace_checks_detected
    assert stats.trace_area_checks == 1
    assert abs(stats.full_pass_time_estimate - 152.0) < 2.0


@pytest.mark.slow
def test_escape_comparison():
    result = repro.run_escape_comparison(rounds=5, mean_period=2.0)
    assert result.values["baseline"].escape_rate == 1.0
    assert result.values["satin"].escape_rate == 0.0


@pytest.mark.slow
def test_figure7_quick_subset():
    programs = [program_by_name("dhrystone2"), program_by_name("file_copy_256B")]
    result = repro.run_figure7(
        duration=8.0, task_counts=(1,), programs=programs
    )
    points = {p.program: p for p in result.values["points"]}
    assert points["file_copy_256B"].degradation > 5 * points["dhrystone2"].degradation
    assert 0.02 < points["file_copy_256B"].degradation < 0.06


@pytest.mark.slow
def test_ablation_whole_kernel_loses_satin_wins():
    result = repro.run_ablations(
        trace_scans_wanted=2, variants=["satin", "whole-kernel"]
    )
    outcomes = result.values["outcomes"]
    assert outcomes["satin"].detection_rate == 1.0
    assert outcomes["whole-kernel"].detection_rate == 0.0
