"""Stack builder and cluster-stat tests."""

import pytest

from repro.config import juno_r1_config
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, build_stack


def test_bare_stack_has_no_defence_or_attack():
    stack = build_stack(seed=1)
    assert stack.satin is None
    assert stack.prober is None and stack.evader is None


def test_full_stack_wiring():
    stack = build_stack(seed=1, with_satin=True, with_evader=True)
    assert stack.satin is not None and stack.satin.installed
    assert stack.prober is not None and stack.prober.running
    assert stack.rootkit is not None and stack.rootkit.active
    assert stack.evader is not None
    assert stack.oracle is not None


def test_stack_without_acceleration():
    stack = build_stack(seed=1, with_evader=True, accelerate=False)
    assert stack.oracle is None
    assert stack.prober is not None and stack.prober.oracle is None


def test_conflicting_seeds_raise():
    config = juno_r1_config(seed=111)
    with pytest.raises(ConfigurationError, match="conflicting seeds"):
        build_stack(seed=222, machine_config=config)


def test_machine_config_seed_is_authoritative():
    stack = build_stack(machine_config=juno_r1_config(seed=111))
    assert stack.machine.config.seed == 111


def test_matching_seeds_accepted():
    stack = build_stack(seed=111, machine_config=juno_r1_config(seed=111))
    assert stack.machine.config.seed == 111


def test_default_seed_is_2019():
    assert build_stack().machine.config.seed == 2019


def test_trusted_boot_precedes_attack():
    """SATIN's hashes describe the benign kernel even with the evader on."""
    stack = build_stack(seed=1, with_satin=True, with_evader=True)
    satin, rootkit = stack.satin, stack.rootkit
    assert satin is not None and rootkit is not None
    trace = rootkit.traces[0]
    span = next(a.span for a in satin.areas if a.contains(trace.offset))
    # The stored digest corresponds to the ORIGINAL bytes (hash computed
    # pre-attack), so the planted trace is detectable.
    from repro.hw.world import World
    from repro.secure.hashes import djb2

    live = djb2(stack.rich_os.image.view(span[0], span[1], World.SECURE))
    assert live != satin.store.expected_digest(span)


def test_experiment_result_comparisons():
    result = ExperimentResult("X", "t", "rendered")
    result.compare("q", 1.0, 1.1)
    assert result.comparisons == [
        {"quantity": "q", "paper": 1.0, "measured": 1.1}
    ]
    assert str(result) == "rendered"


def test_cluster_statistics(juno_machine):
    from repro.sim.process import cpu

    def payload(core):
        yield cpu(1e-3)

    cluster = juno_machine.cluster("big")
    assert cluster.total_secure_entries() == 0
    juno_machine.monitor.request_secure_entry(juno_machine.big_core(), payload)
    juno_machine.sim.run(max_events=100)
    assert cluster.total_secure_entries() == 1
    assert cluster.total_secure_time() > 1e-3
    assert juno_machine.cluster("LITTLE").total_secure_entries() == 0
