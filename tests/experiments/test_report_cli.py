"""Report generator and CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.report import (
    EXPERIMENT_SPECS,
    generate_report,
    run_experiment,
    spec_by_id,
)


def test_all_specs_have_unique_ids():
    ids = [spec.experiment_id for spec in EXPERIMENT_SPECS]
    assert len(ids) == len(set(ids))
    assert {"E1", "E9", "E10", "A1", "A2"} <= set(ids)


def test_spec_lookup_case_insensitive():
    assert spec_by_id("e7").experiment_id == "E7"
    with pytest.raises(KeyError):
        spec_by_id("E99")


def test_run_experiment_by_id():
    result = run_experiment("E7")
    assert result.values["s_bound"] == 1_218_351


def test_generate_report_subset():
    text = generate_report(only=["E7", "E2"])
    assert "# SATIN reproduction report" in text
    assert "## E7" in text and "## E2" in text
    assert "## E9" not in text
    assert "paper vs measured:" in text


def test_generate_report_progress_callback():
    seen = []
    generate_report(only=["E7"], progress=seen.append)
    assert seen and "E7" in seen[0]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E9" in out and "detection campaign" in out


def test_cli_experiment(capsys):
    assert main(["experiment", "E7", "-v"]) == 0
    out = capsys.readouterr().out
    assert "1,218,351" in out
    assert "paper vs measured" in out


def test_cli_experiment_unknown_id(capsys):
    assert main(["experiment", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", "--only", "E7", "-o", str(target)]) == 0
    assert "# SATIN reproduction report" in target.read_text()


def test_cli_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
