"""Prober comparison experiment tests."""

import pytest

from repro.experiments.prober_comparison import (
    _run_campaign,
    run_prober_comparison,
)


def test_unknown_prober_rejected():
    with pytest.raises(ValueError):
        _run_campaign("bogus", "satin", seed=1, rounds_wanted=1)


@pytest.mark.slow
def test_comparison_shape():
    result = run_prober_comparison(rounds=3)
    outcomes = result.values["outcomes"]
    assert len(outcomes) == 6
    assert result.values["latency_ordering_holds"]
    assert result.values["kprober1_mostly_blind_to_satin"]


@pytest.mark.slow
def test_kprober2_latency_beats_user_level():
    result = run_prober_comparison(rounds=3)
    outcomes = result.values["outcomes"]
    k2 = outcomes[("kprober2", "whole-kernel")].latency
    user = outcomes[("user", "whole-kernel")].latency
    assert k2.average < user.average
