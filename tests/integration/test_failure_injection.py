"""Failure-injection property tests.

Byte corruption *anywhere* in the static kernel must be caught within one
full SATIN pass, regardless of position, size, or which bytes changed —
the completeness property of the divide-and-conquer partition.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.areas import area_containing
from repro.core.satin import install_satin
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.kernel.os import boot_rich_os
from tests.conftest import small_config


def _fresh_stack(seed):
    machine = build_machine(small_config(seed=seed))
    rich_os = boot_rich_os(machine)
    return machine, rich_os


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    offset_fraction=st.floats(min_value=0.0, max_value=0.999999),
    length=st.integers(min_value=1, max_value=64),
    xor_mask=st.integers(min_value=1, max_value=255),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_corruption_is_detected_within_one_pass(
    offset_fraction, length, xor_mask, seed
):
    machine, rich_os = _fresh_stack(seed)
    satin = install_satin(machine, rich_os)
    offset = min(
        int(offset_fraction * rich_os.image.size),
        rich_os.image.size - length,
    )
    original = rich_os.image.read(offset, length, World.NORMAL)
    corrupted = bytes(b ^ xor_mask for b in original)
    rich_os.image.write(offset, corrupted, World.NORMAL)

    expected_area = area_containing(satin.areas, offset)
    passes_before = satin.full_passes
    while satin.full_passes < passes_before + 1:
        machine.run_for(satin.policy.tp)
    alarmed = {a.area_index for a in satin.alarms.alarms}
    assert expected_area.index in alarmed
    # A corruption crossing an area boundary must alarm both areas.
    end_area = area_containing(satin.areas, offset + length - 1)
    assert end_area.index in alarmed


def test_corruption_then_repair_between_passes_goes_unseen():
    """The flip side: fixed before any scan touches it = no alarm.

    (This is precisely the attacker's goal; SATIN's guarantee is about
    the *race* once a scan has started, not about changes fully reverted
    between rounds.)
    """
    machine, rich_os = _fresh_stack(7)
    satin = install_satin(machine, rich_os)
    # Corrupt and repair instantly while no scan is running.
    original = rich_os.image.read(1000, 4, World.NORMAL)
    rich_os.image.write(1000, b"\xff\xff\xff\xff", World.NORMAL)
    rich_os.image.write(1000, original, World.NORMAL)
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    assert satin.detection_count == 0


def test_multiple_simultaneous_corruptions_all_found():
    machine, rich_os = _fresh_stack(13)
    satin = install_satin(machine, rich_os)
    targets = [100, rich_os.image.size // 3, rich_os.image.size - 50]
    expected = set()
    for offset in targets:
        rich_os.image.write(offset, b"\xaa\xbb", World.NORMAL)
        expected.add(area_containing(satin.areas, offset).index)
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    alarmed = {a.area_index for a in satin.alarms.alarms}
    assert expected <= alarmed
