"""End-to-end integration scenarios: the paper's storyline, in order."""

import pytest

from repro.attacks.evader import TZEvader
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.rootkit import PersistentRootkit
from repro.config import SatinConfig
from repro.core.satin import Satin, install_satin
from repro.errors import SecureAccessError
from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID
from repro.secure.baseline import random_whole_kernel


def test_act1_naive_rootkit_is_caught_by_any_introspection(fast_juno_stack):
    """A rootkit with no evasion loses even to the whole-kernel baseline."""
    machine, rich_os = fast_juno_stack
    engine = random_whole_kernel(machine, rich_os, mean_period=0.5).install()
    PersistentRootkit(machine, rich_os).install()
    machine.run(until=4.0)
    assert engine.detection_count >= 1


def test_act2_tz_evader_defeats_whole_kernel_baseline(fast_juno_stack):
    """With the prober, the same rootkit escapes the baseline forever."""
    machine, rich_os = fast_juno_stack
    engine = random_whole_kernel(machine, rich_os, mean_period=0.5).install()
    prober = KProberII(
        machine, rich_os, oracle=ProberAccelerationOracle(machine)
    ).install()
    rootkit = PersistentRootkit(machine, rich_os)
    evader = TZEvader(machine, rich_os, rootkit, prober.controller).start()
    machine.run(until=5.0)
    assert engine.round_count >= 5
    assert engine.detection_count == 0      # every scan came up clean
    assert evader.hides_completed >= 5      # because it hid every time
    assert rootkit.active or evader.state.value == "hiding"


def test_act3_satin_defeats_tz_evader(fast_juno_stack):
    """SATIN's small random areas win the race the baseline loses."""
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    prober = KProberII(
        machine, rich_os, oracle=ProberAccelerationOracle(machine)
    ).install()
    rootkit = PersistentRootkit(machine, rich_os)
    evader = TZEvader(machine, rich_os, rootkit, prober.controller).start()
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    trace_scans = satin.checker.results_for_area(14)
    assert trace_scans and all(not s.match for s in trace_scans)
    assert evader.hide_attempts > 0          # it raced, and lost
    assert satin.detection_count == len(trace_scans)


def test_secure_world_state_is_invisible_to_normal_world(fast_juno_stack):
    """The attacker can never read SATIN's secrets directly."""
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    with pytest.raises(SecureAccessError):
        machine.memory.read(satin.store.table_base, 8, World.NORMAL)
    with pytest.raises(SecureAccessError):
        machine.memory.read(satin.wakeup_queue.queue_base, 8, World.NORMAL)
    with pytest.raises(SecureAccessError):
        machine.core(0).registers.read("CNTPS_CVAL_EL1", World.NORMAL)


def test_prober_is_reliable_under_cfs_load(fast_juno_stack):
    """KProber-II keeps working when CFS tasks saturate every core."""
    from repro.sim.process import cpu

    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)

    def hog(task):
        while machine.now < satin.policy.tp * 6:
            yield cpu(1e-3)

    for i in range(12):  # two CFS hogs per core
        rich_os.spawn(f"hog-{i}", hog)
    prober = KProberII(
        machine, rich_os, oracle=ProberAccelerationOracle(machine)
    ).install()
    machine.run(until=satin.policy.tp * 5)
    rounds = satin.round_count
    assert rounds >= 3
    assert len(prober.controller.detections) >= rounds - 1


def test_alarm_listener_fires_immediately_on_detection(fast_juno_stack):
    machine, rich_os = fast_juno_stack
    satin = install_satin(machine, rich_os)
    alarms_seen = []
    satin.alarms.add_listener(lambda a: alarms_seen.append(machine.now))
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    while not alarms_seen:
        machine.run_for(satin.policy.tp)
    assert alarms_seen[0] <= machine.now


def test_whole_system_determinism():
    """Identical seeds produce identical campaigns."""
    from tests.conftest import fast_juno_config
    from repro.hw.platform import build_machine
    from repro.kernel.os import boot_rich_os

    def run():
        machine = build_machine(fast_juno_config(seed=321))
        rich_os = boot_rich_os(machine)
        satin = install_satin(machine, rich_os)
        prober = KProberII(
            machine, rich_os, oracle=ProberAccelerationOracle(machine)
        ).install()
        rootkit = PersistentRootkit(machine, rich_os)
        TZEvader(machine, rich_os, rootkit, prober.controller).start()
        machine.run(until=19 * 0.5 * 2)
        return (
            satin.round_count,
            [round(r.start_time, 9) for r in satin.checker.results],
            [round(d.time, 9) for d in prober.controller.detections],
            rootkit.hide_count,
        )

    assert run() == run()


def test_transplanted_config_generic_eight_core():
    """Portability (Section VII-D): SATIN runs on a non-Juno topology."""
    from repro.config import ClusterConfig, MachineConfig, a57_timing, KernelConfig
    from repro.hw.platform import build_machine
    from repro.kernel.os import boot_rich_os
    from tests.conftest import SMALL_KERNEL_SIZE

    config = MachineConfig(
        clusters=[ClusterConfig("octa", 8, a57_timing())],
        kernel=KernelConfig(image_size=SMALL_KERNEL_SIZE),
        satin=SatinConfig(tgoal=19 * 0.25),
        seed=5,
    )
    machine = build_machine(config)
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    machine.run(until=19 * 0.25 * 2)
    assert satin.round_count >= 19
    cores_used = {r.core_index for r in satin.checker.results}
    assert len(cores_used) >= 5  # spreads over the 8 cores
