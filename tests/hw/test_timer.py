"""Generic timer model tests: shared counter + secure timers."""

import pytest

from repro.errors import SecureAccessError
from repro.hw.registers import RegisterFile
from repro.hw.timer import SecureTimer, SystemCounter
from repro.hw.world import World
from repro.sim.simulator import Simulator


@pytest.fixture
def parts():
    sim = Simulator()
    counter = SystemCounter(sim, 50_000_000)
    regs = RegisterFile()
    timer = SecureTimer(sim, counter, regs, core_index=0)
    fired = []
    timer.interrupt_sink = fired.append
    return sim, counter, regs, timer, fired


def test_counter_tracks_simulated_time(parts):
    sim, counter, *_ = parts
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert counter.read_seconds() == 1.0
    assert counter.read_ticks() == 50_000_000


def test_ticks_for_rounds_up(parts):
    _, counter, *_ = parts
    assert counter.ticks_for(1.0) == 50_000_000
    assert counter.ticks_for(1.00000001) == 50_000_001
    assert counter.seconds_for(50_000_000) == 1.0


def test_program_wakeup_fires_at_requested_time(parts):
    sim, _, _, timer, fired = parts
    timer.program_wakeup(0.5, World.SECURE)
    sim.run()
    assert fired == [0]
    assert abs(sim.now - 0.5) < 1e-7
    assert timer.fire_count == 1


def test_normal_world_cannot_program_secure_timer(parts):
    _, _, _, timer, _ = parts
    with pytest.raises(SecureAccessError):
        timer.program_wakeup(0.5, World.NORMAL)


def test_stop_prevents_firing(parts):
    sim, _, _, timer, fired = parts
    timer.program_wakeup(0.5, World.SECURE)
    timer.stop(World.SECURE)
    sim.run(until=1.0)
    assert fired == []
    assert timer.next_fire_time() is None


def test_reprogram_moves_the_fire_time(parts):
    sim, _, _, timer, fired = parts
    timer.program_wakeup(0.5, World.SECURE)
    timer.program_wakeup(0.8, World.SECURE)
    sim.run()
    assert len(fired) == 1
    assert abs(sim.now - 0.8) < 1e-7


def test_next_fire_time_visible_to_simulator(parts):
    _, _, _, timer, _ = parts
    timer.program_wakeup(0.25, World.SECURE)
    assert abs(timer.next_fire_time() - 0.25) < 1e-7


def test_past_wakeup_clamps_to_now(parts):
    sim, _, _, timer, fired = parts
    sim.schedule(1.0, lambda: None)
    sim.run()
    timer.program_wakeup(0.1, World.SECURE)  # in the past
    sim.run()
    assert fired == [0]
    assert sim.now >= 1.0


def test_disable_via_register_write(parts):
    sim, _, regs, timer, fired = parts
    timer.program_wakeup(0.5, World.SECURE)
    regs.write("CNTPS_CTL_EL1", 0, World.SECURE)
    sim.run(until=1.0)
    assert fired == []
