"""Machine assembly tests."""

import pytest

from repro.config import juno_r1_config
from repro.errors import ConfigurationError
from repro.hw.platform import DRAM_BASE, SECURE_SRAM_BASE, build_machine
from repro.hw.world import World
from repro.sim.process import cpu
from tests.conftest import small_config


def test_juno_has_six_cores_in_two_clusters():
    machine = build_machine(juno_r1_config())
    assert len(machine.cores) == 6
    assert [c.name for c in machine.clusters] == ["LITTLE", "big"]
    assert machine.cluster("LITTLE").core_indices == [0, 1, 2, 3]
    assert machine.cluster("big").core_indices == [4, 5]


def test_little_and_big_core_helpers():
    machine = build_machine(juno_r1_config())
    assert machine.little_core().cluster_name == "LITTLE"
    assert machine.big_core().cluster_name == "big"
    assert machine.big_core().index == 4


def test_memory_map_layout():
    machine = build_machine(small_config())
    assert machine.dram.base == DRAM_BASE and not machine.dram.secure
    assert machine.secure_sram.base == SECURE_SRAM_BASE and machine.secure_sram.secure


def test_unknown_cluster_raises():
    machine = build_machine(small_config())
    with pytest.raises(ConfigurationError):
        machine.cluster("MEDIUM")


def test_secure_world_active_tracks_core_state():
    machine = build_machine(small_config())
    assert not machine.secure_world_active()

    def payload(core):
        yield cpu(1e-3)

    machine.monitor.register_secure_handler(29, payload)
    machine.core(0).secure_timer.program_wakeup(0.5, World.SECURE)
    machine.run(until=0.5001)
    assert machine.secure_world_active()
    machine.run(until=0.6)
    assert not machine.secure_world_active()


def test_next_secure_timer_fire_is_minimum():
    machine = build_machine(small_config())
    assert machine.next_secure_timer_fire() is None
    machine.core(0).secure_timer.program_wakeup(2.0, World.SECURE)
    machine.core(1).secure_timer.program_wakeup(1.0, World.SECURE)
    assert abs(machine.next_secure_timer_fire() - 1.0) < 1e-7


def test_secure_timer_interrupt_wired_to_monitor():
    machine = build_machine(small_config())
    entered = []

    def payload(core):
        entered.append(core.index)
        yield cpu(1e-6)

    machine.monitor.register_secure_handler(29, payload)
    machine.core(3).secure_timer.program_wakeup(0.1, World.SECURE)
    machine.run(until=0.2)
    assert entered == [3]


def test_core_timings_match_clusters():
    config = juno_r1_config()
    timings = config.core_timings()
    assert len(timings) == 6
    assert timings[0].name == "Cortex-A53"
    assert timings[5].name == "Cortex-A57"


def test_cluster_core_indices_config_helper():
    config = juno_r1_config()
    assert config.cluster_core_indices("big") == (4, 5)
    with pytest.raises(ConfigurationError):
        config.cluster_core_indices("nope")
