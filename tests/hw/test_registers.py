"""System register file tests: TrustZone access control."""

import pytest

from repro.errors import HardwareError, SecureAccessError
from repro.hw.registers import RegisterFile
from repro.hw.world import World


@pytest.fixture
def regs():
    return RegisterFile()


def test_normal_register_accessible_from_both_worlds(regs):
    regs.write("VBAR_EL1", 0x1000, World.NORMAL)
    assert regs.read("VBAR_EL1", World.NORMAL) == 0x1000
    assert regs.read("VBAR_EL1", World.SECURE) == 0x1000


def test_secure_register_blocked_from_normal_world(regs):
    with pytest.raises(SecureAccessError):
        regs.read("CNTPS_CTL_EL1", World.NORMAL)
    with pytest.raises(SecureAccessError):
        regs.write("CNTPS_CVAL_EL1", 5, World.NORMAL)


def test_secure_register_accessible_from_secure_world(regs):
    regs.write("CNTPS_CVAL_EL1", 123, World.SECURE)
    assert regs.read("CNTPS_CVAL_EL1", World.SECURE) == 123


def test_scr_el3_is_secure_only(regs):
    with pytest.raises(SecureAccessError):
        regs.read("SCR_EL3", World.NORMAL)
    assert regs.read("SCR_EL3", World.SECURE) == 0b0010  # IRQ bit reset value


def test_unknown_register_raises(regs):
    with pytest.raises(HardwareError):
        regs.read("NOT_A_REGISTER", World.SECURE)
    with pytest.raises(HardwareError):
        regs.write("NOT_A_REGISTER", 1, World.SECURE)
    with pytest.raises(HardwareError):
        regs.on_write("NOT_A_REGISTER", lambda v: None)


def test_write_hook_fires_with_value(regs):
    seen = []
    regs.on_write("CNTPS_CTL_EL1", seen.append)
    regs.write("CNTPS_CTL_EL1", 1, World.SECURE)
    assert seen == [1]


def test_write_hook_removable(regs):
    seen = []
    regs.on_write("CNTPS_CTL_EL1", seen.append)
    regs.on_write("CNTPS_CTL_EL1", None)
    regs.write("CNTPS_CTL_EL1", 1, World.SECURE)
    assert seen == []


def test_blocked_write_does_not_fire_hook(regs):
    seen = []
    regs.on_write("CNTPS_CTL_EL1", seen.append)
    with pytest.raises(SecureAccessError):
        regs.write("CNTPS_CTL_EL1", 1, World.NORMAL)
    assert seen == []


def test_peek_bypasses_world_checks(regs):
    regs.write("CNTPS_CVAL_EL1", 99, World.SECURE)
    assert regs.peek("CNTPS_CVAL_EL1") == 99


def test_values_coerced_to_int(regs):
    regs.write("VBAR_EL1", 7.0, World.NORMAL)
    assert regs.read("VBAR_EL1", World.NORMAL) == 7
