"""Physical memory and TrustZone partitioning tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError, SecureAccessError
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World


@pytest.fixture
def memory():
    mem = PhysicalMemory()
    mem.add_region("normal", 0x1000, 0x1000, secure=False)
    mem.add_region("secure", 0x8000, 0x1000, secure=True)
    return mem


def test_write_read_roundtrip(memory):
    memory.write(0x1100, b"hello", World.NORMAL)
    assert memory.read(0x1100, 5, World.NORMAL) == b"hello"


def test_regions_initialised_to_zero(memory):
    assert memory.read(0x1000, 16, World.NORMAL) == bytes(16)


def test_overlapping_regions_rejected():
    mem = PhysicalMemory()
    mem.add_region("a", 0x0, 0x100)
    with pytest.raises(MemoryAccessError):
        mem.add_region("b", 0x80, 0x100)


def test_zero_size_region_rejected():
    with pytest.raises(MemoryAccessError):
        PhysicalMemory().add_region("empty", 0x0, 0)


def test_secure_region_blocked_from_normal_world(memory):
    with pytest.raises(SecureAccessError):
        memory.read(0x8000, 4, World.NORMAL)
    with pytest.raises(SecureAccessError):
        memory.write(0x8000, b"\x00", World.NORMAL)
    with pytest.raises(SecureAccessError):
        memory.view(0x8000, 4, World.NORMAL)


def test_secure_world_sees_everything(memory):
    memory.write(0x8000, b"key", World.SECURE)
    assert memory.read(0x8000, 3, World.SECURE) == b"key"
    # The secure world also reads normal memory (TrustZone asymmetry).
    memory.write(0x1000, b"os", World.NORMAL)
    assert memory.read(0x1000, 2, World.SECURE) == b"os"


def test_out_of_map_access_raises(memory):
    with pytest.raises(MemoryAccessError):
        memory.read(0x5000, 4, World.NORMAL)


def test_access_straddling_region_end_raises(memory):
    with pytest.raises(MemoryAccessError):
        memory.read(0x1FFE, 4, World.NORMAL)


def test_view_is_zero_copy_and_writable(memory):
    memory.write(0x1000, b"abcd", World.NORMAL)
    view = memory.view(0x1000, 4, World.SECURE)
    assert bytes(view) == b"abcd"
    view[0] = ord("z")
    assert memory.read(0x1000, 4, World.NORMAL) == b"zbcd"


def test_region_lookup(memory):
    assert memory.region_at(0x1800).name == "normal"
    assert memory.region_at(0x7000) is None
    assert memory.region_named("secure").secure
    with pytest.raises(MemoryAccessError):
        memory.region_named("missing")


def test_access_counters(memory):
    region = memory.region_named("normal")
    memory.read(0x1000, 1, World.NORMAL)
    memory.write(0x1000, b"x", World.NORMAL)
    assert region.read_count == 1 and region.write_count == 1


@settings(max_examples=40, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=0xF00),
    data=st.binary(min_size=1, max_size=256),
)
def test_roundtrip_property(offset, data):
    mem = PhysicalMemory()
    mem.add_region("r", 0x0, 0x1000)
    if offset + len(data) <= 0x1000:
        mem.write(offset, data, World.NORMAL)
        assert mem.read(offset, len(data), World.NORMAL) == data
