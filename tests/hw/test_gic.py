"""Interrupt controller routing tests."""

import pytest

from repro.errors import HardwareError
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.sim.process import cpu
from tests.conftest import small_config

NS_TEST_INTID = 40
SECURE_TEST_INTID = 41


@pytest.fixture
def machine():
    return build_machine(small_config())


def test_unconfigured_interrupt_raises(machine):
    with pytest.raises(HardwareError):
        machine.gic.trigger(machine.core(0), 77)


def test_ns_interrupt_delivered_in_normal_world(machine):
    hits = []
    machine.gic.register_ns_handler(NS_TEST_INTID, lambda c, i: hits.append(c.index))
    machine.gic.trigger(machine.core(1), NS_TEST_INTID)
    assert hits == [1]
    assert machine.gic.delivered_ns == 1


def test_secure_interrupt_enters_monitor(machine):
    entered = []

    def payload(core):
        entered.append(core.index)
        yield cpu(1e-6)

    machine.monitor.register_secure_handler(SECURE_TEST_INTID, payload)
    machine.gic.trigger(machine.core(2), SECURE_TEST_INTID)
    machine.run(until=1e-3)
    assert entered == [2]
    assert machine.core(2).world is World.NORMAL  # returned afterwards


def test_ns_interrupt_pended_while_core_secure_when_blocked(machine):
    hits = []
    machine.gic.register_ns_handler(NS_TEST_INTID, lambda c, i: hits.append(machine.now))

    def payload(core):
        machine.gic.set_ns_blocked(core.index, True)
        machine.gic.trigger(core, NS_TEST_INTID)  # arrives mid-round
        machine.gic.trigger(core, NS_TEST_INTID)  # again: must coalesce
        yield cpu(1e-3)
        machine.gic.set_ns_blocked(core.index, False)

    machine.monitor.register_secure_handler(SECURE_TEST_INTID, payload)
    machine.gic.trigger(machine.core(0), SECURE_TEST_INTID)
    machine.run(until=1e-2)
    # Delivered exactly once (coalesced), only after the secure exit.
    assert len(hits) == 1
    assert hits[0] >= 1e-3
    # Coalesced: the second trigger merged into the already-pending line.
    assert machine.gic.pended_ns == 1


def test_secure_interrupt_pended_while_core_already_secure(machine):
    entries = []

    def payload(core):
        entries.append(machine.now)
        if len(entries) == 1:
            # Raise a second secure interrupt while still in the secure
            # world: it must be pended and re-delivered after the exit.
            machine.gic.trigger(core, SECURE_TEST_INTID)
        yield cpu(1e-4)

    machine.monitor.register_secure_handler(SECURE_TEST_INTID, payload)
    machine.gic.trigger(machine.core(0), SECURE_TEST_INTID)
    machine.run(until=1e-2)
    assert len(entries) == 2
    assert entries[1] > entries[0] + 1e-4


def test_ns_blocked_flag_roundtrip(machine):
    assert not machine.gic.ns_blocked(3)
    machine.gic.set_ns_blocked(3, True)
    assert machine.gic.ns_blocked(3)
    machine.gic.set_ns_blocked(3, False)
    assert not machine.gic.ns_blocked(3)


def test_preemptive_mode_pauses_secure_execution(machine):
    """Without blocking, an NS interrupt stretches the secure round."""
    hits = []
    machine.gic.register_ns_handler(NS_TEST_INTID, lambda c, i: hits.append(machine.now))
    finished = []

    def payload(core):
        yield cpu(1e-3)
        finished.append(machine.now)

    machine.monitor.register_secure_handler(SECURE_TEST_INTID, payload)
    machine.gic.trigger(machine.core(0), SECURE_TEST_INTID)
    machine.run(until=2e-4)  # mid-round
    machine.gic.trigger(machine.core(0), NS_TEST_INTID)
    machine.run(until=1e-2)
    assert len(finished) == 1
    assert machine.monitor.preemptions == 1
    # The round took longer than the uninterrupted 1e-3 + switches.
    assert finished[0] > 1e-3 + 2e-6
    assert len(hits) == 1
