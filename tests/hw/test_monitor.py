"""EL3 secure monitor tests: world-switch lifecycle and timing."""

import pytest

from repro.errors import HardwareError
from repro.hw.platform import build_machine
from repro.hw.world import World
from repro.sim.process import cpu
from tests.conftest import small_config


@pytest.fixture
def machine():
    return build_machine(small_config())


def _noop_payload(duration=1e-4):
    def payload(core):
        yield cpu(duration)

    return payload


def test_entry_exit_lifecycle(machine):
    core = machine.core(0)
    states = []

    def payload(entered):
        states.append((entered.world, entered.transitioning))
        yield cpu(1e-4)

    machine.monitor.request_secure_entry(core, payload)
    assert core.transitioning  # context saving started immediately
    machine.run(until=1e-2)
    assert states == [(World.SECURE, False)]
    assert core.world is World.NORMAL and not core.transitioning


def test_switch_cost_in_calibrated_range(machine):
    core = machine.core(0)
    entered = []

    def payload(c):
        entered.append(machine.now)
        yield cpu(0.0)

    start = machine.now
    machine.monitor.request_secure_entry(core, payload)
    machine.run(until=1e-2)
    switch = entered[0] - start
    assert 2.38e-6 <= switch <= 3.60e-6


def test_secure_time_accounted_on_core(machine):
    core = machine.core(0)
    machine.monitor.request_secure_entry(core, _noop_payload(1e-3))
    machine.run(until=1e-2)
    assert core.secure_entries == 1
    # payload + two switches
    assert 1e-3 < core.secure_time_total < 1e-3 + 1e-5


def test_hooks_fire_in_order(machine):
    core = machine.core(0)
    events = []
    core.on_enter_secure.append(lambda c: events.append(("enter", machine.now)))
    core.on_exit_secure.append(lambda c: events.append(("exit", machine.now)))
    machine.monitor.request_secure_entry(core, _noop_payload())
    machine.run(until=1e-2)
    assert [e[0] for e in events] == ["enter", "exit"]
    assert events[1][1] > events[0][1]


def test_entry_rejected_when_core_not_in_normal_world(machine):
    core = machine.core(0)
    machine.monitor.request_secure_entry(core, _noop_payload(1e-3))
    with pytest.raises(HardwareError):
        machine.monitor.request_secure_entry(core, _noop_payload())


def test_unregistered_secure_interrupt_raises(machine):
    from repro.hw.gic import InterruptGroup

    machine.gic.configure(55, InterruptGroup.SECURE)
    with pytest.raises(HardwareError):
        machine.gic.trigger(machine.core(0), 55)


def test_multiple_cores_in_secure_world_simultaneously(machine):
    for index in (0, 1, 2):
        machine.monitor.request_secure_entry(machine.core(index), _noop_payload(1e-3))
    machine.run(until=5e-4)
    secure_now = [c.index for c in machine.cores if c.world is World.SECURE]
    assert sorted(secure_now) == [0, 1, 2]
    machine.run(until=1e-2)
    assert all(c.world is World.NORMAL for c in machine.cores)


def test_switch_statistics(machine):
    for _ in range(3):
        machine.monitor.request_secure_entry(machine.core(0), _noop_payload())
        machine.run(until=machine.now + 1e-3)
    assert machine.monitor.switches_to_secure == 3


def test_secure_execution_handle_visible_while_running(machine):
    machine.monitor.request_secure_entry(machine.core(0), _noop_payload(1e-3))
    machine.run(until=5e-4)
    assert machine.monitor.secure_execution_on(0) is not None
    machine.run(until=1e-2)
    assert machine.monitor.secure_execution_on(0) is None


def test_payload_yielding_wait_rejected(machine):
    from repro.sim.process import Signal, wait

    def bad(core):
        yield wait(Signal())

    from repro.errors import SimulationError

    machine.monitor.request_secure_entry(machine.core(0), bad)
    with pytest.raises(SimulationError):
        machine.run(until=1e-2)
