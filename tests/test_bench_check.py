"""Failure paths of ``repro bench --check`` (the determinism gate).

The gate compares a run's determinism block against a pinned baseline
file.  These tests fabricate results and baselines to pin every way the
comparison can fail: value drift, a baseline key the run no longer
produces, a stale ``bench_version`` baseline, and a batched-campaign
fingerprint that diverged from scalar.  The happy path and the repo's
own pinned file are covered too.
"""

import json
import os

import pytest

from repro.bench import BENCH_VERSION, check_determinism

REPO_PINNED = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "perf", "expected_determinism.json",
)


def fake_results(**overrides):
    determinism = {
        "engine_sequences_match": True,
        "engine_sequence_checksum": "abc123",
        "scan_rounds_per_pass": 19,
        "scan_events_fired": 6082,
        "scan_events_fired_chunked": 6082,
        "scan_timeline_identical": True,
        "scan_timeline_signature": "def456",
        "e1_table_sha256": "e1hash",
        "e9_table_sha256": "e9hash",
    }
    determinism.update(overrides.pop("determinism", {}))
    results = {"bench_version": BENCH_VERSION, "determinism": determinism}
    results.update(overrides)
    return results


def write_baseline(tmp_path, payload):
    path = tmp_path / "expected.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def matching_baseline():
    return {
        "bench_version": BENCH_VERSION,
        "engine_sequence_checksum": "abc123",
        "scan_rounds_per_pass": 19,
        "e1_table_sha256": "e1hash",
    }


def test_happy_path_reports_no_problems(tmp_path):
    path = write_baseline(tmp_path, matching_baseline())
    assert check_determinism(fake_results(), path) == []


def test_checksum_mismatch_is_reported(tmp_path):
    baseline = matching_baseline()
    baseline["engine_sequence_checksum"] = "different"
    path = write_baseline(tmp_path, baseline)
    problems = check_determinism(fake_results(), path)
    assert len(problems) == 1
    assert "engine_sequence_checksum" in problems[0]
    assert "different" in problems[0] and "abc123" in problems[0]


def test_missing_baseline_key_is_reported(tmp_path):
    """A key pinned in the baseline that the run no longer produces must
    fail loudly (got None), not silently pass."""
    baseline = matching_baseline()
    baseline["some_retired_invariant"] = 42
    path = write_baseline(tmp_path, baseline)
    problems = check_determinism(fake_results(), path)
    assert len(problems) == 1
    assert "some_retired_invariant" in problems[0] and "None" in problems[0]


def test_stale_bench_version_is_reported(tmp_path):
    baseline = matching_baseline()
    baseline["bench_version"] = BENCH_VERSION - 3
    path = write_baseline(tmp_path, baseline)
    problems = check_determinism(fake_results(), path)
    assert len(problems) == 1
    assert "stale bench_version" in problems[0]
    assert str(BENCH_VERSION - 3) in problems[0] and str(BENCH_VERSION) in problems[0]


def test_stale_version_and_drift_both_reported(tmp_path):
    baseline = matching_baseline()
    baseline["bench_version"] = 1
    baseline["e1_table_sha256"] = "old"
    path = write_baseline(tmp_path, baseline)
    problems = check_determinism(fake_results(), path)
    assert len(problems) == 2
    assert any("stale bench_version" in p for p in problems)
    assert any("e1_table_sha256" in p for p in problems)


def test_baseline_without_version_skips_staleness(tmp_path):
    """Pre-v7 baselines carry no version key; they still key-compare."""
    baseline = matching_baseline()
    del baseline["bench_version"]
    path = write_baseline(tmp_path, baseline)
    assert check_determinism(fake_results(), path) == []


def test_engine_divergence_fails_even_without_pinned_key(tmp_path):
    path = write_baseline(tmp_path, {"bench_version": BENCH_VERSION})
    results = fake_results(determinism={"engine_sequences_match": False})
    problems = check_determinism(results, path)
    assert any("different (time, seq) sequence" in p for p in problems)


def test_scan_timeline_divergence_fails(tmp_path):
    path = write_baseline(tmp_path, {"bench_version": BENCH_VERSION})
    results = fake_results(determinism={"scan_timeline_identical": False})
    problems = check_determinism(results, path)
    assert any("fused scan timeline" in p for p in problems)


def test_batch_fingerprint_divergence_fails(tmp_path):
    """When the batch differential section ran, a scalar-vs-batch
    fingerprint mismatch is a hard check failure."""
    path = write_baseline(tmp_path, matching_baseline())
    results = fake_results(batch_campaign={"fingerprint_identical": False})
    problems = check_determinism(results, path)
    assert problems == ["batched campaign fingerprint diverged from scalar run"]
    results_ok = fake_results(batch_campaign={"fingerprint_identical": True})
    assert check_determinism(results_ok, path) == []


def test_repo_pinned_baseline_carries_current_version():
    with open(REPO_PINNED, "r", encoding="utf-8") as handle:
        pinned = json.load(handle)
    assert pinned["bench_version"] == BENCH_VERSION, (
        "benchmarks/perf/expected_determinism.json must be regenerated for "
        f"bench_version {BENCH_VERSION}"
    )
