"""Configuration validation tests."""

import pytest

from repro.config import (
    ClusterConfig,
    KernelConfig,
    MachineConfig,
    ProberConfig,
    SatinConfig,
    a53_timing,
    a57_timing,
    generic_octa_config,
    juno_r1_config,
    smm_like_config,
)
from repro.errors import ConfigurationError


def test_juno_preset_shape():
    config = juno_r1_config(seed=5)
    assert config.core_count == 6
    assert config.seed == 5
    assert [c.name for c in config.clusters] == ["LITTLE", "big"]


def test_octa_preset_shape():
    config = generic_octa_config()
    assert config.core_count == 8
    assert len(config.clusters) == 1


def test_smm_preset_has_slow_switch():
    config = smm_like_config()
    lo, hi = config.clusters[0].timing.world_switch.support()
    assert lo >= 3.0e-5


def test_with_seed_copies():
    config = juno_r1_config(seed=1)
    other = config.with_seed(2)
    assert other.seed == 2 and config.seed == 1


def test_cluster_needs_positive_cores():
    with pytest.raises(ConfigurationError):
        ClusterConfig("bad", 0, a53_timing())


def test_machine_needs_clusters():
    with pytest.raises(ConfigurationError):
        MachineConfig(clusters=[])


def test_machine_needs_positive_counter_frequency():
    with pytest.raises(ConfigurationError):
        MachineConfig(counter_frequency_hz=0)


def test_kernel_hz_bounds():
    with pytest.raises(ConfigurationError):
        KernelConfig(hz=50)
    with pytest.raises(ConfigurationError):
        KernelConfig(hz=2000)
    assert KernelConfig(hz=100).hz == 100
    assert KernelConfig(hz=1000).hz == 1000


def test_kernel_size_positive():
    with pytest.raises(ConfigurationError):
        KernelConfig(image_size=0)


def test_kernel_must_fit_dram():
    with pytest.raises(ConfigurationError):
        MachineConfig(dram_size=4 * 1024 * 1024)  # smaller than the kernel


def test_satin_config_validation():
    with pytest.raises(ConfigurationError):
        SatinConfig(tgoal=0)
    with pytest.raises(ConfigurationError):
        SatinConfig(deviation_fraction=1.5)
    with pytest.raises(ConfigurationError):
        SatinConfig(chunk_size=0)
    with pytest.raises(ConfigurationError):
        SatinConfig(partition_mode="nonsense")


def test_timing_presets_match_paper_means():
    a53, a57 = a53_timing(), a57_timing()
    assert abs(a53.hash_byte.mean - 1.07e-8) < 1e-10
    assert abs(a57.hash_byte.mean - 6.71e-9) < 1e-11
    assert abs(a53.recover_trace_8b.mean - 5.80e-3) < 1e-5
    assert abs(a57.recover_trace_8b.mean - 4.96e-3) < 1e-5


def test_prober_defaults_match_paper():
    prober = ProberConfig()
    assert prober.tsleep == 2e-4
    assert prober.detect_threshold == 1.8e-3
