"""UnixBench-style suite runner for the overhead study (Figure 7).

The paper runs each benchmark once (*1-task*) and as six simultaneous
copies (*6-task*), with and without SATIN's self-activation enabled, and
reports the normalized performance degradation.  The runner here executes
one program for a fixed simulated duration and returns its score
(operations per second); orchestration across configurations lives in
:mod:`repro.experiments.figure7`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.errors import ReproError
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.kernel.threads import Task
from repro.sim.process import cpu
from repro.workloads.programs import BenchmarkProgram


@dataclass
class ProgramScore:
    """Score of one program run: total batches per second across copies."""

    program: str
    task_count: int
    duration: float
    total_ops: int
    secure_preemptions: int

    @property
    def score(self) -> float:
        return self.total_ops / self.duration


class BenchmarkRun:
    """Executes N copies of one program on a booted machine."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        program: BenchmarkProgram,
        task_count: int = 1,
        duration: float = 5.0,
    ) -> None:
        if task_count <= 0:
            raise ReproError("task_count must be positive")
        self.machine = machine
        self.rich_os = rich_os
        self.program = program
        self.task_count = task_count
        self.duration = duration
        self._ops: List[int] = [0] * task_count
        self.tasks: List[Task] = []
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "BenchmarkRun":
        self._deadline = self.machine.sim.now + self.duration
        for copy in range(self.task_count):
            self.tasks.append(
                self.rich_os.spawn(
                    f"{self.program.name}-{copy}", self._make_body(copy)
                )
            )
        return self

    def run_to_completion(self) -> ProgramScore:
        """Start (if needed) and simulate until the deadline."""
        if self._deadline is None:
            self.start()
        assert self._deadline is not None
        # A little slack so in-flight batches drain and tasks exit.
        self.machine.run(until=self._deadline + 0.1)
        return self.score()

    def score(self) -> ProgramScore:
        return ProgramScore(
            program=self.program.name,
            task_count=self.task_count,
            duration=self.duration,
            total_ops=sum(self._ops),
            secure_preemptions=sum(t.secure_preempt_count for t in self.tasks),
        )

    # ------------------------------------------------------------------
    def _make_body(self, copy: int):
        program = self.program
        machine = self.machine
        rich_os = self.rich_os

        def body(task: Task) -> Generator[Any, Any, None]:
            seen_preemptions = 0
            while machine.sim.now < self._deadline:
                # Pay the disruption for any secure-world preemption that
                # hit this task since the previous batch (cache/TLB refill,
                # pipeline restart).
                if task.secure_preempt_count > seen_preemptions:
                    hits = task.secure_preempt_count - seen_preemptions
                    seen_preemptions = task.secure_preempt_count
                    if program.disruption_cost > 0:
                        yield cpu(hits * program.disruption_cost)
                yield cpu(program.op_cpu)
                if program.syscall_nr is not None:
                    yield from rich_os.syscall(task, program.syscall_nr)
                self._ops[copy] += 1

        return body
