"""Synthetic UnixBench programs (Figure 7's workload).

Each program is a loop of fixed-cost operation batches; its UnixBench-style
score is operations completed per second.  Two calibrated parameters shape
how a program reacts to SATIN:

* ``syscall_heavy`` — the batch includes a system-call round trip, so the
  program exercises the (possibly hijacked) syscall table;
* ``disruption_cost`` — equivalent CPU-seconds of progress lost each time
  the secure world steals the program's core mid-run (cache/TLB state
  demolished by the scanner, pipe/ping-pong pipelines restarted, ...).
  The paper does not decompose its overhead mechanistically; these values
  are calibrated so the simulated Figure 7 reproduces its shape — two
  large outliers (``file copy 256B``, ``pipe-based context switching``
  at ~3.5–3.9%) over an otherwise sub-1% field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.syscalls import NR_GETTID, NR_READ, NR_WRITE


@dataclass(frozen=True)
class BenchmarkProgram:
    """One UnixBench-like micro benchmark."""

    name: str
    #: CPU seconds of one operation batch.
    op_cpu: float
    #: syscall issued once per batch (None = pure compute).
    syscall_nr: Optional[int]
    #: CPU-seconds of progress lost per secure-world preemption.
    disruption_cost: float

    @property
    def syscall_heavy(self) -> bool:
        return self.syscall_nr is not None


#: The UnixBench programs shown in Figure 7, in its display order.
UNIXBENCH_PROGRAMS: Tuple[BenchmarkProgram, ...] = (
    BenchmarkProgram("dhrystone2", op_cpu=5e-4, syscall_nr=None, disruption_cost=1.0e-3),
    BenchmarkProgram("whetstone", op_cpu=5e-4, syscall_nr=None, disruption_cost=5.0e-4),
    BenchmarkProgram("execl_throughput", op_cpu=6e-4, syscall_nr=NR_GETTID, disruption_cost=4.0e-3),
    BenchmarkProgram("file_copy_256B", op_cpu=4e-4, syscall_nr=NR_READ, disruption_cost=2.78e-1),
    BenchmarkProgram("file_copy_1024B", op_cpu=4e-4, syscall_nr=NR_READ, disruption_cost=8.0e-3),
    BenchmarkProgram("file_copy_4096B", op_cpu=4e-4, syscall_nr=NR_READ, disruption_cost=5.0e-3),
    BenchmarkProgram("pipe_throughput", op_cpu=3.5e-4, syscall_nr=NR_WRITE, disruption_cost=6.0e-3),
    BenchmarkProgram("pipe_context_switching", op_cpu=3.5e-4, syscall_nr=NR_WRITE, disruption_cost=3.06e-1),
    BenchmarkProgram("process_creation", op_cpu=7e-4, syscall_nr=NR_GETTID, disruption_cost=5.0e-3),
    BenchmarkProgram("shell_scripts_1", op_cpu=8e-4, syscall_nr=NR_GETTID, disruption_cost=3.0e-3),
    BenchmarkProgram("shell_scripts_8", op_cpu=9e-4, syscall_nr=NR_GETTID, disruption_cost=4.0e-3),
    BenchmarkProgram("syscall_overhead", op_cpu=3e-4, syscall_nr=NR_GETTID, disruption_cost=2.0e-3),
)


def program_by_name(name: str) -> BenchmarkProgram:
    for program in UNIXBENCH_PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(f"no benchmark program named {name!r}")
