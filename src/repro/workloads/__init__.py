"""Synthetic UnixBench workloads for the overhead study."""

from repro.workloads.programs import (
    UNIXBENCH_PROGRAMS,
    BenchmarkProgram,
    program_by_name,
)
from repro.workloads.suite import BenchmarkRun, ProgramScore

__all__ = [
    "UNIXBENCH_PROGRAMS",
    "BenchmarkProgram",
    "BenchmarkRun",
    "ProgramScore",
    "program_by_name",
]
