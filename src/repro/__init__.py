"""repro — a full reproduction of SATIN (DSN 2019) in simulation.

SATIN is a secure asynchronous introspection mechanism for multi-core ARM
TrustZone processors; the paper also introduces TZ-Evader, the evasion
attack SATIN defeats.  Since the original system runs inside an ARM Juno
board's secure monitor, this library reproduces the entire stack on a
discrete-event simulator calibrated to the paper's measurements:

* :mod:`repro.sim` — the discrete-event substrate;
* :mod:`repro.hw` — the simulated Juno r1 (big.LITTLE cores, TrustZone
  worlds, GIC, secure timers, EL3 monitor);
* :mod:`repro.kernel` — the rich OS (kernel image + System.map, syscall
  and vector tables, CFS/SCHED_FIFO scheduler, HZ ticks);
* :mod:`repro.secure` — secure-world software (djb2 hashing, trusted
  boot, scanning, baseline introspection mechanisms);
* :mod:`repro.core` — SATIN itself (the paper's contribution);
* :mod:`repro.attacks` — the probers, rootkit and TZ-Evader;
* :mod:`repro.workloads` — a UnixBench-like suite for the overhead study;
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro import build_stack, run_detection_experiment
    result = run_detection_experiment(passes=2)
    print(result)
"""

from repro.attacks import (
    KProberI,
    KProberII,
    PersistentRootkit,
    ProbeController,
    ProberAccelerationOracle,
    TZEvader,
    UserLevelProber,
)
from repro.attacks.predictor import PredictiveEvader
from repro.config import (
    MachineConfig,
    ProberConfig,
    SatinConfig,
    generic_octa_config,
    juno_r1_config,
    smm_like_config,
)
from repro.core import (
    RaceParameters,
    Satin,
    install_satin,
    max_safe_area_size,
    s_bound,
    unprotected_fraction,
)
from repro.errors import (
    AttackError,
    BackpressureError,
    CampaignError,
    ConfigurationError,
    FaultError,
    FaultInjectionError,
    FaultPlanError,
    HardwareError,
    IntrospectionError,
    JobTransitionError,
    KernelError,
    MemoryAccessError,
    ObservabilityError,
    ReproError,
    SchedulingError,
    SecureAccessError,
    ServiceError,
    SimulationError,
)
from repro.experiments import (
    build_stack,
    run_ablations,
    run_detection_experiment,
    run_escape_comparison,
    run_figure4,
    run_figure7,
    run_prober_comparison,
    run_race_analysis,
    run_recover_delay,
    run_single_core_ratio,
    run_switch_delay,
    run_table1,
    run_table2,
    run_user_prober_eval,
)
from repro.campaign import CampaignResult, CampaignSpec, run_campaign
from repro.hw import Machine, World, build_machine
from repro.kernel import RichOS, boot_rich_os
from repro.secure import SynchronousIntrospection, pkm_like, random_whole_kernel
from repro.attacks import IrqStormAttacker, KnoxBypassAttack

__version__ = "1.0.0"

__all__ = [
    "AttackError",
    "BackpressureError",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "ConfigurationError",
    "FaultError",
    "FaultInjectionError",
    "FaultPlanError",
    "HardwareError",
    "IntrospectionError",
    "JobTransitionError",
    "KernelError",
    "MemoryAccessError",
    "ObservabilityError",
    "SchedulingError",
    "SecureAccessError",
    "ServiceError",
    "SimulationError",
    "KProberI",
    "KProberII",
    "Machine",
    "MachineConfig",
    "PersistentRootkit",
    "PredictiveEvader",
    "ProbeController",
    "ProberAccelerationOracle",
    "ProberConfig",
    "RaceParameters",
    "ReproError",
    "RichOS",
    "IrqStormAttacker",
    "KnoxBypassAttack",
    "Satin",
    "SatinConfig",
    "SynchronousIntrospection",
    "TZEvader",
    "UserLevelProber",
    "World",
    "boot_rich_os",
    "build_machine",
    "build_stack",
    "install_satin",
    "generic_octa_config",
    "juno_r1_config",
    "smm_like_config",
    "max_safe_area_size",
    "pkm_like",
    "random_whole_kernel",
    "run_ablations",
    "run_detection_experiment",
    "run_escape_comparison",
    "run_figure4",
    "run_figure7",
    "run_prober_comparison",
    "run_race_analysis",
    "run_recover_delay",
    "run_single_core_ratio",
    "run_switch_delay",
    "run_table1",
    "run_table2",
    "run_user_prober_eval",
    "run_campaign",
    "s_bound",
    "unprotected_fraction",
    "__version__",
]
