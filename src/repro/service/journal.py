"""Durable job journal: the write-ahead log behind ``repro serve --recover``.

Every :class:`~repro.service.jobs.JobState` transition the service makes
is appended — as one fsync'd JSONL line — to ``<cache>/journal/
journal.jsonl`` *before* the transition is considered committed.  On
restart the service replays the journal (latest record per job wins,
submission order preserved) and reconstructs every job: terminal jobs are
served straight from the replayed state plus the content-addressed store,
in-flight jobs are reset to ``pending`` and re-dispatched through the
campaign ``resume`` path, which re-serves completed trials from the store
and therefore converges to byte-identical manifests.

Growth is bounded by *compaction*: periodically the full job table is
written to ``snapshot.json`` (tmp-file + rename + directory fsync, so a
crash never leaves a torn snapshot) and the journal is truncated.  Replay
is tolerant the same way the result store is:

* a torn/truncated journal line — the signature of a crash mid-append —
  is skipped with a warning and counted (``journal.truncated_records``);
* a corrupt snapshot falls back to replaying the full journal.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Journal directory name under the service cache root.
JOURNAL_DIRNAME = "journal"
JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

#: Journal appends between automatic compactions.
DEFAULT_COMPACT_EVERY = 256


def fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed file survives a host crash.

    Without this, ``os.replace`` makes the file visible but the directory
    entry itself may still live only in the page cache — a power cut can
    roll back a "committed" rename.  Best-effort: platforms that cannot
    open directories (Windows) simply skip it.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Any) -> None:
    """Write JSON via tmp-file + rename + directory fsync (crash-atomic)."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(path) or ".")


@dataclass
class ReplayResult:
    """What :meth:`JobJournal.replay` reconstructed.

    ``jobs`` is the latest JSON state per job, in original submission
    order (snapshot order first, then first-appearance order in the
    journal tail).
    """

    jobs: List[Dict[str, Any]] = field(default_factory=list)
    #: journal records applied (snapshot entries excluded).
    replayed_records: int = 0
    #: torn JSONL lines skipped (crash mid-append).
    truncated_records: int = 0
    #: True when snapshot.json existed but could not be parsed.
    snapshot_fallback: bool = False


class JobJournal:
    """Append-only JSONL write-ahead log + snapshot for job states.

    Thread-safe: appends and compactions serialize on an internal lock.
    The append handle is kept open across calls; every append is flushed
    and fsync'd before returning, so a record the caller saw committed
    survives SIGKILL.
    """

    def __init__(self, root: str, registry: Optional[Any] = None) -> None:
        self.directory = os.path.join(root, JOURNAL_DIRNAME)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, JOURNAL_NAME)
        self.snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        self.registry = registry
        self._lock = threading.Lock()
        self._handle = None
        #: appends since the last compaction (drives auto-compaction).
        self.records_since_compact = 0
        self.truncated_records = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None and amount:
            self.registry.counter(name).inc(amount)

    def append(self, job_json: Dict[str, Any]) -> None:
        """Durably record one job state (called on every transition)."""
        line = json.dumps({"v": 1, "job": job_json}, sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.records_since_compact += 1
        self._count("journal.records")

    def compact(self, jobs: List[Dict[str, Any]]) -> None:
        """Fold the journal into ``snapshot.json`` and truncate the log.

        ``jobs`` is the authoritative job table (submission order).  The
        snapshot lands atomically *before* the journal is truncated, so a
        crash between the two steps merely replays records the snapshot
        already holds — latest-wins replay makes that harmless.
        """
        with self._lock:
            atomic_write_json(self.snapshot_path, {"v": 1, "jobs": jobs})
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            fsync_dir(self.directory)
            self.records_since_compact = 0
            self.compactions += 1
        self._count("journal.compactions")

    def maybe_compact(
        self, jobs: List[Dict[str, Any]], every: int = DEFAULT_COMPACT_EVERY
    ) -> bool:
        """Compact when the journal has grown past ``every`` appends."""
        if every < 1 or self.records_since_compact < every:
            return False
        self.compact(jobs)
        return True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Replay side
    # ------------------------------------------------------------------

    def _load_snapshot(self, result: ReplayResult) -> List[Dict[str, Any]]:
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            jobs = snapshot["jobs"]
            if not isinstance(jobs, list):
                raise ValueError("snapshot jobs is not a list")
            return [job for job in jobs if isinstance(job, dict)]
        except FileNotFoundError:
            return []
        except (ValueError, KeyError, TypeError, OSError):
            result.snapshot_fallback = True
            self._count("journal.snapshot_fallbacks")
            warnings.warn(
                f"corrupt journal snapshot at {self.snapshot_path}; "
                "falling back to full journal replay",
                RuntimeWarning,
                stacklevel=3,
            )
            return []

    def replay(self) -> ReplayResult:
        """Reconstruct the latest state of every journaled job."""
        result = ReplayResult()
        order: List[str] = []
        latest: Dict[str, Dict[str, Any]] = {}

        def apply(job_json: Dict[str, Any]) -> None:
            job_id = job_json.get("job_id")
            if not isinstance(job_id, str):
                return
            if job_id not in latest:
                order.append(job_id)
            latest[job_id] = job_json

        for job_json in self._load_snapshot(result):
            apply(job_json)

        try:
            # errors="replace": a torn multi-byte sequence at the tail
            # must not abort the whole replay.
            handle = open(self.path, "r", encoding="utf-8", errors="replace")
        except FileNotFoundError:
            handle = None
        if handle is not None:
            with handle:
                for number, line in enumerate(handle, start=1):
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                        job_json = record["job"]
                        if not isinstance(job_json, dict):
                            raise ValueError("journal job is not an object")
                    except (ValueError, KeyError, TypeError):
                        result.truncated_records += 1
                        warnings.warn(
                            f"skipping torn journal record at "
                            f"{self.path}:{number} "
                            "(truncated write from an interrupted serve?)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    apply(job_json)
                    result.replayed_records += 1

        self.truncated_records += result.truncated_records
        self._count("journal.truncated_records", result.truncated_records)
        result.jobs = [latest[job_id] for job_id in order]
        return result
