"""File-system task queue: many worker processes drain one sweep.

Queue layout (any shared directory — local disk, NFS, ...)::

    <queue>/
        tasks/<key>.json      submitted work (task dict + trial-fn path)
        claimed/<key>.json    work a worker has taken (atomic rename claim)
        results/<key>.json    finished attempts (tmp-file + rename, atomic)
        control/stop          polite shutdown marker for workers

Claiming is an atomic ``rename(tasks/k.json, claimed/k.json)`` — on POSIX
exactly one worker wins, which is the whole concurrency story: no locks,
no daemons, and the queue directory is inspectable with ``ls``.  Results
are written to a temp file and renamed in, so a reader never sees a torn
JSON document.

Crash/stall recovery lives supervisor-side: a claim older than the trial
timeout (plus grace) is reclaimed — the claim file is deleted and the
supervisor's retry budget re-enqueues the task; a late result from the
stale worker is ignored because its attempt is no longer outstanding.

``python -m repro worker --queue DIR`` runs :func:`run_worker`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.executors import ExecMessage, Executor
from repro.campaign.pool import resolve_function

#: Seconds past the trial timeout before a claim counts as abandoned.
CLAIM_GRACE = 30.0

#: Worker poll cadence when the tasks directory is empty.
_IDLE_POLL = 0.05

_SUBDIRS = ("tasks", "claimed", "results", "control")


def ensure_queue(queue_dir: str) -> str:
    """Create the queue directory structure (idempotent)."""
    for name in _SUBDIRS:
        os.makedirs(os.path.join(queue_dir, name), exist_ok=True)
    return queue_dir


def _atomic_write(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def enqueue_task(queue_dir: str, task: Dict[str, Any], fn_path: str) -> str:
    """Publish one task; returns its file path."""
    path = os.path.join(queue_dir, "tasks", f"{task['key']}.json")
    _atomic_write(path, {"task": task, "fn_path": fn_path})
    return path


def claim_next(queue_dir: str) -> Optional[str]:
    """Atomically claim the oldest visible task; returns the claimed path."""
    tasks_dir = os.path.join(queue_dir, "tasks")
    try:
        names = sorted(
            name for name in os.listdir(tasks_dir) if name.endswith(".json")
        )
    except FileNotFoundError:
        return None
    for name in names:
        source = os.path.join(tasks_dir, name)
        target = os.path.join(queue_dir, "claimed", name)
        try:
            os.rename(source, target)
        except (FileNotFoundError, OSError):
            continue  # another worker won the rename race
        return target
    return None


def write_result(queue_dir: str, key: str, message: Dict[str, Any]) -> None:
    _atomic_write(os.path.join(queue_dir, "results", f"{key}.json"), message)


def stop_workers(queue_dir: str) -> None:
    """Ask every worker on this queue to exit after its current task."""
    _atomic_write(os.path.join(queue_dir, "control", "stop"), {"stop": True})


def clear_stop(queue_dir: str) -> None:
    try:
        os.remove(os.path.join(queue_dir, "control", "stop"))
    except FileNotFoundError:
        pass


def _stop_requested(queue_dir: str) -> bool:
    return os.path.exists(os.path.join(queue_dir, "control", "stop"))


def run_worker(
    queue_dir: str,
    max_idle: Optional[float] = None,
    max_tasks: Optional[int] = None,
    stop_event: Optional[threading.Event] = None,
    progress=None,
) -> int:
    """Drain tasks from ``queue_dir`` until told to stop; returns task count.

    The worker exits when the ``control/stop`` marker appears, when
    ``stop_event`` is set (in-process workers), after ``max_tasks`` tasks
    (``repro worker --once`` uses 1), or after ``max_idle`` seconds with
    nothing to claim.  Trial functions are resolved per task from the
    queued ``fn_path``, so one queue can serve campaigns and chaos sweeps
    at once; resolved functions are memoised per path.
    """
    ensure_queue(queue_dir)
    functions: Dict[str, Any] = {}
    completed = 0
    idle_since = time.monotonic()
    while True:
        if _stop_requested(queue_dir):
            break
        if stop_event is not None and stop_event.is_set():
            break
        claimed = claim_next(queue_dir)
        if claimed is None:
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                break
            time.sleep(_IDLE_POLL)
            continue
        idle_since = time.monotonic()
        with open(claimed, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        task, fn_path = entry["task"], entry["fn_path"]
        if fn_path not in functions:
            functions[fn_path] = resolve_function(fn_path)
        started = time.monotonic()
        try:
            payload = functions[fn_path](task)
            message = {
                "key": task["key"], "ok": True, "payload": payload,
                "elapsed": time.monotonic() - started, "worker": os.getpid(),
            }
        except BaseException:
            message = {
                "key": task["key"], "ok": False,
                "error": traceback.format_exc(limit=20),
                "elapsed": time.monotonic() - started, "worker": os.getpid(),
            }
        write_result(queue_dir, task["key"], message)
        try:
            os.remove(claimed)
        except FileNotFoundError:
            pass  # supervisor reclaimed a stale-looking claim; result still counts
        completed += 1
        if progress is not None:
            progress(task["key"], message)
        if max_tasks is not None and completed >= max_tasks:
            break
    return completed


class FileQueueExecutor(Executor):
    """Executor backend over the on-disk queue.

    ``local_workers`` > 0 spawns that many in-process drain threads so a
    ``--backend queue`` run is self-contained; with 0, external
    ``repro worker --queue DIR`` processes must drain the queue.
    """

    name = "queue"
    supports_timeout = True  # via stale-claim reclaim, not a hard kill

    def __init__(
        self,
        queue_dir: str,
        timeout: Optional[float] = None,
        local_workers: int = 0,
        claim_grace: float = CLAIM_GRACE,
    ) -> None:
        if not queue_dir:
            raise ServiceError("queue backend needs a queue directory")
        self.queue_dir = ensure_queue(queue_dir)
        self.timeout = timeout
        self.claim_grace = claim_grace
        self._fn_path = ""
        #: key -> claim-observation deadline bookkeeping.
        self._outstanding: Dict[str, float] = {}
        self._stop_event = threading.Event()
        self._local_workers = local_workers
        self._threads: List[threading.Thread] = []

    def start(self, fn_path: str) -> None:
        resolve_function(fn_path)  # fail fast in the supervisor
        self._fn_path = fn_path
        clear_stop(self.queue_dir)
        for index in range(self._local_workers):
            thread = threading.Thread(
                target=run_worker,
                args=(self.queue_dir,),
                kwargs={"stop_event": self._stop_event},
                name=f"repro-queue-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def has_capacity(self) -> bool:
        # The queue itself is unbounded; outstanding work lives on disk.
        return True

    def submit(self, task: Dict[str, Any]) -> None:
        enqueue_task(self.queue_dir, task, self._fn_path)
        self._outstanding[task["key"]] = time.monotonic()

    def _stale_deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.timeout + self.claim_grace

    def poll(self, timeout: float) -> List[ExecMessage]:
        messages: List[ExecMessage] = []
        results_dir = os.path.join(self.queue_dir, "results")
        deadline = time.monotonic() + timeout
        while True:
            for key in list(self._outstanding):
                path = os.path.join(results_dir, f"{key}.json")
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        raw = json.load(handle)
                except (FileNotFoundError, ValueError):
                    continue
                os.remove(path)
                del self._outstanding[key]
                messages.append(
                    ExecMessage(
                        key=key,
                        kind="ok" if raw.get("ok") else "error",
                        payload=raw.get("payload"),
                        error=raw.get("error"),
                        elapsed=raw.get("elapsed", 0.0),
                    )
                )
            stale_after = self._stale_deadline()
            if stale_after is not None:
                now = time.monotonic()
                for key, submitted in list(self._outstanding.items()):
                    if now - submitted <= stale_after:
                        continue
                    # Reclaim: drop the claim/task file so nothing re-runs it
                    # under the old attempt, and report a timeout failure.
                    for sub in ("claimed", "tasks"):
                        try:
                            os.remove(
                                os.path.join(self.queue_dir, sub, f"{key}.json")
                            )
                        except FileNotFoundError:
                            pass
                    del self._outstanding[key]
                    messages.append(
                        ExecMessage(
                            key=key, kind="timeout",
                            error=(
                                f"no result within {stale_after:g}s; "
                                "claim reclaimed (worker lost or stalled?)"
                            ),
                            elapsed=now - submitted,
                        )
                    )
            if messages or time.monotonic() >= deadline:
                return messages
            time.sleep(_IDLE_POLL)

    def cancel(self) -> None:
        # Withdraw work this run still owns; never stop foreign workers.
        for key in list(self._outstanding):
            try:
                os.remove(os.path.join(self.queue_dir, "tasks", f"{key}.json"))
            except FileNotFoundError:
                pass
        self._outstanding = {}

    def drain(self) -> None:
        self._stop_event.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
