"""File-system task queue: many worker processes drain one sweep.

Queue layout (any shared directory — local disk, NFS, ...)::

    <queue>/
        tasks/<key>.json        submitted work (task dict + trial-fn path)
        claimed/<key>.json      work a worker has taken (atomic rename claim)
        claimed/<key>.lease.json  the claim's lease: TTL + heartbeat renewals
        results/<key>.json      finished attempts (tmp-file + rename, atomic)
        control/stop            polite shutdown marker for workers

Claiming is an atomic ``rename(tasks/k.json, claimed/k.json)`` — on POSIX
exactly one worker wins, which is the whole concurrency story: no locks,
no daemons, and the queue directory is inspectable with ``ls``.  Results
are written to a temp file, renamed in, and the directory is fsync'd, so
a reader never sees a torn JSON document and a host crash cannot lose a
"committed" file.

Crash/stall recovery is lease-based: a claim carries a lease with a TTL
that the worker renews from a heartbeat thread while the trial runs.  The
supervisor reclaims a claim whose lease expired (worker SIGKILLed, host
lost) by moving it back into ``tasks/`` — *at-least-once* delivery.  That
is safe because trial results are idempotent: they are content-addressed
by config/seed digest in the result store, so a re-run writes the same
record, and a late result from the presumed-dead worker is detected and
dropped (counted as ``queue.duplicate_results``).  The hard timeout
(trial timeout + grace) remains the attempt-level backstop.

``python -m repro worker --queue DIR`` runs :func:`run_worker`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
import warnings
from typing import Any, Dict, List, Optional, Set

from repro.errors import ServiceError
from repro.service.executors import ExecMessage, Executor
from repro.service.journal import fsync_dir
from repro.campaign.pool import resolve_function

#: Seconds past the trial timeout before a claim counts as abandoned.
CLAIM_GRACE = 30.0

#: Default lease TTL: a worker heartbeats every TTL/3, so an expired
#: lease means the worker missed three consecutive renewals (dead or
#: badly stalled), not just one slow trial.
LEASE_TTL = 30.0

#: A ``control/stop`` sentinel older than this is considered stale debris
#: from a crashed ``stop_workers`` and is cleared by new workers, so an
#: abandoned shutdown cannot brick the queue forever.
STALE_STOP_SECONDS = 600.0

#: Worker poll cadence when the tasks directory is empty.
_IDLE_POLL = 0.05

_SUBDIRS = ("tasks", "claimed", "results", "control")


def ensure_queue(
    queue_dir: str, stale_stop_after: Optional[float] = None
) -> str:
    """Create the queue directory structure (idempotent).

    With ``stale_stop_after`` set, a ``control/stop`` sentinel older than
    that many seconds is removed — it outlived any plausible shutdown and
    would otherwise make every future worker exit on arrival.
    """
    for name in _SUBDIRS:
        os.makedirs(os.path.join(queue_dir, name), exist_ok=True)
    if stale_stop_after is not None:
        stop_path = os.path.join(queue_dir, "control", "stop")
        try:
            age = time.time() - os.path.getmtime(stop_path)
        except OSError:
            age = None
        if age is not None and age > stale_stop_after:
            warnings.warn(
                f"clearing stale stop sentinel ({age:.0f}s old) in "
                f"{queue_dir!r} — a previous stop_workers never cleaned up",
                RuntimeWarning,
                stacklevel=2,
            )
            clear_stop(queue_dir)
    return queue_dir


def _atomic_write(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # fsync the directory too: without it a host crash can roll back the
    # rename and lose a file the caller was told is committed.
    fsync_dir(os.path.dirname(path) or ".")


def enqueue_task(queue_dir: str, task: Dict[str, Any], fn_path: str) -> str:
    """Publish one task; returns its file path."""
    path = os.path.join(queue_dir, "tasks", f"{task['key']}.json")
    _atomic_write(path, {"task": task, "fn_path": fn_path})
    return path


def claim_next(queue_dir: str) -> Optional[str]:
    """Atomically claim the oldest visible task; returns the claimed path."""
    tasks_dir = os.path.join(queue_dir, "tasks")
    try:
        names = sorted(
            name for name in os.listdir(tasks_dir) if name.endswith(".json")
        )
    except FileNotFoundError:
        return None
    for name in names:
        source = os.path.join(tasks_dir, name)
        target = os.path.join(queue_dir, "claimed", name)
        try:
            os.rename(source, target)
        except (FileNotFoundError, OSError):
            continue  # another worker won the rename race
        return target
    return None


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------


def lease_path(queue_dir: str, key: str) -> str:
    return os.path.join(queue_dir, "claimed", f"{key}.lease.json")


def write_lease(
    queue_dir: str, key: str, ttl: float, worker: Optional[int] = None
) -> None:
    """(Re)write the lease for a claimed task; wall-clock expiry.

    Wall time (not monotonic) because the supervisor and the worker may
    be different processes on different machines sharing the queue.
    """
    now = time.time()
    _atomic_write(
        lease_path(queue_dir, key),
        {
            "worker": worker if worker is not None else os.getpid(),
            "ttl": ttl,
            "renewed_unix": now,
            "expires_unix": now + ttl,
        },
    )


def read_lease(queue_dir: str, key: str) -> Optional[Dict[str, Any]]:
    """The claim's lease, or None when absent/torn (treated as expired)."""
    try:
        with open(lease_path(queue_dir, key), "r", encoding="utf-8") as handle:
            lease = json.load(handle)
    except (FileNotFoundError, ValueError, OSError):
        return None
    return lease if isinstance(lease, dict) else None


def clear_lease(queue_dir: str, key: str) -> None:
    try:
        os.remove(lease_path(queue_dir, key))
    except FileNotFoundError:
        pass


def _heartbeat(
    queue_dir: str,
    key: str,
    claimed_path: str,
    ttl: float,
    stop: threading.Event,
) -> None:
    """Renew the lease every TTL/3 until the task finishes.

    Stops renewing the moment the claim file disappears — that means the
    supervisor reclaimed it (this worker looked dead) and the task now
    belongs to someone else; finishing quietly avoids fighting over it.
    """
    interval = max(0.01, ttl / 3.0)
    while not stop.wait(interval):
        if not os.path.exists(claimed_path):
            return
        try:
            write_lease(queue_dir, key, ttl)
        except OSError:
            return


def write_result(queue_dir: str, key: str, message: Dict[str, Any]) -> bool:
    """Publish one attempt's result; True when a result already existed.

    An existing result means another attempt of the same task finished
    first (this worker's lease was reclaimed mid-run) — the write still
    happens (results are idempotent, keyed by config/seed digest), but
    the caller can count the duplicate.
    """
    path = os.path.join(queue_dir, "results", f"{key}.json")
    existed = os.path.exists(path)
    _atomic_write(path, message)
    return existed


def stop_workers(queue_dir: str) -> None:
    """Ask every worker on this queue to exit after its current task."""
    _atomic_write(os.path.join(queue_dir, "control", "stop"), {"stop": True})


def clear_stop(queue_dir: str) -> None:
    try:
        os.remove(os.path.join(queue_dir, "control", "stop"))
    except FileNotFoundError:
        pass


def _stop_requested(queue_dir: str) -> bool:
    return os.path.exists(os.path.join(queue_dir, "control", "stop"))


def run_worker(
    queue_dir: str,
    max_idle: Optional[float] = None,
    max_tasks: Optional[int] = None,
    stop_event: Optional[threading.Event] = None,
    progress=None,
    lease_ttl: float = LEASE_TTL,
) -> int:
    """Drain tasks from ``queue_dir`` until told to stop; returns task count.

    The worker exits when the ``control/stop`` marker appears, when
    ``stop_event`` is set (in-process workers), after ``max_tasks`` tasks
    (``repro worker --once`` uses 1), or after ``max_idle`` seconds with
    nothing to claim.  Trial functions are resolved per task from the
    queued ``fn_path``, so one queue can serve campaigns and chaos sweeps
    at once; resolved functions are memoised per path.

    Each claim is covered by a lease (``lease_ttl`` seconds, 0 disables)
    renewed from a heartbeat thread while the trial runs, so a supervisor
    can tell a dead worker (lease expires) from a slow one (lease keeps
    renewing).  A stale ``control/stop`` sentinel from a crashed shutdown
    is cleared on startup.
    """
    ensure_queue(queue_dir, stale_stop_after=STALE_STOP_SECONDS)
    functions: Dict[str, Any] = {}
    completed = 0
    duplicates = 0
    idle_since = time.monotonic()
    while True:
        if _stop_requested(queue_dir):
            break
        if stop_event is not None and stop_event.is_set():
            break
        claimed = claim_next(queue_dir)
        if claimed is None:
            if max_idle is not None and time.monotonic() - idle_since > max_idle:
                break
            time.sleep(_IDLE_POLL)
            continue
        idle_since = time.monotonic()
        key = os.path.basename(claimed)[: -len(".json")]
        heartbeat: Optional[threading.Thread] = None
        heartbeat_stop = threading.Event()
        if lease_ttl > 0:
            write_lease(queue_dir, key, lease_ttl)
            heartbeat = threading.Thread(
                target=_heartbeat,
                args=(queue_dir, key, claimed, lease_ttl, heartbeat_stop),
                name=f"repro-lease-{key}",
                daemon=True,
            )
            heartbeat.start()
        with open(claimed, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        task, fn_path = entry["task"], entry["fn_path"]
        if fn_path not in functions:
            functions[fn_path] = resolve_function(fn_path)
        started = time.monotonic()
        try:
            payload = functions[fn_path](task)
            message = {
                "key": task["key"], "ok": True, "payload": payload,
                "elapsed": time.monotonic() - started, "worker": os.getpid(),
            }
        except BaseException:
            message = {
                "key": task["key"], "ok": False,
                "error": traceback.format_exc(limit=20),
                "elapsed": time.monotonic() - started, "worker": os.getpid(),
            }
        finally:
            heartbeat_stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=1.0)
        if write_result(queue_dir, task["key"], message):
            duplicates += 1
        clear_lease(queue_dir, key)
        try:
            os.remove(claimed)
        except FileNotFoundError:
            pass  # supervisor reclaimed a stale-looking claim; result still counts
        completed += 1
        if progress is not None:
            progress(task["key"], message)
        if max_tasks is not None and completed >= max_tasks:
            break
    return completed


class FileQueueExecutor(Executor):
    """Executor backend over the on-disk queue.

    ``local_workers`` > 0 spawns that many in-process drain threads so a
    ``--backend queue`` run is self-contained; with 0, external
    ``repro worker --queue DIR`` processes must drain the queue.

    Lease supervision: :meth:`poll` reclaims any outstanding claim whose
    lease has expired (worker died or stalled past the heartbeat window)
    by re-enqueueing the task — another worker re-runs it, the result
    store deduplicates by config/seed digest, and a late duplicate result
    file is dropped and counted.  The claim-age backstop still turns a
    never-finishing task into a ``timeout`` failure for the retry budget.
    """

    name = "queue"
    supports_timeout = True  # via stale-claim reclaim, not a hard kill

    def __init__(
        self,
        queue_dir: str,
        timeout: Optional[float] = None,
        local_workers: int = 0,
        claim_grace: float = CLAIM_GRACE,
        lease_ttl: float = LEASE_TTL,
        metrics: Optional[Any] = None,
    ) -> None:
        if not queue_dir:
            raise ServiceError("queue backend needs a queue directory")
        self.queue_dir = ensure_queue(queue_dir)
        self.timeout = timeout
        self.claim_grace = claim_grace
        self.lease_ttl = lease_ttl
        self.metrics = metrics
        self._fn_path = ""
        #: key -> claim-observation deadline bookkeeping.
        self._outstanding: Dict[str, float] = {}
        #: keys whose results this run already consumed (duplicate guard).
        self._seen: Set[str] = set()
        self._stop_event = threading.Event()
        self._local_workers = local_workers
        self._threads: List[threading.Thread] = []

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def start(self, fn_path: str) -> None:
        resolve_function(fn_path)  # fail fast in the supervisor
        self._fn_path = fn_path
        clear_stop(self.queue_dir)
        for index in range(self._local_workers):
            thread = threading.Thread(
                target=run_worker,
                args=(self.queue_dir,),
                kwargs={
                    "stop_event": self._stop_event,
                    "lease_ttl": self.lease_ttl,
                },
                name=f"repro-queue-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def has_capacity(self) -> bool:
        # The queue itself is unbounded; outstanding work lives on disk.
        return True

    def submit(self, task: Dict[str, Any]) -> None:
        enqueue_task(self.queue_dir, task, self._fn_path)
        self._outstanding[task["key"]] = time.monotonic()

    def _stale_deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.timeout + self.claim_grace

    def _remove_queue_files(self, key: str) -> None:
        """Withdraw every on-disk trace of a task (idempotent)."""
        for sub in ("claimed", "tasks"):
            try:
                os.remove(os.path.join(self.queue_dir, sub, f"{key}.json"))
            except FileNotFoundError:
                pass
        clear_lease(self.queue_dir, key)

    def _reclaim_expired_leases(self) -> None:
        """Re-enqueue claims whose workers stopped heartbeating."""
        if self.lease_ttl <= 0:
            return
        now = time.time()
        for key in list(self._outstanding):
            claim = os.path.join(self.queue_dir, "claimed", f"{key}.json")
            if not os.path.exists(claim):
                continue
            lease = read_lease(self.queue_dir, key)
            if lease is not None:
                expired = now > float(lease.get("expires_unix") or 0.0)
            else:
                # Worker died between the claim rename and its first
                # lease write: judge by the claim file's age instead.
                try:
                    expired = now - os.path.getmtime(claim) > self.lease_ttl
                except OSError:
                    continue  # finished in the race window
            if not expired:
                continue
            target = os.path.join(self.queue_dir, "tasks", f"{key}.json")
            try:
                os.replace(claim, target)
            except FileNotFoundError:
                continue  # the worker finished after all
            clear_lease(self.queue_dir, key)
            # Same attempt, new worker: restart the backstop clock but do
            # not charge the retry budget — at-least-once redelivery.
            self._outstanding[key] = time.monotonic()
            self._count("queue.leases_reclaimed")

    def _drop_duplicate_results(self) -> None:
        """Remove late results from reclaimed workers (count them)."""
        results_dir = os.path.join(self.queue_dir, "results")
        try:
            names = os.listdir(results_dir)
        except FileNotFoundError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            key = name[: -len(".json")]
            if key in self._seen and key not in self._outstanding:
                try:
                    os.remove(os.path.join(results_dir, name))
                except FileNotFoundError:
                    continue
                self._count("queue.duplicate_results")

    def poll(self, timeout: float) -> List[ExecMessage]:
        messages: List[ExecMessage] = []
        results_dir = os.path.join(self.queue_dir, "results")
        deadline = time.monotonic() + timeout
        while True:
            for key in list(self._outstanding):
                path = os.path.join(results_dir, f"{key}.json")
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        raw = json.load(handle)
                except (FileNotFoundError, ValueError):
                    continue
                os.remove(path)
                del self._outstanding[key]
                self._seen.add(key)
                # A reclaimed-then-finished task may have been re-enqueued;
                # withdraw any leftover task/claim so nothing re-runs it.
                self._remove_queue_files(key)
                messages.append(
                    ExecMessage(
                        key=key,
                        kind="ok" if raw.get("ok") else "error",
                        payload=raw.get("payload"),
                        error=raw.get("error"),
                        elapsed=raw.get("elapsed", 0.0),
                    )
                )
            self._reclaim_expired_leases()
            self._drop_duplicate_results()
            stale_after = self._stale_deadline()
            if stale_after is not None:
                now = time.monotonic()
                for key, submitted in list(self._outstanding.items()):
                    if now - submitted <= stale_after:
                        continue
                    # Reclaim: drop the claim/task file so nothing re-runs it
                    # under the old attempt, and report a timeout failure.
                    self._remove_queue_files(key)
                    del self._outstanding[key]
                    messages.append(
                        ExecMessage(
                            key=key, kind="timeout",
                            error=(
                                f"no result within {stale_after:g}s; "
                                "claim reclaimed (worker lost or stalled?)"
                            ),
                            elapsed=now - submitted,
                        )
                    )
            if messages or time.monotonic() >= deadline:
                return messages
            time.sleep(_IDLE_POLL)

    def cancel(self) -> None:
        # Withdraw work this run still owns; never stop foreign workers.
        for key in list(self._outstanding):
            try:
                os.remove(os.path.join(self.queue_dir, "tasks", f"{key}.json"))
            except FileNotFoundError:
                pass
        self._outstanding = {}

    def drain(self) -> None:
        self._stop_event.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
