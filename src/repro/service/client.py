"""Thin stdlib client for the ``repro serve`` job API.

``repro submit/status/fetch/cancel`` are wrappers over these helpers;
everything speaks JSON over ``urllib.request`` so the client has the
same zero-dependency footprint as the server.

The client is built to ride out a service that is overloaded (429),
draining (503), or mid-restart (connection refused): :func:`request`
retries those with capped exponential backoff and *deterministic* jitter
(hash-derived, so behaviour is reproducible run-to-run), honouring any
``Retry-After`` the server sends.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

#: Default service URL the CLI talks to.
DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: Poll cadence of ``submit --wait`` / ``status --wait``.
POLL_SECONDS = 0.25

#: HTTP statuses worth retrying: overload backpressure and drain.
RETRY_STATUSES = (429, 503)

#: Default retry budget and backoff shape of :func:`request`.
DEFAULT_RETRIES = 4
BACKOFF_BASE = 0.25
BACKOFF_CAP = 8.0


def _jitter_fraction(token: str) -> float:
    """Deterministic jitter in [0, 1): same token, same fraction.

    Hash-derived instead of ``random`` so client behaviour (and every
    test that exercises it) is reproducible, while distinct tokens still
    de-synchronize a thundering herd of pollers.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def _backoff_delay(
    token: str,
    attempt: int,
    retry_after: Optional[float] = None,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> float:
    """Capped exponential backoff with deterministic jitter.

    A server-provided ``Retry-After`` wins outright — the server knows
    its queue depth better than any client-side guess.
    """
    if retry_after is not None and retry_after >= 0:
        return min(cap, retry_after)
    delay = min(cap, base * (2.0 ** attempt))
    return delay * (0.5 + _jitter_fraction(f"{token}:{attempt}"))


def _retry_after_seconds(headers: Any) -> Optional[float]:
    """Parse a ``Retry-After`` header (delta-seconds form only)."""
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except (TypeError, ValueError):
        return None


def request(
    url: str,
    path: str,
    method: str = "GET",
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
    retries: int = DEFAULT_RETRIES,
    backoff_base: float = BACKOFF_BASE,
    backoff_cap: float = BACKOFF_CAP,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[int, Any]:
    """One API call; returns ``(http_status, decoded_body)``.

    Error responses (4xx/5xx) are returned, not raised — the server puts
    the explanation in the body's ``error`` key.  Connection errors, 429
    (overload) and 503 (draining) are retried up to ``retries`` times
    with capped exponential backoff and deterministic jitter, honouring
    ``Retry-After``; once the budget is spent, the last 429/503 body is
    returned and a transport failure raises :class:`ServiceError`.
    Submissions are safe to retry: specs are content-addressed, so a
    replay dedupes against the in-flight job or hits the result cache.
    """
    full = url.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    last_error: Optional[str] = None
    for attempt in range(max(0, retries) + 1):
        req = urllib.request.Request(
            full, data=data, headers=headers, method=method
        )
        retry_after: Optional[float] = None
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return response.status, _decode(response)
        except urllib.error.HTTPError as error:
            if error.code not in RETRY_STATUSES or attempt >= retries:
                return error.code, _decode(error)
            retry_after = _retry_after_seconds(error.headers)
            _decode(error)  # fully drain the body before reconnecting
        except urllib.error.URLError as error:
            last_error = str(getattr(error, "reason", error))
            if attempt >= retries:
                break
        sleep(
            _backoff_delay(
                path, attempt, retry_after=retry_after,
                base=backoff_base, cap=backoff_cap,
            )
        )
    raise ServiceError(
        f"cannot reach repro service at {url!r}: {last_error}"
    ) from None


def _decode(response: Any) -> Any:
    raw = response.read().decode("utf-8")
    content_type = (response.headers.get("Content-Type") or "").lower()
    if "json" in content_type:
        try:
            return json.loads(raw)
        except ValueError:
            pass
    return raw


def _expect(status: int, body: Any, what: str) -> Dict[str, Any]:
    if status >= 400:
        message = body.get("error") if isinstance(body, dict) else str(body)
        raise ServiceError(f"{what} failed (HTTP {status}): {message}")
    if not isinstance(body, dict):
        raise ServiceError(f"{what} returned a non-JSON body")
    return body


def submit_job(url: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    status, body = request(url, "/jobs", method="POST", payload=spec)
    return _expect(status, body, "job submission")


def job_status(url: str, job_id: str) -> Dict[str, Any]:
    status, body = request(url, f"/jobs/{job_id}")
    return _expect(status, body, f"status of {job_id}")


def cancel_job(url: str, job_id: str) -> Dict[str, Any]:
    status, body = request(url, f"/jobs/{job_id}/cancel", method="POST")
    return _expect(status, body, f"cancel of {job_id}")


def fetch_manifest(url: str, job_id: str) -> Dict[str, Any]:
    status, body = request(url, f"/jobs/{job_id}/manifest")
    return _expect(status, body, f"manifest of {job_id}")


def fetch_result(url: str, job_id: str) -> str:
    status, body = request(url, f"/jobs/{job_id}/result")
    if status >= 400:
        message = body.get("error") if isinstance(body, dict) else str(body)
        raise ServiceError(f"result of {job_id} failed (HTTP {status}): {message}")
    return body if isinstance(body, str) else json.dumps(body)


def fetch_matrix(url: str, job_id: str) -> Dict[str, Any]:
    status, body = request(url, f"/jobs/{job_id}/matrix")
    return _expect(status, body, f"survival matrix of {job_id}")


def fetch_events(url: str, job_id: str, cursor: int = 0) -> Dict[str, Any]:
    """One page of the job's event log, starting after ``cursor``.

    The returned ``cursor`` is the value to pass on the next poll; an
    empty ``events`` list means nothing happened since.
    """
    status, body = request(url, f"/jobs/{job_id}/events?cursor={int(cursor)}")
    return _expect(status, body, f"events of {job_id}")


def fetch_metrics_text(url: str) -> str:
    """The service's ``/metrics`` in Prometheus text format."""
    full = url.rstrip("/") + "/metrics"
    req = urllib.request.Request(full, headers={"Accept": "text/plain"})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as response:
            return response.read().decode("utf-8")
    except urllib.error.URLError as error:
        raise ServiceError(
            f"cannot reach repro service at {url!r}: {error}"
        ) from None


def wait_for_job(
    url: str,
    job_id: str,
    timeout: Optional[float] = None,
    poll: float = POLL_SECONDS,
    on_progress=None,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Poll until the job reaches a terminal state; returns the final state.

    ``on_progress(state_json)`` fires on every poll so callers can render
    live trial counters.  Polling is jittered (deterministically, per
    job id and attempt) so many waiting clients do not beat on the
    service in lockstep, and the ``timeout`` is a real deadline: the
    final sleep is clamped to whatever time remains, and the deadline is
    re-checked against the clock rather than counting fixed sleeps.
    Raises :class:`ServiceError` once the deadline passes.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    attempt = 0
    while True:
        state = job_status(url, job_id)
        if on_progress is not None:
            on_progress(state)
        if state.get("state") in ("done", "cancelled", "failed"):
            return state
        if deadline is not None and time.monotonic() >= deadline:
            raise ServiceError(
                f"job {job_id} still {state.get('state')!r} after {timeout:g}s"
            )
        delay = poll * (0.75 + 0.5 * _jitter_fraction(f"{job_id}:{attempt}"))
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        sleep(delay)
        attempt += 1


def format_state_line(state: Dict[str, Any]) -> str:
    """One human-readable status line for ``repro status``/``submit --wait``."""
    progress = state.get("progress") or {}
    bits = [f"{state.get('job_id')}: {state.get('state')}"]
    total = progress.get("total")
    if total:
        finished = (progress.get("cached") or 0) + (progress.get("done") or 0)
        bits.append(f"{finished}/{total} trials")
        if progress.get("cached"):
            bits.append(f"{progress['cached']} cached")
        if progress.get("failed"):
            bits.append(f"{progress['failed']} failed")
    result = state.get("result") or {}
    if result.get("pure_cache_hit"):
        bits.append("pure cache hit")
    if state.get("error"):
        first = str(state["error"]).strip().splitlines()
        if first:
            bits.append(f"error: {first[-1]}")
    return "  ".join(bits)
