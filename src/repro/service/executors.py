"""Pluggable executor backends behind one submit/poll/cancel/drain interface.

The campaign engine used to be hard-wired to its local fork pool; this
module puts an :class:`Executor` interface between the supervision logic
(retry budgets, quarantine, metrics, cancellation) and the execution
substrate.  Backends:

``inline``
    Serial in-process execution — the reference path every other backend
    must match bit-for-bit.  No timeout enforcement.
``thread``
    A pool of daemon threads in the supervisor process.  Cheap start-up,
    shares the GIL (good for I/O-ish trials and tests); no timeout kill.
``fork``
    The crash-isolated fork pool (one OS process per worker, per-trial
    timeout kill, respawn with deterministic backoff) — the PR 1
    machinery, refactored behind the interface.
``queue``
    A file-system queue (:mod:`repro.service.queue`) drained by
    ``python -m repro worker --queue DIR`` processes, so many processes
    or machines can serve one sweep.

All backends speak :class:`ExecMessage` and are driven by
:func:`execute_tasks`, which owns retries/quarantine and is the single
place cooperative cancellation (``cancel_event`` or ``KeyboardInterrupt``)
is handled.  Determinism contract: a backend affects only *where* a trial
runs, never its payload, so merged campaign results are backend-invariant.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.pool import (
    DEFAULT_RESPAWN_BACKOFF_BASE,
    DEFAULT_RESPAWN_BACKOFF_CAP,
    TrialOutcome,
    _pool_context,
    _respawn_backoff,
    _WorkerSlot,
    resolve_function,
)
from repro.errors import CampaignError, ServiceError

#: Supported backend names (``auto`` resolves by jobs count).
BACKENDS = ("inline", "thread", "fork", "queue")

#: Supervision loop poll granularity, seconds.
_POLL_INTERVAL = 0.05


@dataclass
class ExecMessage:
    """One finished attempt reported by a backend.

    ``kind`` is ``"ok"`` or a failure class (``"error"``, ``"timeout"``,
    ``"crashed"``); the supervision loop turns failure kinds into retries
    or quarantine according to the attempt budget.
    """

    key: str
    kind: str
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


class Executor:
    """Execution substrate interface: submit/poll/cancel/drain.

    Lifecycle: ``start(fn_path)`` once, then any number of ``submit``
    (guarded by ``has_capacity``) interleaved with ``poll``; ``cancel``
    abandons outstanding work; ``drain`` releases resources.  Executors
    are single-supervisor objects — they are not thread-safe and are not
    reused across runs.
    """

    name = "abstract"
    #: whether the backend can kill a trial that exceeds the timeout.
    supports_timeout = False

    def start(self, fn_path: str) -> None:
        raise NotImplementedError

    def has_capacity(self) -> bool:
        raise NotImplementedError

    def submit(self, task: Dict[str, Any]) -> None:
        raise NotImplementedError

    def poll(self, timeout: float) -> List[ExecMessage]:
        """Collect finished attempts, blocking at most ``timeout``."""
        raise NotImplementedError

    def cancel(self) -> None:
        """Abandon outstanding work (idempotent)."""

    def drain(self) -> None:
        """Release workers/resources (idempotent; called after cancel too)."""


# ---------------------------------------------------------------------------
# inline
# ---------------------------------------------------------------------------


class InlineExecutor(Executor):
    """Serial in-process execution: the deterministic reference backend."""

    name = "inline"

    def __init__(self) -> None:
        self._fn: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
        self._done: List[ExecMessage] = []

    def start(self, fn_path: str) -> None:
        self._fn = resolve_function(fn_path)

    def has_capacity(self) -> bool:
        return not self._done

    def submit(self, task: Dict[str, Any]) -> None:
        started = time.monotonic()
        try:
            payload = self._fn(task)
        except KeyboardInterrupt:
            raise  # cooperative cancel, handled by execute_tasks
        except Exception:
            self._done.append(
                ExecMessage(
                    key=task["key"],
                    kind="error",
                    error=traceback.format_exc(limit=20),
                    elapsed=time.monotonic() - started,
                )
            )
        else:
            self._done.append(
                ExecMessage(
                    key=task["key"],
                    kind="ok",
                    payload=payload,
                    elapsed=time.monotonic() - started,
                )
            )

    def poll(self, timeout: float) -> List[ExecMessage]:
        messages, self._done = self._done, []
        return messages


# ---------------------------------------------------------------------------
# thread
# ---------------------------------------------------------------------------


class ThreadExecutor(Executor):
    """In-process thread pool.

    Threads cannot be killed, so there is no timeout enforcement — a hung
    trial hangs its thread (the fork backend exists for hostile trials).
    """

    name = "thread"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ServiceError(f"thread backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._tasks: "queue_module.Queue" = queue_module.Queue()
        self._results: "queue_module.Queue" = queue_module.Queue()
        self._threads: List[threading.Thread] = []
        self._outstanding = 0
        self._stopping = threading.Event()

    def _worker(self, fn: Callable[[Dict[str, Any]], Dict[str, Any]]) -> None:
        while True:
            task = self._tasks.get()
            if task is None or self._stopping.is_set():
                return
            started = time.monotonic()
            try:
                payload = fn(task)
                message = ExecMessage(
                    key=task["key"], kind="ok", payload=payload,
                    elapsed=time.monotonic() - started,
                )
            except BaseException:
                message = ExecMessage(
                    key=task["key"], kind="error",
                    error=traceback.format_exc(limit=20),
                    elapsed=time.monotonic() - started,
                )
            self._results.put(message)

    def start(self, fn_path: str) -> None:
        fn = resolve_function(fn_path)
        for index in range(self.jobs):
            thread = threading.Thread(
                target=self._worker, args=(fn,),
                name=f"repro-exec-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def has_capacity(self) -> bool:
        return self._outstanding < self.jobs

    def submit(self, task: Dict[str, Any]) -> None:
        self._outstanding += 1
        self._tasks.put(task)

    def poll(self, timeout: float) -> List[ExecMessage]:
        messages: List[ExecMessage] = []
        try:
            messages.append(self._results.get(timeout=timeout))
            while True:
                messages.append(self._results.get_nowait())
        except queue_module.Empty:
            pass
        self._outstanding -= len(messages)
        return messages

    def cancel(self) -> None:
        self._stopping.set()
        try:
            while True:
                self._tasks.get_nowait()  # unblock nothing new
        except queue_module.Empty:
            pass

    def drain(self) -> None:
        for _ in self._threads:
            self._tasks.put(None)
        deadline = time.monotonic() + (0.5 if self._stopping.is_set() else 5.0)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._threads = []


# ---------------------------------------------------------------------------
# fork
# ---------------------------------------------------------------------------


class ForkExecutor(Executor):
    """The crash-isolated fork pool from :mod:`repro.campaign.pool`.

    Reuses the pool's worker slots (private task queue per process, shared
    result queue) and its deterministic respawn backoff; what used to be
    the middle of ``run_tasks`` is now ``poll`` — collect results, then
    police timeouts and crashed workers into failure messages.
    """

    name = "fork"
    supports_timeout = True

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        metrics: Optional[Any] = None,
        respawn_backoff_base: float = DEFAULT_RESPAWN_BACKOFF_BASE,
        respawn_backoff_cap: float = DEFAULT_RESPAWN_BACKOFF_CAP,
    ) -> None:
        if jobs < 1:
            raise ServiceError(f"fork backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = timeout
        self.metrics = metrics
        self.respawn_backoff_base = respawn_backoff_base
        self.respawn_backoff_cap = respawn_backoff_cap
        self._context = None
        self._result_queue = None
        self._slots: List[_WorkerSlot] = []
        self._fn_path = ""

    def start(self, fn_path: str) -> None:
        resolve_function(fn_path)  # fail fast in the supervisor
        self._fn_path = fn_path
        self._context = _pool_context()
        self._result_queue = self._context.Queue()

    def _ensure_slot(self) -> Optional[_WorkerSlot]:
        """An idle, non-cooling slot — lazily growing the pool to ``jobs``."""
        now = time.monotonic()
        for slot in self._slots:
            if not slot.busy and now >= slot.cooldown_until:
                return slot
        if len(self._slots) < self.jobs:
            slot = _WorkerSlot(self._context, self._fn_path, self._result_queue)
            self._slots.append(slot)
            return slot
        return None

    def has_capacity(self) -> bool:
        return self._ensure_slot() is not None

    def submit(self, task: Dict[str, Any]) -> None:
        slot = self._ensure_slot()
        if slot is None:  # pragma: no cover - guarded by has_capacity
            raise ServiceError("fork executor has no idle worker slot")
        slot.assign(task)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _cool_down(self, slot: _WorkerSlot, key: str) -> None:
        slot.crash_count += 1
        delay = _respawn_backoff(
            key, slot.crash_count, self.respawn_backoff_base, self.respawn_backoff_cap
        )
        slot.cooldown_until = time.monotonic() + delay
        self._count("campaign.respawn_backoffs")
        if self.metrics is not None:
            self.metrics.histogram("campaign.respawn_backoff_seconds").observe(delay)

    def poll(self, timeout: float) -> List[ExecMessage]:
        messages: List[ExecMessage] = []

        def absorb(raw: Dict[str, Any]) -> None:
            key = raw["key"]
            slot = next(
                (s for s in self._slots if s.current and s.current["key"] == key),
                None,
            )
            if slot is None:
                return  # stale result from a worker we already gave up on
            slot.current = None
            slot.crash_count = 0  # any message proves the process is healthy
            messages.append(
                ExecMessage(
                    key=key,
                    kind="ok" if raw["ok"] else "error",
                    payload=raw.get("payload"),
                    error=raw.get("error"),
                    elapsed=raw.get("elapsed", 0.0),
                )
            )

        try:
            absorb(self._result_queue.get(timeout=timeout))
            while True:  # drain without blocking
                absorb(self._result_queue.get_nowait())
        except queue_module.Empty:
            pass

        # Police the workers: timeouts first, then crashes.
        now = time.monotonic()
        for slot in self._slots:
            if not slot.busy:
                continue
            task = slot.current
            key = task["key"]
            if self.timeout is not None and now - slot.started_at > self.timeout:
                elapsed = now - slot.started_at
                self._count("campaign.worker_respawns")
                slot.respawn()
                self._cool_down(slot, key)
                messages.append(
                    ExecMessage(
                        key=key, kind="timeout",
                        error=f"trial exceeded {self.timeout:g}s; worker killed",
                        elapsed=elapsed,
                    )
                )
            elif not slot.process.is_alive():
                exitcode = slot.process.exitcode
                elapsed = now - slot.started_at
                self._count("campaign.worker_respawns")
                slot.respawn()
                self._cool_down(slot, key)
                messages.append(
                    ExecMessage(
                        key=key, kind="crashed",
                        error=f"worker died mid-trial (exitcode {exitcode})",
                        elapsed=elapsed,
                    )
                )
        return messages

    def cancel(self) -> None:
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()

    def drain(self) -> None:
        for slot in self._slots:
            slot.shutdown()
        self._slots = []
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None


# ---------------------------------------------------------------------------
# Supervision loop
# ---------------------------------------------------------------------------


def execute_tasks(
    tasks: List[Dict[str, Any]],
    fn_path: str,
    executor: Executor,
    max_attempts: int = 2,
    on_final: Optional[Callable[[Dict[str, Any], TrialOutcome], None]] = None,
    on_retry: Optional[Callable[[Dict[str, Any], str], None]] = None,
    metrics: Optional[Any] = None,
    cancel_event: Optional[threading.Event] = None,
) -> Tuple[Dict[str, TrialOutcome], bool]:
    """Drive every task through ``executor``; returns ``(outcomes, cancelled)``.

    Backend-agnostic version of the pool's supervision loop: dispatch to
    capacity, collect :class:`ExecMessage` results, re-dispatch failures
    until the attempt budget is spent, then finalize as quarantined.
    Setting ``cancel_event`` (or hitting the process with SIGINT) stops
    dispatch, cancels the executor, and returns the outcomes completed so
    far with ``cancelled=True`` — callers still merge and persist those.
    """
    keys = [t["key"] for t in tasks]
    if len(set(keys)) != len(keys):
        raise CampaignError("duplicate task keys in one executor run")
    if max_attempts < 1:
        raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
    if not tasks:
        return {}, False

    pending: List[Dict[str, Any]] = list(tasks)
    attempts: Dict[str, int] = {key: 0 for key in keys}
    failures: Dict[str, List[str]] = {key: [] for key in keys}
    elapsed_total: Dict[str, float] = {key: 0.0 for key in keys}
    by_key: Dict[str, Dict[str, Any]] = {t["key"]: t for t in tasks}
    outcomes: Dict[str, TrialOutcome] = {}
    cancelled = False

    def count(name: str) -> None:
        if metrics is not None:
            metrics.counter(name).inc()

    def finalize(task: Dict[str, Any], outcome: TrialOutcome) -> None:
        outcomes[task["key"]] = outcome
        if on_final is not None:
            on_final(task, outcome)

    def handle(message: ExecMessage) -> None:
        key = message.key
        task = by_key.get(key)
        if task is None or key in outcomes:
            return  # stale or duplicate report
        elapsed_total[key] += message.elapsed
        if message.ok:
            finalize(
                task,
                TrialOutcome(
                    key=key, status="ok", payload=message.payload,
                    elapsed=elapsed_total[key], attempts=attempts[key],
                    failures=failures[key],
                ),
            )
            return
        failures[key].append(message.kind)
        if attempts[key] < max_attempts:
            if on_retry is not None:
                on_retry(task, message.kind)
            pending.append(task)
        else:
            finalize(
                task,
                TrialOutcome(
                    key=key, status=message.kind,
                    error=message.error or "unknown worker error",
                    elapsed=elapsed_total[key], attempts=attempts[key],
                    failures=failures[key][:-1],
                ),
            )

    executor.start(fn_path)
    try:
        while len(outcomes) < len(tasks):
            if cancel_event is not None and cancel_event.is_set():
                cancelled = True
                break
            while pending and executor.has_capacity():
                task = pending.pop(0)
                attempts[task["key"]] += 1
                count("campaign.pool_dispatches")
                executor.submit(task)
            for message in executor.poll(_POLL_INTERVAL):
                handle(message)
    except KeyboardInterrupt:
        cancelled = True
    finally:
        if cancelled:
            executor.cancel()
        executor.drain()
    return outcomes, cancelled


def make_executor(
    backend: str = "auto",
    jobs: int = 1,
    timeout: Optional[float] = None,
    metrics: Optional[Any] = None,
    queue_dir: Optional[str] = None,
    queue_workers: int = 0,
    respawn_backoff_base: float = DEFAULT_RESPAWN_BACKOFF_BASE,
    respawn_backoff_cap: float = DEFAULT_RESPAWN_BACKOFF_CAP,
) -> Executor:
    """Build the executor for a backend name.

    ``auto`` preserves the historical CLI semantics: ``jobs == 0`` means
    serial in-process, anything else the fork pool.  The queue backend
    needs ``queue_dir``; ``queue_workers`` > 0 additionally spawns that
    many local drain threads so a queue run completes without external
    ``repro worker`` processes.
    """
    if backend == "auto":
        backend = "inline" if jobs == 0 else "fork"
    if backend == "inline":
        return InlineExecutor()
    if backend == "thread":
        return ThreadExecutor(jobs=max(1, jobs))
    if backend == "fork":
        return ForkExecutor(
            jobs=max(1, jobs), timeout=timeout, metrics=metrics,
            respawn_backoff_base=respawn_backoff_base,
            respawn_backoff_cap=respawn_backoff_cap,
        )
    if backend == "queue":
        from repro.service.queue import FileQueueExecutor

        if not queue_dir:
            raise ServiceError("queue backend needs a queue directory")
        return FileQueueExecutor(
            queue_dir, timeout=timeout, local_workers=queue_workers,
            metrics=metrics,
        )
    raise ServiceError(
        f"unknown executor backend {backend!r} (choose from {', '.join(BACKENDS)})"
    )
