"""Campaign-as-a-service: executor backends + job API.

The service layer turns campaigns from a function call into a substrate:

* :mod:`repro.service.executors` — the :class:`Executor` interface
  (``submit``/``poll``/``cancel``/``drain``) with in-process thread,
  crash-isolated fork-pool, and file-queue worker backends, plus the
  backend-agnostic supervision loop :func:`execute_tasks`;
* :mod:`repro.service.queue` — the on-disk queue protocol behind
  ``python -m repro worker --queue DIR``;
* :mod:`repro.service.jobs` — :class:`JobSpec`/:class:`JobState`
  shared by the CLI and the HTTP service;
* :mod:`repro.service.server` — ``python -m repro serve``, a stdlib
  HTTP/JSON job service memoised through the content-addressed store;
* :mod:`repro.service.client` — the ``repro submit/status/fetch/cancel``
  client commands.

Every backend runs the same trial functions and flows results through the
same :class:`~repro.campaign.store.ResultStore`, so serial, thread, fork
and multi-process queue runs of one campaign produce byte-identical
merged manifests (see ``manifest_fingerprint``).
"""

from repro.service.executors import (
    BACKENDS,
    ExecMessage,
    Executor,
    ForkExecutor,
    InlineExecutor,
    ThreadExecutor,
    execute_tasks,
    make_executor,
)
from repro.service.jobs import JobSpec, JobState, JOB_STATES
from repro.service.journal import JobJournal, ReplayResult
from repro.service.queue import FileQueueExecutor, run_worker

__all__ = [
    "BACKENDS",
    "ExecMessage",
    "Executor",
    "FileQueueExecutor",
    "ForkExecutor",
    "InlineExecutor",
    "JOB_STATES",
    "JobJournal",
    "JobSpec",
    "JobState",
    "ReplayResult",
    "ThreadExecutor",
    "execute_tasks",
    "make_executor",
    "run_worker",
]
