"""Job specifications and lifecycle state shared by the CLI and the service.

A :class:`JobSpec` is the *what* of a submission — campaign or chaos
sweep, target, seed range, presets/plan, SATIN overrides — and digests to
a content address (:meth:`JobSpec.config_digest`) that deliberately
excludes the execution substrate (backend, worker count, timeout), so two
users asking for the same parameter point share one cache entry no matter
how their jobs run.

A :class:`JobState` is the *where it is*: the state machine

    pending -> running -> done | cancelled | failed
    pending ----------> cancelled | failed

with timestamps, progress counters and the result summary.  Invalid
transitions raise :class:`~repro.errors.JobTransitionError`.  Both types
round-trip through JSON (``to_json``/``from_json``) because the service
persists them as job-scoped artifacts beside the result store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.campaign.digest import CODE_VERSION, stable_digest
from repro.errors import JobTransitionError, ServiceError

#: Job kinds and the sweep machinery each maps onto.
JOB_KINDS = ("campaign", "chaos")

#: Every lifecycle state.
JOB_STATES = ("pending", "running", "done", "cancelled", "failed")

#: Legal transitions; terminal states allow none.
_TRANSITIONS: Dict[str, frozenset] = {
    "pending": frozenset({"running", "cancelled", "failed"}),
    "running": frozenset({"done", "cancelled", "failed"}),
    "done": frozenset(),
    "cancelled": frozenset(),
    "failed": frozenset(),
}


@dataclass
class JobSpec:
    """Everything that defines a submitted job.

    ``kind`` is ``"campaign"`` (``target`` = experiment id, e.g. ``E9``)
    or ``"chaos"`` (``target`` = scenario name, with ``plan`` naming the
    fault plan).  Result-determining fields feed the digest; execution
    fields (``backend``/``jobs``/``timeout``/``max_attempts``) do not.
    """

    kind: str
    target: str
    seeds: int = 8
    seed_base: int = 0
    presets: List[str] = field(default_factory=lambda: ["juno_r1"])
    full: bool = False
    satin: Optional[Dict[str, Any]] = None
    # chaos-only result fields
    plan: str = "smoke"
    fault_seed_base: int = 0
    duration: Optional[float] = None
    # adaptive-planner fields (campaign-only; result-determining — they
    # change which seeds are consumed — so they feed the digest when set)
    adaptive: bool = False
    ci_width: Optional[float] = None
    ci_quantity: Optional[str] = None
    min_seeds: int = 8
    round_size: int = 4
    # execution fields (excluded from the digest)
    backend: str = "auto"
    jobs: int = 1
    timeout: Optional[float] = None
    max_attempts: int = 2
    queue_dir: Optional[str] = None
    queue_workers: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r} (choose from {', '.join(JOB_KINDS)})"
            )
        if not self.target:
            raise ServiceError("job needs a target (experiment id or scenario)")
        if self.seeds < 1:
            raise ServiceError(f"job needs seeds >= 1, got {self.seeds}")
        if not self.presets:
            raise ServiceError("job needs at least one preset")
        if self.backend == "queue" and not self.queue_dir:
            raise ServiceError("queue backend needs queue_dir")
        if self.adaptive:
            if self.kind != "campaign":
                raise ServiceError("adaptive dispatch is campaign-only")
            if self.ci_width is None or self.ci_width <= 0:
                raise ServiceError("adaptive job needs ci_width > 0")

    def seed_list(self) -> List[int]:
        return [self.seed_base + i for i in range(self.seeds)]

    def config_digest(self) -> str:
        """Content address of the job's *results* (not its execution)."""
        body: Dict[str, Any] = {
            "kind": self.kind,
            "target": self.target.upper() if self.kind == "campaign" else self.target,
            "seeds": self.seeds,
            "seed_base": self.seed_base,
            "presets": list(self.presets),
            "full": self.full,
            "satin": self.satin or {},
            "code": CODE_VERSION,
        }
        if self.kind == "chaos":
            body.update(
                {
                    "plan": self.plan,
                    "fault_seed_base": self.fault_seed_base,
                    "duration": self.duration,
                }
            )
        if self.adaptive:
            # Adaptive dispatch consumes a data-dependent prefix of the
            # seed stream, so the planner knobs determine the result set;
            # non-adaptive jobs keep their digests unchanged.
            body["planner"] = {
                "adaptive": True,
                "ci_width": self.ci_width,
                "ci_quantity": self.ci_quantity,
                "min_seeds": self.min_seeds,
                "round_size": self.round_size,
            }
        return stable_digest(body)

    def to_run_spec(self, cache_dir: str):
        """The campaign/chaos spec this job executes, resuming from cache."""
        if self.kind == "campaign":
            from repro.campaign.runner import CampaignSpec

            return CampaignSpec(
                experiment_id=self.target,
                seeds=self.seed_list(),
                full=self.full,
                presets=tuple(self.presets),
                satin=dict(self.satin) if self.satin else None,
                jobs=self.jobs,
                timeout=self.timeout,
                max_attempts=self.max_attempts,
                cache_dir=cache_dir,
                resume=True,
                backend=self.backend,
                queue_dir=self.queue_dir,
                queue_workers=self.queue_workers,
                adaptive=self.adaptive,
                ci_width=self.ci_width,
                ci_quantity=self.ci_quantity,
                min_seeds=self.min_seeds,
                round_size=self.round_size,
            )
        from repro.faults.chaos import ChaosSpec

        return ChaosSpec(
            scenario=self.target,
            seeds=self.seed_list(),
            plan_name=self.plan,
            fault_seed_base=self.fault_seed_base,
            preset=self.presets[0],
            duration=self.duration,
            jobs=self.jobs,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            cache_dir=cache_dir,
            resume=True,
            backend=self.backend,
            queue_dir=self.queue_dir,
            queue_workers=self.queue_workers,
        )

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ServiceError("job spec must be a JSON object")
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"unknown job spec field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as error:
            raise ServiceError(f"bad job spec: {error}") from None


@dataclass
class JobState:
    """Lifecycle record of one submitted job."""

    job_id: str
    spec: JobSpec
    state: str = "pending"
    digest: str = ""
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: trial-level progress: total/cached/done/failed/retried.
    progress: Dict[str, int] = field(default_factory=dict)
    #: completion summary (totals, cache split, manifest fingerprint hash).
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    manifest_path: Optional[str] = None
    #: times this job was reset to pending by crash recovery.
    recoveries: int = 0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ServiceError(f"unknown job state {self.state!r}")
        if not self.digest:
            self.digest = self.spec.config_digest()
        #: set to request cooperative cancellation of a running job.
        self.cancel_event = threading.Event()

    @property
    def terminal(self) -> bool:
        return not _TRANSITIONS[self.state]

    def advance(self, new_state: str, error: Optional[str] = None) -> None:
        """Move the state machine; raises on an illegal transition."""
        if new_state not in JOB_STATES:
            raise ServiceError(f"unknown job state {new_state!r}")
        if new_state not in _TRANSITIONS[self.state]:
            raise JobTransitionError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {new_state!r}"
            )
        self.state = new_state
        now = time.time()
        if new_state == "running":
            self.started_unix = now
        else:
            self.finished_unix = now
        if error is not None:
            self.error = error

    def mark_recovered(self) -> None:
        """Reset an in-flight job to ``pending`` after a service restart.

        Deliberately *not* a normal transition — ``running -> pending``
        only makes sense when the process that was running the job is
        gone.  Trial-level progress is reset (the re-dispatch recomputes
        it; completed trials come back instantly as cache hits), the
        cancel event is re-armed, and ``recoveries`` counts the resets.
        """
        if self.terminal:
            raise JobTransitionError(
                f"job {self.job_id} is {self.state}; terminal jobs are "
                "served from the journal, not recovered"
            )
        self.state = "pending"
        self.started_unix = None
        self.recoveries += 1
        total = self.progress.get("total", 0)
        self.progress = {
            "total": total, "cached": 0, "done": 0, "failed": 0, "retried": 0,
        }
        self.cancel_event = threading.Event()

    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "state": self.state,
            "digest": self.digest,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "progress": dict(self.progress),
            "result": self.result,
            "error": self.error,
            "manifest_path": self.manifest_path,
            "recoveries": self.recoveries,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "JobState":
        if not isinstance(payload, dict):
            raise ServiceError("job state must be a JSON object")
        try:
            spec = JobSpec.from_json(payload["spec"])
            state = cls(
                job_id=payload["job_id"],
                spec=spec,
                state=payload.get("state", "pending"),
                digest=payload.get("digest", ""),
                created_unix=payload.get("created_unix", 0.0),
            )
        except KeyError as error:
            raise ServiceError(f"job state missing field {error.args[0]!r}") from None
        state.started_unix = payload.get("started_unix")
        state.finished_unix = payload.get("finished_unix")
        state.progress = dict(payload.get("progress") or {})
        state.result = payload.get("result")
        state.error = payload.get("error")
        state.manifest_path = payload.get("manifest_path")
        state.recoveries = int(payload.get("recoveries") or 0)
        return state
