"""``python -m repro serve``: a long-running HTTP/JSON campaign service.

Stdlib-only (``http.server``), multi-tenant, and memoised through the
content-addressed result store: every job runs with ``resume=True``
against one shared cache root, so overlapping submissions hit the store
instead of the simulator, and a duplicate of a finished job completes
with ``ran == 0`` (a *pure cache hit*).  In-flight deduplication goes one
step further — submitting a spec whose digest matches a pending/running
job returns that job instead of queueing a twin.

Endpoints (all JSON unless noted)::

    POST /jobs               submit a JobSpec; 200 -> JobState (+deduped flag)
    GET  /jobs               list job states, newest last
    GET  /jobs/<id>          one JobState (live progress while running)
    GET  /jobs/<id>/manifest the campaign manifest (deterministic merge)
    GET  /jobs/<id>/result   the rendered report (text/plain)
    GET  /jobs/<id>/matrix   the survival matrix (chaos jobs)
    POST /jobs/<id>/cancel   cooperative cancel (also DELETE /jobs/<id>)
    GET  /jobs/<id>/events   polling JSON cursor over lifecycle/progress deltas
    GET  /healthz            liveness probe
    GET  /readyz             readiness (503 while draining or replaying)
    GET  /metrics            Prometheus text (or the JSON snapshot with
                             ``Accept: application/json``)

Job execution happens on a small worker-thread pool; jobs that map to the
same campaign directory serialize on a per-campaign lock because the
JSONL store is single-writer.  Each job gets a per-job metric namespace
(``job.<id>.*``) inside the service registry plus lifecycle counters
(``service.jobs_submitted``, ``service.cache_hits``, ...).

Durability (see :mod:`repro.service.journal`): every job transition is
appended to a fsync'd write-ahead journal under the cache root before it
is acknowledged, so a SIGKILL'd server restarted with ``--recover`` (the
default) reconstructs all jobs — terminal ones serve their recorded
results, in-flight ones are re-dispatched through the campaign resume
path and converge to byte-identical manifest fingerprints.  Admission
control keeps the pending queue bounded (HTTP 429 + ``Retry-After``), and
SIGTERM flips the server into a graceful drain: new submissions get 503,
running jobs finish and persist, the journal is compacted, exit code 0.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import queue as queue_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.runner import DEFAULT_CACHE_DIR
from repro.campaign.store import job_artifact_dir
from repro.errors import (
    BackpressureError,
    JobTransitionError,
    ReproError,
    ServiceError,
)
from repro.obs.manifest import manifest_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.jobs import JobSpec, JobState
from repro.service.journal import DEFAULT_COMPACT_EVERY, JobJournal

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8971

#: Per-job event-log cap: older events are dropped from memory, but event
#: sequence numbers stay monotonic so a cursor past the drop point still
#: resumes correctly.
EVENT_LOG_CAP = 1000

#: Admission-control defaults: pending jobs the service will queue, and
#: non-terminal jobs one client may have in flight (0 disables a cap).
DEFAULT_MAX_PENDING = 64
DEFAULT_MAX_INFLIGHT = 8


class JobManager:
    """Owns job lifecycle, execution threads, and the shared cache root."""

    def __init__(
        self,
        cache_dir: str = DEFAULT_CACHE_DIR,
        registry: Optional[MetricsRegistry] = None,
        max_workers: int = 2,
        recover: bool = True,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_inflight_per_client: int = DEFAULT_MAX_INFLIGHT,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"need max_workers >= 1, got {max_workers}")
        if max_pending < 1:
            raise ServiceError(f"need max_pending >= 1, got {max_pending}")
        self.cache_dir = cache_dir
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_pending = max_pending
        self.max_inflight_per_client = max_inflight_per_client
        self.compact_every = compact_every
        self._jobs: Dict[str, JobState] = {}
        self._order: List[str] = []
        #: job id -> append-only event log (seq-numbered, capped).
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._event_seq: Dict[str, int] = {}
        #: job id -> submitting client (in-memory only; caps reset on restart).
        self._client_of: Dict[str, str] = {}
        self._lock = threading.RLock()
        self._run_queue: "queue_module.Queue" = queue_module.Queue()
        self._campaign_locks: Dict[str, threading.Lock] = {}
        self._ids = itertools.count(1)
        self._stopping = threading.Event()
        self._draining = False
        self._replaying = False
        self._journal = JobJournal(cache_dir, registry=self.registry)
        if recover:
            self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Crash recovery (``repro serve --recover``)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the job table from the journal before serving.

        Terminal jobs come back verbatim (their manifests and rendered
        results still live in the store / job artifacts).  Pending and
        running jobs — in flight when the previous process died — are
        reset to ``pending`` and re-enqueued; because every job executes
        with ``resume=True`` against the content-addressed store, the
        re-run serves completed trials from cache and produces the same
        ``manifest_fingerprint`` an uninterrupted run would have.
        """
        self._replaying = True
        try:
            replay = self._journal.replay()
            max_id = 0
            redispatch: List[JobState] = []
            for job_json in replay.jobs:
                try:
                    job = JobState.from_json(job_json)
                except ServiceError:
                    self.registry.counter("journal.unreadable_jobs").inc()
                    continue
                parts = job.job_id.split("-")
                if len(parts) >= 2 and parts[1].isdigit():
                    max_id = max(max_id, int(parts[1]))
                self._jobs[job.job_id] = job
                self._order.append(job.job_id)
                if not job.terminal:
                    job.mark_recovered()
                    redispatch.append(job)
            self._ids = itertools.count(max_id + 1)
            for job in redispatch:
                self.registry.counter("service.jobs_recovered").inc()
                self._persist(job)
                self._log_event(job, "lifecycle", "recovered")
                self._run_queue.put(job.job_id)
            if replay.jobs:
                self._journal.compact(self._job_table())
        finally:
            self._replaying = False

    def _job_table(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._jobs[job_id].to_json() for job_id in self._order]

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------

    def submit(
        self, payload: Dict[str, Any], client: Optional[str] = None
    ) -> Tuple[JobState, bool]:
        """Queue a job; returns ``(state, deduped)``.

        ``deduped`` is True when an active (pending/running) job with the
        same config digest already exists — the caller gets that job (it
        does not count against ``client``'s in-flight cap).  Admission
        control raises :class:`~repro.errors.BackpressureError` when the
        server is draining (503), the pending queue is at ``max_pending``
        depth, or ``client`` already has ``max_inflight_per_client``
        non-terminal jobs (both 429 with a ``Retry-After`` hint) — an
        accepted job is never dropped, a rejected one is never queued.
        """
        spec = JobSpec.from_json(payload)
        digest = spec.config_digest()
        with self._lock:
            if self._draining:
                self.registry.counter("service.jobs_rejected").inc()
                raise BackpressureError(
                    "service is draining; resubmit to the restarted server",
                    retry_after=5.0,
                    status=503,
                )
            for job_id in reversed(self._order):
                job = self._jobs[job_id]
                if job.digest == digest and not job.terminal:
                    self.registry.counter("service.jobs_deduped").inc()
                    return job, True
            pending = sum(
                1 for j in self._jobs.values() if j.state == "pending"
            )
            if pending >= self.max_pending:
                self.registry.counter("service.jobs_rejected").inc()
                raise BackpressureError(
                    f"pending queue is full ({pending}/{self.max_pending} "
                    "jobs); retry with backoff",
                    retry_after=min(30.0, float(max(1, pending))),
                    status=429,
                )
            if client is not None and self.max_inflight_per_client > 0:
                inflight = sum(
                    1
                    for jid, owner in self._client_of.items()
                    if owner == client and not self._jobs[jid].terminal
                )
                if inflight >= self.max_inflight_per_client:
                    self.registry.counter("service.jobs_rejected").inc()
                    raise BackpressureError(
                        f"client {client!r} already has {inflight} job(s) "
                        f"in flight (cap {self.max_inflight_per_client})",
                        retry_after=2.0,
                        status=429,
                    )
            job_id = f"job-{next(self._ids):04d}-{digest[:8]}"
            job = JobState(job_id=job_id, spec=spec, digest=digest)
            job.progress = {
                "total": spec.seeds * len(spec.presets),
                "cached": 0, "done": 0, "failed": 0, "retried": 0,
            }
            self._jobs[job_id] = job
            self._order.append(job_id)
            if client is not None:
                self._client_of[job_id] = client
            self.registry.counter("service.jobs_submitted").inc()
            self.registry.namespaced(f"job.{job_id}").counter("submitted").inc()
            self._persist(job)
        self._log_event(job, "lifecycle", "submitted")
        self._run_queue.put(job_id)
        return job, False

    # ------------------------------------------------------------------
    # Event log (``GET /jobs/<id>/events``)
    # ------------------------------------------------------------------

    def _log_event(self, job: JobState, kind: str, event: str) -> None:
        """Append one seq-numbered event to the job's in-memory log.

        ``kind`` is ``"lifecycle"`` (state transitions) or ``"trial"``
        (per-trial progress).  Every event snapshots the job's state and
        progress counters, so a poller can rebuild progress from deltas
        alone.
        """
        with self._lock:
            seq = self._event_seq.get(job.job_id, 0) + 1
            self._event_seq[job.job_id] = seq
            log = self._events.setdefault(job.job_id, [])
            log.append(
                {
                    "seq": seq,
                    "kind": kind,
                    "event": event,
                    "state": job.state,
                    "progress": dict(job.progress),
                }
            )
            if len(log) > EVENT_LOG_CAP:
                del log[: len(log) - EVENT_LOG_CAP]

    def events(self, job_id: str, cursor: int = 0) -> Dict[str, Any]:
        """Events with ``seq > cursor`` plus the new cursor to poll from.

        The response's ``cursor`` always advances to the job's latest
        sequence number, so ``GET /jobs/<id>/events?cursor=<last>`` is a
        cheap no-news poll.  ``dropped`` flags a cursor that fell behind
        the capped log (the poller missed events and should refetch the
        job state wholesale).
        """
        job = self.get(job_id)  # raises on unknown id
        with self._lock:
            log = list(self._events.get(job_id, []))
            seq = self._event_seq.get(job_id, 0)
        fresh = [event for event in log if event["seq"] > cursor]
        oldest = log[0]["seq"] if log else 1
        return {
            "job_id": job.job_id,
            "state": job.state,
            "terminal": job.terminal,
            "cursor": seq,
            "dropped": bool(cursor and cursor + 1 < oldest),
            "events": fresh,
        }

    def get(self, job_id: str) -> JobState:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def list(self) -> List[JobState]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> JobState:
        """Cancel a pending job outright, or cooperatively stop a running one."""
        job = self.get(job_id)
        with self._lock:
            if job.state == "pending":
                job.advance("cancelled")
                self.registry.counter("service.jobs_cancelled").inc()
                self._persist(job)
                self._log_event(job, "lifecycle", "cancelled")
                return job
            if job.state == "running":
                job.cancel_event.set()
                return job
        raise JobTransitionError(
            f"job {job_id} is already {job.state}; nothing to cancel"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _campaign_lock(self, campaign_id: str) -> threading.Lock:
        with self._lock:
            if campaign_id not in self._campaign_locks:
                self._campaign_locks[campaign_id] = threading.Lock()
            return self._campaign_locks[campaign_id]

    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            if self._draining:
                # Finish what is running elsewhere; pending jobs stay
                # journaled and come back via --recover after restart.
                return
            try:
                job_id = self._run_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != "pending":
                    continue  # cancelled while queued
                job.advance("running")
                self._persist(job)
                # inside the lock: a poller that sees the new state must
                # also see its lifecycle event (the lock is an RLock)
                self._log_event(job, "lifecycle", "running")
            try:
                self._execute(job)
            except BaseException:  # never kill the worker loop
                with self._lock:
                    if not job.terminal:
                        import traceback

                        job.advance("failed", error=traceback.format_exc(limit=10))
                        self.registry.counter("service.jobs_failed").inc()
                        self._persist(job)
                        self._log_event(job, "lifecycle", "failed")

    def _execute(self, job: JobState) -> None:
        from repro.campaign.runner import run_campaign
        from repro.faults.chaos import run_chaos

        ns = self.registry.namespaced(f"job.{job.job_id}")
        started = time.monotonic()

        def observer(event: str, info: Dict[str, Any]) -> None:
            with self._lock:
                if event == "cached":
                    job.progress["cached"] = info.get("count", 0)
                elif event in ("done", "failed", "retried", "retry"):
                    key = "retried" if event == "retry" else event
                    job.progress[key] = job.progress.get(key, 0) + 1
            ns.counter(f"trials_{'retried' if event == 'retry' else event}").inc()
            self._log_event(job, "trial", event)

        error: Optional[str] = None
        result = None
        try:
            spec = job.spec.to_run_spec(self.cache_dir)
            with self._campaign_lock(spec.campaign_id()):
                if job.spec.kind == "campaign":
                    result = run_campaign(
                        spec, progress=False,
                        observer=observer, cancel_event=job.cancel_event,
                    )
                else:
                    result = run_chaos(
                        spec, progress=False,
                        observer=observer, cancel_event=job.cancel_event,
                    )
        except ReproError as exc:
            error = exc.args[0] if exc.args else str(exc)

        wall = time.monotonic() - started
        with self._lock:
            if error is not None or result is None:
                job.advance("failed", error=error or "job produced no result")
                self.registry.counter("service.jobs_failed").inc()
            else:
                job.manifest_path = result.manifest_path
                summary: Dict[str, Any] = {
                    "total": result.total,
                    "ran": result.ran,
                    "cached": result.cached,
                    "quarantined": len(result.quarantined),
                    "records": len(result.records),
                    "pure_cache_hit": result.total > 0 and result.ran == 0,
                    "campaign_id": result.spec.campaign_id(),
                }
                if result.manifest_path and os.path.isfile(result.manifest_path):
                    with open(result.manifest_path, "r", encoding="utf-8") as handle:
                        manifest = json.load(handle)
                    summary["fingerprint_sha256"] = hashlib.sha256(
                        manifest_fingerprint(manifest).encode("utf-8")
                    ).hexdigest()
                if getattr(result, "totals", None):  # chaos survival totals
                    summary["survival_totals"] = result.totals
                job.result = summary
                self._write_artifact(job, "result.txt", result.rendered + "\n")
                if summary["pure_cache_hit"]:
                    self.registry.counter("service.cache_hits").inc()
                if result.cancelled:
                    job.advance("cancelled")
                    self.registry.counter("service.jobs_cancelled").inc()
                else:
                    job.advance("done")
                    self.registry.counter("service.jobs_completed").inc()
            ns.counter(f"state_{job.state}").inc()
            self.registry.histogram("service.job_wall_seconds").observe(wall)
            self._persist(job)
            self._log_event(job, "lifecycle", job.state)

    # ------------------------------------------------------------------
    # Job-scoped artifacts
    # ------------------------------------------------------------------

    def _persist(self, job: JobState) -> None:
        """Commit a job transition: journal first, then the job artifact."""
        state = job.to_json()
        self._journal.append(state)
        directory = job_artifact_dir(self.cache_dir, job.job_id)
        path = os.path.join(directory, "job.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True, indent=1)
            handle.write("\n")
        self._journal.maybe_compact(self._job_table(), every=self.compact_every)

    def _write_artifact(self, job: JobState, name: str, text: str) -> None:
        directory = job_artifact_dir(self.cache_dir, job.job_id)
        with open(os.path.join(directory, name), "w", encoding="utf-8") as handle:
            handle.write(text)

    def read_artifact(self, job_id: str, name: str) -> Optional[str]:
        directory = job_artifact_dir(self.cache_dir, job_id, create=False)
        try:
            with open(os.path.join(directory, name), "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def manifest(self, job_id: str) -> Dict[str, Any]:
        job = self.get(job_id)
        if not job.manifest_path or not os.path.isfile(job.manifest_path):
            raise ServiceError(f"job {job_id} has no manifest yet (state {job.state})")
        with open(job.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    # ------------------------------------------------------------------
    # Drain / readiness / shutdown
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def readiness(self) -> Dict[str, Any]:
        """The ``/readyz`` payload; ``ready`` gates load-balancer traffic."""
        return {
            "ready": not self._draining and not self._replaying,
            "draining": self._draining,
            "replaying": self._replaying,
        }

    def begin_drain(self) -> None:
        """Stop accepting work; running jobs keep going (idempotent)."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self.registry.counter("service.drains").inc()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: finish in-flight jobs, flush the journal.

        Blocks until every worker thread has finished its current job (or
        ``timeout`` elapses), then compacts the journal so pending jobs
        are snapshotted as resumable.  Returns True when all workers
        exited in time.
        """
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = True
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(timeout=remaining)
            clean = clean and not thread.is_alive()
        self._journal.compact(self._job_table())
        self._journal.close()
        return clean

    def shutdown(self, cancel_running: bool = True) -> None:
        self._stopping.set()
        if cancel_running:
            with self._lock:
                jobs = [self._jobs[j] for j in self._order]
            for job in jobs:
                if job.state == "running":
                    job.cancel_event.set()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._journal.close()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the job API onto a :class:`JobManager` (set by make_server)."""

    manager: JobManager  # injected via subclassing in make_server
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: set False to silence per-request stderr logging.
    verbose = False

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: N802
        self.manager.registry.counter("service.http_requests").inc()
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # -- plumbing ------------------------------------------------------

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(
        self,
        code: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("utf-8")
        self._send(code, body, "application/json", headers=headers)

    def _backpressure(self, exc: BackpressureError) -> None:
        """429/503 + Retry-After: the client's backoff loop understands both."""
        self._json(
            exc.status,
            {"error": str(exc), "retry_after": exc.retry_after},
            headers={"Retry-After": str(max(1, int(round(exc.retry_after))))},
        )

    def _client_id(self) -> str:
        """Who is submitting: explicit header, else the peer address."""
        return (
            self.headers.get("X-Repro-Client")
            or (self.client_address[0] if self.client_address else "unknown")
        )

    def _text(self, code: int, text: str) -> None:
        self._send(code, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except ValueError:
            raise ServiceError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, List[str]]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return path, [part for part in path.split("/") if part]

    def _query(self) -> Dict[str, str]:
        """Last-wins query-string parameters of the request."""
        if "?" not in self.path:
            return {}
        from urllib.parse import parse_qsl

        return dict(parse_qsl(self.path.split("?", 1)[1]))

    def _wants_json(self) -> bool:
        accept = self.headers.get("Accept", "")
        return "application/json" in accept

    # -- methods -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        _, parts = self._route()
        try:
            if parts == ["healthz"]:
                self._json(200, {"ok": True, "jobs": len(self.manager.list())})
            elif parts == ["readyz"]:
                readiness = self.manager.readiness()
                self._json(200 if readiness["ready"] else 503, readiness)
            elif parts == ["metrics"]:
                # Content negotiation: scrapers get Prometheus 0.0.4 text,
                # JSON clients (Accept: application/json) the raw snapshot.
                snapshot = self.manager.registry.snapshot()
                if self._wants_json():
                    self._json(200, snapshot)
                else:
                    self._send(
                        200,
                        render_prometheus(snapshot).encode("utf-8"),
                        PROMETHEUS_CONTENT_TYPE,
                    )
            elif parts == ["jobs"]:
                self._json(
                    200, {"jobs": [job.to_json() for job in self.manager.list()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._json(200, self.manager.get(parts[1]).to_json())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "manifest":
                self._json(200, self.manager.manifest(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                rendered = self.manager.read_artifact(parts[1], "result.txt")
                if rendered is None:
                    job = self.manager.get(parts[1])  # 404 on unknown id
                    self._error(
                        409, f"job {job.job_id} has no result yet (state {job.state})"
                    )
                else:
                    self._text(200, rendered)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                try:
                    cursor = int(self._query().get("cursor", "0"))
                except ValueError:
                    raise ServiceError("cursor must be an integer")
                self._json(200, self.manager.events(parts[1], cursor=cursor))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "matrix":
                manifest = self.manager.manifest(parts[1])
                survival = manifest.get("survival")
                if survival is None:
                    self._error(409, f"job {parts[1]} carries no survival matrix")
                else:
                    self._json(200, survival)
            else:
                self._error(404, f"no such resource {self.path!r}")
        except ServiceError as exc:
            self._error(404 if "unknown job" in str(exc) else 409, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        _, parts = self._route()
        try:
            if parts == ["jobs"]:
                payload = self._read_body()
                job, deduped = self.manager.submit(payload, client=self._client_id())
                body = job.to_json()
                body["deduped"] = deduped
                self._json(200, body)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._json(200, self.manager.cancel(parts[1]).to_json())
            else:
                self._error(404, f"no such resource {self.path!r}")
        except BackpressureError as exc:
            self._backpressure(exc)
        except JobTransitionError as exc:
            self._error(409, str(exc))
        except ServiceError as exc:
            self._error(
                404 if "unknown job" in str(exc) else 400, str(exc)
            )

    def do_DELETE(self) -> None:  # noqa: N802
        _, parts = self._route()
        try:
            if len(parts) == 2 and parts[0] == "jobs":
                self._json(200, self.manager.cancel(parts[1]).to_json())
            else:
                self._error(404, f"no such resource {self.path!r}")
        except JobTransitionError as exc:
            self._error(409, str(exc))
        except ServiceError as exc:
            self._error(404 if "unknown job" in str(exc) else 400, str(exc))


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: str = DEFAULT_CACHE_DIR,
    max_workers: int = 2,
    verbose: bool = False,
    recover: bool = True,
    max_pending: int = DEFAULT_MAX_PENDING,
    max_inflight_per_client: int = DEFAULT_MAX_INFLIGHT,
) -> Tuple[ThreadingHTTPServer, JobManager]:
    """Build the HTTP server + manager pair (caller runs serve_forever)."""
    manager = JobManager(
        cache_dir=cache_dir,
        max_workers=max_workers,
        recover=recover,
        max_pending=max_pending,
        max_inflight_per_client=max_inflight_per_client,
    )

    class _Handler(ServiceHandler):
        pass

    _Handler.manager = manager
    _Handler.verbose = verbose
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server, manager


def serve_forever(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: str = DEFAULT_CACHE_DIR,
    max_workers: int = 2,
    verbose: bool = False,
    stream=None,
    recover: bool = True,
    max_pending: int = DEFAULT_MAX_PENDING,
    max_inflight_per_client: int = DEFAULT_MAX_INFLIGHT,
) -> int:
    """The ``repro serve`` entry point; blocks until SIGINT or SIGTERM.

    SIGINT (Ctrl-C) keeps the historical fast-stop semantics: running
    jobs are cancelled (their partial shards stay resumable).  SIGTERM —
    what an orchestrator sends — drains gracefully instead: ``/readyz``
    flips to 503, new submissions are rejected, running jobs finish and
    persist, the journal is compacted, and the process exits 0.
    """
    import signal
    import sys

    stream = stream if stream is not None else sys.stderr
    server, manager = make_server(
        host=host, port=port, cache_dir=cache_dir,
        max_workers=max_workers, verbose=verbose, recover=recover,
        max_pending=max_pending,
        max_inflight_per_client=max_inflight_per_client,
    )
    bound_host, bound_port = server.server_address[:2]
    recovered = sum(1 for job in manager.list() if job.recoveries)
    note = f", {recovered} job(s) recovered" if recovered else ""
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(cache {cache_dir!r}, {max_workers} job worker(s){note})",
        file=stream,
    )

    drained = threading.Event()

    def _drain_and_stop() -> None:
        manager.begin_drain()
        manager.drain()
        drained.set()
        server.shutdown()

    def _on_sigterm(signum, frame) -> None:
        print(
            "repro serve: SIGTERM — draining (finishing in-flight jobs)",
            file=stream,
        )
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded in tests)

    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("repro serve: shutting down (cancelling running jobs)", file=stream)
    finally:
        server.shutdown()
        server.server_close()
        if drained.is_set():
            manager.shutdown(cancel_running=False)
            print(
                "repro serve: drain complete (journal flushed, "
                "pending jobs resumable)",
                file=stream,
            )
        else:
            manager.shutdown(cancel_running=True)
    return 0
