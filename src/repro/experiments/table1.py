"""Experiment E1 — Table I: secure world introspection time.

Measures the per-byte cost of the two introspection techniques on each
core type: directly hashing live kernel memory vs. snapshotting into
secure SRAM and hashing the copy.  The paper repeats each measurement 50
times; the reproduction triggers 50 secure-world entries per cell and
divides the measured scan duration by the region size.

Expected findings (all reproduced):
* direct hashing is at least as fast as snapshotting and needs no buffer;
* the A57 ("big") cores scan ~1.6x faster than the A53 ("LITTLE") cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table, sci
from repro.experiments.common import ExperimentResult, Stack, build_stack
from repro.hw.core import Core
from repro.secure.introspect import scan_area

#: Paper's Table I, per-byte seconds: (cluster, technique) -> (avg, max, min).
PAPER_TABLE1 = {
    ("A53", "hash"): (1.07e-8, 1.14e-8, 9.23e-9),
    ("A53", "snapshot"): (1.08e-8, 1.57e-8, 9.24e-9),
    ("A57", "hash"): (6.71e-9, 7.50e-9, 6.67e-9),
    ("A57", "snapshot"): (6.75e-9, 7.83e-9, 6.67e-9),
}

#: Bytes scanned per measurement (1 MiB, comfortably inside one area).
REGION_BYTES = 1 << 20


@dataclass
class Table1Cell:
    cluster: str
    technique: str
    summary: Summary


def _measure_cell(
    stack: Stack,
    core: Core,
    technique: str,
    repetitions: int,
    snapshot_buffer,
) -> Summary:
    """Run ``repetitions`` secure scans on ``core``; per-byte summaries."""
    machine = stack.machine
    image = stack.rich_os.image
    durations: List[float] = []

    for _ in range(repetitions):
        record: Dict[str, float] = {}

        def payload(entered_core: Core, _record=record):
            _record["start"] = machine.sim.now
            # One whole-region chunk: the per-byte cost is sampled once per
            # measurement, matching how the paper times whole runs.
            yield from scan_area(
                image,
                entered_core,
                offset=0,
                length=REGION_BYTES,
                chunk_size=REGION_BYTES,
                snapshot_buffer=snapshot_buffer if technique == "snapshot" else None,
            )
            _record["end"] = machine.sim.now

        machine.monitor.request_secure_entry(core, payload)
        machine.sim.run(max_events=10_000)
        durations.append((record["end"] - record["start"]) / REGION_BYTES)
    return Summary.of(durations)


def run_table1(seed: int = 2019, repetitions: int = 50) -> ExperimentResult:
    """Regenerate Table I."""
    stack = build_stack(seed=seed)
    from repro.hw.platform import SECURE_SRAM_BASE
    from repro.secure.snapshot import SecureSnapshotBuffer

    snapshot_buffer = SecureSnapshotBuffer(
        stack.machine.memory, SECURE_SRAM_BASE, 2 * REGION_BYTES
    )
    cells: List[Table1Cell] = []
    cores = {"A53": stack.machine.little_core(), "A57": stack.machine.big_core()}
    for cluster, core in cores.items():
        for technique in ("hash", "snapshot"):
            summary = _measure_cell(stack, core, technique, repetitions, snapshot_buffer)
            cells.append(Table1Cell(cluster, technique, summary))

    rows = []
    result = ExperimentResult(
        experiment_id="E1",
        title="Table I: Secure World Introspection Time (per byte)",
        rendered="",
    )
    for cell in cells:
        paper_avg, paper_max, paper_min = PAPER_TABLE1[(cell.cluster, cell.technique)]
        rows.append(
            [
                f"{cell.cluster}-{cell.technique}",
                sci(cell.summary.average),
                sci(cell.summary.maximum),
                sci(cell.summary.minimum),
                sci(paper_avg),
            ]
        )
        result.compare(
            f"{cell.cluster} {cell.technique} avg", paper_avg, cell.summary.average
        )
        result.values[f"{cell.cluster}.{cell.technique}"] = cell.summary

    by_key = {f"{c.cluster}.{c.technique}": c.summary for c in cells}
    result.values["hash_not_slower_than_snapshot_a53"] = (
        by_key["A53.hash"].average <= by_key["A53.snapshot"].average * 1.05
    )
    result.values["a57_faster_than_a53"] = (
        by_key["A57.hash"].average < by_key["A53.hash"].average
    )
    result.rendered = render_table(
        ("core-technique", "avg", "max", "min", "paper avg"),
        rows,
        title=result.title,
    )
    return result
