"""Experiment E4/E6 — Table II: probing threshold vs. probing period.

For each probing period the paper runs KProber for 50 rounds, takes the
largest Time-Comparer difference per round as that round's threshold, and
reports avg/max/min.  Here each round's window maximum is drawn through
the order-statistics fast path over the calibrated per-observation tail
(see :mod:`repro.attacks.threshold_model`); dense simulation cross-checks
the model in the test suite.

Also reproduces the single-core observation: probing one known core sees
roughly 1/4 of the all-core thresholds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import render_table, sci
from repro.attacks.threshold_model import ThresholdStats, ThresholdWindowModel
from repro.config import ProberConfig
from repro.experiments.common import ExperimentResult
from repro.sim.rng import RngRegistry

#: Paper's Table II: period -> (avg, max, min).
PAPER_TABLE2 = {
    8.0: (2.61e-4, 7.76e-4, 1.07e-4),
    16.0: (3.54e-4, 1.38e-3, 1.31e-4),
    30.0: (4.21e-4, 8.99e-4, 2.59e-4),
    120.0: (5.26e-4, 9.49e-4, 3.18e-4),
    300.0: (6.61e-4, 1.77e-3, 4.18e-4),
}

PERIODS = (8.0, 16.0, 30.0, 120.0, 300.0)


def run_table2(
    seed: int = 2019,
    rounds: int = 50,
    single_core: bool = False,
) -> ExperimentResult:
    """Regenerate Table II (or its single-core variant)."""
    rng = RngRegistry(seed).stream("table2")
    model = ThresholdWindowModel(ProberConfig(), single_core=single_core)
    stats: Dict[float, ThresholdStats] = {
        period: model.measure(period, rounds, rng) for period in PERIODS
    }

    rows: List[List[str]] = []
    variant = "single-core" if single_core else "all cores"
    result = ExperimentResult(
        experiment_id="E6" if single_core else "E4",
        title=f"Table II: Probing Threshold ({variant}, {rounds} rounds/period)",
        rendered="",
        values={"stats": stats},
    )
    for period in PERIODS:
        s = stats[period]
        paper_avg, paper_max, paper_min = PAPER_TABLE2[period]
        scale = model.config.single_core_factor if single_core else 1.0
        rows.append(
            [
                f"{period:g} s",
                sci(s.average),
                sci(s.maximum),
                sci(s.minimum),
                sci(paper_avg * scale),
            ]
        )
        result.compare(f"avg threshold @ {period:g}s", paper_avg * scale, s.average)

    averages = [stats[p].average for p in PERIODS]
    # The paper's own columns are not strictly monotone (e.g. its 16 s max
    # exceeds its 30 s max); check the long-run growth instead.
    result.values["average_grows_with_period"] = averages[-1] > averages[0]
    result.values["growth_8s_to_300s"] = averages[-1] / averages[0]
    result.values["worst_observed"] = max(stats[p].maximum for p in PERIODS)
    result.rendered = render_table(
        ("probing period", "avg", "max", "min", "paper avg"),
        rows,
        title=result.title,
    )
    return result


def run_single_core_ratio(seed: int = 2019, rounds: int = 50) -> ExperimentResult:
    """E6: the single-core / all-core threshold ratio (paper: ~1/4)."""
    all_cores = run_table2(seed=seed, rounds=rounds, single_core=False)
    single = run_table2(seed=seed, rounds=rounds, single_core=True)
    ratios = {
        period: single.values["stats"][period].average
        / all_cores.values["stats"][period].average
        for period in PERIODS
    }
    rows = [[f"{p:g} s", f"{r:.3f}", "0.25"] for p, r in ratios.items()]
    result = ExperimentResult(
        experiment_id="E6",
        title="Single-core vs all-core probing threshold ratio",
        rendered=render_table(("period", "ratio", "paper"), rows),
        values={"ratios": ratios},
    )
    for period, ratio in ratios.items():
        result.compare(f"ratio @ {period:g}s", 0.25, ratio)
    return result
