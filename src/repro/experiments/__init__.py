"""Experiment drivers: one per paper table/figure (see DESIGN.md index)."""

from repro.experiments.ablations import (
    ABLATION_VARIANTS,
    AblationOutcome,
    run_ablation_variant,
    run_ablations,
)
from repro.experiments.common import ExperimentResult, Stack, build_stack
from repro.experiments.detection import (
    DetectionRunStats,
    run_detection_experiment,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.prober_comparison import (
    ProberOutcome,
    run_prober_comparison,
)
from repro.experiments.figure7 import OverheadPoint, run_figure7
from repro.experiments.race_analysis import (
    EscapeRunStats,
    run_escape_comparison,
    run_escape_simulation,
    run_race_analysis,
)
from repro.experiments.recover_delay import run_recover_delay
from repro.experiments.switch_delay import run_switch_delay
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_single_core_ratio, run_table2
from repro.experiments.user_prober_eval import run_user_prober_eval

__all__ = [
    "ABLATION_VARIANTS",
    "AblationOutcome",
    "DetectionRunStats",
    "EscapeRunStats",
    "ExperimentResult",
    "OverheadPoint",
    "ProberOutcome",
    "Stack",
    "build_stack",
    "run_ablation_variant",
    "run_ablations",
    "run_detection_experiment",
    "run_escape_comparison",
    "run_escape_simulation",
    "run_figure4",
    "run_prober_comparison",
    "run_figure7",
    "run_race_analysis",
    "run_recover_delay",
    "run_single_core_ratio",
    "run_switch_delay",
    "run_table1",
    "run_table2",
    "run_user_prober_eval",
]
