"""Experiment E7/E11 — Section IV-C: the race-condition analysis.

Three layers, agreeing with each other and the paper:

1. **Analytic** — Equation 2 with the paper's worst-case numbers gives
   S <= 1,218,351 bytes, so ~90% of the 11,916,240-byte kernel is beyond
   the reach of whole-kernel asynchronous introspection.
2. **Monte-Carlo** — draw the race's six quantities from their calibrated
   distributions and a uniform trace position; the escape frequency
   reproduces the ~90%.
3. **Full simulation (E11)** — run the whole-kernel random-introspection
   baseline against a live TZ-Evader and count rounds whose scan misses
   the planted trace; the same experiment against SATIN detects every
   scan of the trace area.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.analysis.tables import pct, render_table, sci
from repro.config import PAPER_S_BOUND, SatinConfig, juno_r1_config
from repro.core.race import (
    RaceParameters,
    evasion_succeeds,
    s_bound,
    unprotected_fraction,
)
from repro.experiments.common import ExperimentResult, build_stack
from repro.sim.rng import RngRegistry

#: Paper's reported unprotected fraction.
PAPER_UNPROTECTED = 0.90


def run_race_analysis(seed: int = 2019, mc_trials: int = 20_000) -> ExperimentResult:
    """E7: analytic bound plus Monte-Carlo escape frequency."""
    params = RaceParameters()
    bound = s_bound(params)
    fraction = unprotected_fraction(params)

    # Monte-Carlo with per-trial sampled quantities.
    machine_cfg = juno_r1_config(seed)
    a57 = machine_cfg.clusters[-1].timing
    rng = RngRegistry(seed).stream("race.mc")
    escapes = 0
    for _ in range(mc_trials):
        trial = RaceParameters(
            ts_switch=a57.world_switch.sample(rng),
            ts_1byte=a57.hash_byte.sample(rng),
            tns_sched=rng.uniform(0.0, machine_cfg.prober.tsleep),
            tns_threshold=machine_cfg.prober.detect_threshold,
            tns_recover=a57.recover_trace_8b.sample(rng),
            kernel_size=params.kernel_size,
        )
        position = rng.uniform(0, params.kernel_size)
        if evasion_succeeds(trial, position):
            escapes += 1
    mc_fraction = escapes / mc_trials

    rows = [
        ["S bound (Eq. 2)", f"{PAPER_S_BOUND:,} B", f"{bound:,} B"],
        ["unprotected fraction", "~90%", pct(fraction, 2)],
        ["Monte-Carlo escape rate", "~90%", pct(mc_fraction, 2)],
    ]
    result = ExperimentResult(
        experiment_id="E7",
        title="Race-condition analysis (Section IV-C)",
        rendered=render_table(("quantity", "paper", "measured"), rows),
        values={
            "s_bound": bound,
            "unprotected_fraction": fraction,
            "mc_escape_rate": mc_fraction,
        },
    )
    result.compare("S bound", PAPER_S_BOUND, bound)
    result.compare("unprotected fraction", PAPER_UNPROTECTED, fraction)
    result.compare("MC escape rate", PAPER_UNPROTECTED, mc_fraction)
    return result


@dataclass
class EscapeRunStats:
    """Outcome of a simulated introspection-vs-evader campaign."""

    mechanism: str
    trace_scans: int
    detections: int
    hide_attempts: int

    @property
    def escape_rate(self) -> float:
        if self.trace_scans == 0:
            return 0.0
        return 1.0 - self.detections / self.trace_scans


def run_escape_simulation(
    seed: int = 2019,
    rounds: int = 12,
    mechanism: str = "baseline",
    mean_period: float = 4.0,
) -> EscapeRunStats:
    """E11: live TZ-Evader vs a given introspection mechanism.

    ``mechanism`` is ``"baseline"`` (whole-kernel scan, random core and
    time) or ``"satin"``.  Returns scan/detection counts for the scans
    that covered the trace (for the baseline every scan covers it).
    """
    if mechanism == "baseline":
        satin_config = SatinConfig(
            tgoal=mean_period,
            partition_mode="whole",
            random_core=True,
            random_deviation=True,
            enforce_area_bound=False,
        )
    elif mechanism == "satin":
        satin_config = SatinConfig(tgoal=mean_period * 19)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")

    stack = build_stack(
        seed=seed, satin_config=satin_config, with_satin=True, with_evader=True
    )
    satin = stack.satin
    assert satin is not None and stack.rootkit is not None
    trace_offset = stack.rootkit.traces[0].offset
    trace_area = next(a for a in satin.areas if a.contains(trace_offset))

    # Run until enough scans of the trace area happened.
    guard = 0
    while (
        len(satin.checker.results_for_area(trace_area.index)) < rounds
        and guard < rounds * 80
    ):
        stack.machine.run_for(mean_period)
        guard += 1

    scans = satin.checker.results_for_area(trace_area.index)[:rounds]
    detections = sum(1 for scan in scans if not scan.match)
    return EscapeRunStats(
        mechanism=mechanism,
        trace_scans=len(scans),
        detections=detections,
        hide_attempts=stack.evader.hide_attempts if stack.evader else 0,
    )


def run_escape_comparison(
    seed: int = 2019, rounds: int = 12, mean_period: float = 4.0
) -> ExperimentResult:
    """E11: baseline loses the race, SATIN wins it."""
    baseline = run_escape_simulation(seed, rounds, "baseline", mean_period)
    satin = run_escape_simulation(seed, rounds, "satin", mean_period)
    # The GETTID trace sits ~8.9 MB into the kernel — far beyond the
    # 1,218,351-byte Equation-2 bound — so against the baseline it is
    # expected to escape *every* scan (it lives in the 90% region).
    rows = [
        [
            baseline.mechanism,
            str(baseline.trace_scans),
            str(baseline.detections),
            pct(baseline.escape_rate, 1),
            "100% (in 90% region)",
        ],
        [
            satin.mechanism,
            str(satin.trace_scans),
            str(satin.detections),
            pct(satin.escape_rate, 1),
            "0%",
        ],
    ]
    result = ExperimentResult(
        experiment_id="E11",
        title="TZ-Evader vs whole-kernel baseline vs SATIN (simulated)",
        rendered=render_table(
            ("mechanism", "trace scans", "detections", "escape rate", "paper"),
            rows,
        ),
        values={"baseline": baseline, "satin": satin},
    )
    result.compare("baseline escape rate (trace in 90% region)", 1.0,
                   baseline.escape_rate)
    result.compare("satin escape rate", 0.0, satin.escape_rate)
    return result
