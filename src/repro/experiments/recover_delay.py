"""Experiment E3 — Section IV-B2: the attack recovery time ``Tns_recover``.

Times the rootkit restoring its 8-byte GETTID syscall-table trace, 50
times on an A53 core and an A57 core.  Paper: A53 average 5.80e-3 s, A57
average 4.96e-3 s — the timing bottleneck of TZ-Evader.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table, sci
from repro.attacks.rootkit import PersistentRootkit
from repro.experiments.common import ExperimentResult, build_stack
from repro.kernel.threads import Task, pin_to
from repro.sim.process import cpu

#: Paper's measured averages per core type.
PAPER_RECOVER = {"A53": 5.80e-3, "A57": 4.96e-3}


def run_recover_delay(seed: int = 2019, repetitions: int = 50) -> ExperimentResult:
    """Regenerate the Tns_recover measurement."""
    stack = build_stack(seed=seed)
    machine = stack.machine
    rootkit = PersistentRootkit(machine, stack.rich_os).install()
    summaries: Dict[str, Summary] = {}

    for cluster, core in (
        ("A53", machine.little_core()),
        ("A57", machine.big_core()),
    ):
        samples: List[float] = []

        def body(task: Task, _samples=samples, _n=repetitions):
            for _ in range(_n):
                start = machine.sim.now
                yield cpu(rootkit.recovery_time(machine.cores[task.core_index]))
                rootkit.apply_hide()
                _samples.append(machine.sim.now - start)
                rootkit.apply_reattack()

        stack.rich_os.spawn_realtime(
            f"recover-{cluster}", body, affinity=pin_to(core.index)
        )
        machine.sim.run(max_events=repetitions * 50)
        summaries[cluster] = Summary.of(samples)

    rows = [
        [cluster, sci(s.average), sci(s.maximum), sci(s.minimum),
         sci(PAPER_RECOVER[cluster])]
        for cluster, s in summaries.items()
    ]
    result = ExperimentResult(
        experiment_id="E3",
        title="Tns_recover: 8-byte trace recovery time (50 reps per core type)",
        rendered=render_table(
            ("core", "avg", "max", "min", "paper avg"), rows, title=None
        ),
        values={"summaries": summaries},
    )
    for cluster, s in summaries.items():
        result.compare(f"{cluster} Tns_recover avg", PAPER_RECOVER[cluster], s.average)
    result.values["a57_recovers_faster"] = (
        summaries["A57"].average < summaries["A53"].average
    )
    return result
