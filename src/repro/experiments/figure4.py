"""Experiment E5 — Figure 4: KProber probing-threshold stability.

Figure 4 is a box plot of the 50 per-round thresholds at each probing
period.  The reproduction computes the same Tukey box statistics
(quartiles, 1.5*IQR whiskers, outliers) from the window-max samples and
checks the paper's qualitative claims: the averages rise with the period,
the upper whiskers rise only slightly, and only the 300 s period produces
extreme outliers above 1e-3 s.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import BoxplotStats, boxplot_stats
from repro.analysis.tables import render_table, sci
from repro.attacks.threshold_model import ThresholdWindowModel
from repro.config import ProberConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.table2 import PERIODS
from repro.sim.rng import RngRegistry


def run_figure4(seed: int = 2019, rounds: int = 50) -> ExperimentResult:
    """Regenerate Figure 4's box-plot series."""
    rng = RngRegistry(seed).stream("figure4")
    model = ThresholdWindowModel(ProberConfig())
    boxes: Dict[float, BoxplotStats] = {}
    samples: Dict[float, List[float]] = {}
    for period in PERIODS:
        stats = model.measure(period, rounds, rng)
        samples[period] = list(stats.samples)
        boxes[period] = boxplot_stats(stats.samples)

    rows = []
    for period in PERIODS:
        box = boxes[period]
        rows.append(
            [
                f"{period:g} s",
                sci(box.whisker_low),
                sci(box.q1),
                sci(box.median),
                sci(box.q3),
                sci(box.whisker_high),
                str(len(box.outliers)),
            ]
        )
    result = ExperimentResult(
        experiment_id="E5",
        title=f"Figure 4: probing-threshold box plots ({rounds} rounds/period)",
        rendered=render_table(
            ("period", "lo whisker", "Q1", "median", "Q3", "hi whisker", "outliers"),
            rows,
            title=None,
        ),
        values={"boxes": boxes, "samples": samples},
    )
    medians = [boxes[p].median for p in PERIODS]
    result.values["median_monotone"] = all(
        a < b for a, b in zip(medians, medians[1:])
    )
    whisker_growth = boxes[PERIODS[-1]].whisker_high / boxes[PERIODS[0]].whisker_high
    result.values["upper_whisker_growth"] = whisker_growth
    result.values["extreme_outliers_over_1e_3"] = {
        period: sum(1 for x in boxes[period].outliers if x > 1e-3)
        for period in PERIODS
    }
    result.compare("upper-whisker growth 8s->300s", "slight (paper, visual)",
                   f"{whisker_growth:.2f}x")
    return result
