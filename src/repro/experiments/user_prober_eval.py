"""Experiment E8 — Section III-B1: user-level prober evaluation.

The paper's sanity check for the attack surface: even an *unprivileged*
multi-thread prober notices a secure-world entry within
``Tns_delay < 5.97e-3 s``, while a typical whole-kernel integrity check
needs ``8.04e-2 s`` — an order of magnitude longer.  The prober therefore
detects the check long before it completes.
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table, sci
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.user_prober import UserLevelProber
from repro.config import SatinConfig
from repro.experiments.common import ExperimentResult, build_stack

#: Paper's reported numbers.
PAPER_TNS_DELAY_BOUND = 5.97e-3
PAPER_KERNEL_CHECK_TIME = 8.04e-2


def run_user_prober_eval(
    seed: int = 2019,
    introspection_rounds: int = 10,
    mean_period: float = 4.0,
) -> ExperimentResult:
    """Measure user-level Tns_delay against whole-kernel introspection."""
    satin_config = SatinConfig(
        tgoal=mean_period,
        partition_mode="whole",
        random_core=True,
        random_deviation=True,
        enforce_area_bound=False,
    )
    stack = build_stack(seed=seed, satin_config=satin_config, with_satin=True)
    machine = stack.machine
    oracle = ProberAccelerationOracle(machine)
    prober = UserLevelProber(machine, stack.rich_os, oracle=oracle).install()

    satin = stack.satin
    assert satin is not None
    guard = 0
    while satin.round_count < introspection_rounds and guard < introspection_rounds * 50:
        machine.run_for(mean_period)
        guard += 1

    # Detection delay: first detection at/after each secure entry.
    entries = [
        r.time for r in machine.trace.records("monitor")
        if r.message == "secure entry begins"
    ]
    detection_times = sorted(d.time for d in prober.controller.detections)
    delays: List[float] = []
    for entry in entries:
        later = [d for d in detection_times if d >= entry]
        if later:
            delays.append(later[0] - entry)
    delay_summary = Summary.of(delays) if delays else None

    check_durations = [r.duration for r in satin.checker.results]
    check_summary = Summary.of(check_durations)
    # The paper's 8.04e-2 s figure matches an A57 scan of the 11.9 MB
    # kernel; break the measurement down per cluster for the comparison.
    big_indices = {c.index for c in machine.clusters[-1].cores}
    a57_durations = [
        r.duration for r in satin.checker.results if r.core_index in big_indices
    ]
    a57_summary = Summary.of(a57_durations) if a57_durations else None

    rows = [
        [
            "Tns_delay (user level)",
            sci(delay_summary.maximum) if delay_summary else "n/a",
            f"< {sci(PAPER_TNS_DELAY_BOUND)}",
        ],
        [
            "whole-kernel check time (all cores)",
            sci(check_summary.average),
            "(A57 reference below)",
        ],
        [
            "whole-kernel check time (A57)",
            sci(a57_summary.average) if a57_summary else "n/a",
            sci(PAPER_KERNEL_CHECK_TIME),
        ],
        [
            "prober beats the check",
            str(bool(delay_summary and
                     delay_summary.maximum < check_summary.minimum)),
            "True",
        ],
    ]
    result = ExperimentResult(
        experiment_id="E8",
        title="User-level prober vs whole-kernel introspection",
        rendered=render_table(("quantity", "measured", "paper"), rows),
        values={
            "delays": delays,
            "delay_summary": delay_summary,
            "check_summary": check_summary,
            "a57_check_summary": a57_summary,
            "rounds_detected": len(delays),
            "rounds_run": satin.round_count,
        },
    )
    if delay_summary:
        result.compare("max Tns_delay", PAPER_TNS_DELAY_BOUND, delay_summary.maximum)
    if a57_summary:
        result.compare(
            "whole-kernel check avg (A57)", PAPER_KERNEL_CHECK_TIME,
            a57_summary.average,
        )
    return result
