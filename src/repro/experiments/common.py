"""Shared experiment plumbing: stack builders and result records.

Every experiment driver builds a fresh, seeded machine so runs are
reproducible and independent.  ``Stack`` bundles the components an
experiment typically needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.rootkit import PersistentRootkit
from repro.attacks.evader import TZEvader
from repro.config import MachineConfig, SatinConfig, juno_r1_config
from repro.errors import ConfigurationError
from repro.core.satin import Satin
from repro.hw.platform import Machine, build_machine
from repro.kernel.os import RichOS, boot_rich_os


@dataclass
class Stack:
    """A booted machine with optional defence and attack components."""

    machine: Machine
    rich_os: RichOS
    satin: Optional[Satin] = None
    prober: Optional[KProberII] = None
    rootkit: Optional[PersistentRootkit] = None
    evader: Optional[TZEvader] = None
    oracle: Optional[ProberAccelerationOracle] = None

    def run(self, until: Optional[float] = None) -> None:
        self.machine.run(until=until)


def build_stack(
    seed: Optional[int] = None,
    machine_config: Optional[MachineConfig] = None,
    satin_config: Optional[SatinConfig] = None,
    with_satin: bool = False,
    with_evader: bool = False,
    accelerate: bool = True,
) -> Stack:
    """Boot a full stack: machine + rich OS [+ SATIN] [+ TZ-Evader].

    Seed precedence: with only ``seed``, a ``juno_r1_config(seed)`` machine
    is built (``seed=None`` means the default 2019); with only
    ``machine_config``, its embedded ``seed`` is authoritative; passing
    both is allowed only when they agree — a conflict raises
    :class:`~repro.errors.ConfigurationError` rather than silently
    re-seeding, because a silently re-seeded config would hash to a
    different campaign cache key than the one that was requested.

    SATIN's trusted boot runs *before* the rootkit installs, matching the
    paper's threat model (the boot-time kernel is benign).
    """
    if machine_config is None:
        config = juno_r1_config(2019 if seed is None else seed)
    elif seed is not None and seed != machine_config.seed:
        raise ConfigurationError(
            f"conflicting seeds: build_stack(seed={seed}) vs "
            f"machine_config.seed={machine_config.seed}; pass one, or make "
            f"them agree (e.g. machine_config.with_seed({seed}))"
        )
    else:
        config = machine_config
    machine = build_machine(config)
    rich_os = boot_rich_os(machine)
    stack = Stack(machine=machine, rich_os=rich_os)
    if with_satin:
        stack.satin = Satin(machine, rich_os, config=satin_config).install()
    if with_evader:
        stack.oracle = ProberAccelerationOracle(machine) if accelerate else None
        stack.prober = KProberII(machine, rich_os, oracle=stack.oracle).install()
        stack.rootkit = PersistentRootkit(machine, rich_os)
        stack.evader = TZEvader(
            machine, rich_os, stack.rootkit, stack.prober.controller
        ).start()
    return stack


@dataclass
class ExperimentResult:
    """Uniform result record: an id, rendered text, and raw values."""

    experiment_id: str
    title: str
    rendered: str
    values: Dict[str, Any] = field(default_factory=dict)
    comparisons: List[Dict[str, Any]] = field(default_factory=list)

    def compare(self, quantity: str, paper: Any, measured: Any) -> None:
        """Record one paper-vs-measured row."""
        self.comparisons.append(
            {"quantity": quantity, "paper": paper, "measured": measured}
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered
