"""Experiment E9 — Section VI-B1: SATIN defeating TZ-Evader end-to-end.

The paper's validation run: SATIN in the secure world, TZ-Evader (with a
probing threshold of 1.8e-3 s) in the normal world, the GETTID hijack
sitting in area 14.  Over 190 rounds (10 full kernel passes):

* KProber faithfully reports all 190 rounds — no false negatives or
  false positives;
* SATIN checks area 14 ten times and detects the hijack *every* time
  (the recovery always completes after the scanner has already read the
  malicious bytes);
* consecutive area-14 checks average ≈141 s apart, and one full kernel
  pass takes ≈152 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import render_table, sci
from repro.experiments.common import ExperimentResult, Stack, build_stack

#: Paper's run shape.
PAPER_ROUNDS = 190
PAPER_PASSES = 10
PAPER_AREA14_GAP = 141.0
PAPER_FULL_PASS = 152.0


@dataclass
class DetectionRunStats:
    """Everything Section VI-B1 reports, measured from one campaign."""

    rounds: int
    passes: int
    prober_detections: int
    prober_false_positives: int
    #: rounds the prober observed (a detection fired, or the round's core
    #: was already under continuous suspicion from an immediately
    #: preceding round on the same core — back-to-back rounds merge into
    #: one disappearance interval from the attacker's viewpoint).
    rounds_covered: int
    trace_area_index: int
    trace_area_checks: int
    trace_area_detections: int
    area_check_gaps: List[float]
    full_pass_time_estimate: float
    evader_hide_attempts: int
    evader_hides_completed: int

    @property
    def prober_faithful(self) -> bool:
        """Every round observed (no FN) and nothing spurious (no FP)."""
        return (
            self.rounds_covered == self.rounds
            and self.prober_false_positives == 0
        )

    @property
    def all_trace_checks_detected(self) -> bool:
        return self.trace_area_checks == self.trace_area_detections

    @property
    def avg_area_gap(self) -> Optional[float]:
        if not self.area_check_gaps:
            return None
        return sum(self.area_check_gaps) / len(self.area_check_gaps)


def run_detection_experiment(
    seed: int = 2019,
    passes: int = PAPER_PASSES,
    stack: Optional[Stack] = None,
) -> ExperimentResult:
    """Run the Section VI-B1 campaign (``passes`` full kernel passes)."""
    if stack is None:
        stack = build_stack(seed=seed, with_satin=True, with_evader=True)
    satin, prober, evader = stack.satin, stack.prober, stack.evader
    assert satin is not None and prober is not None and evader is not None
    assert stack.rootkit is not None

    target_rounds = passes * len(satin.areas)
    tp = satin.policy.tp
    guard = 0
    while satin.round_count < target_rounds and guard < target_rounds * 10:
        stack.machine.run_for(tp)
        guard += 1

    trace_offset = stack.rootkit.traces[0].offset
    trace_area = next(a for a in satin.areas if a.contains(trace_offset))
    trace_scans = [
        r for r in satin.checker.results[:target_rounds]
        if r.area_index == trace_area.index
    ]
    gaps = [
        b.start_time - a.start_time
        for a, b in zip(trace_scans, trace_scans[1:])
    ]
    rounds_run = min(satin.round_count, target_rounds)
    # Only count prober reports belonging to the first `rounds_run` rounds
    # (the simulation may have started round N+1 before stopping).
    counted_results = satin.checker.results[:rounds_run]
    cutoff = counted_results[-1].end_time + 5e-3 if counted_results else 0.0
    counted_detections = [
        d for d in prober.controller.detections if d.time <= cutoff
    ]

    # False positives: detections while no core was in the secure world.
    entries = [
        r.time for r in stack.machine.trace.records("monitor")
        if r.message == "secure entry begins"
    ]
    exits = [
        r.time for r in stack.machine.trace.records("monitor")
        if r.message == "normal world resumed"
    ]
    windows = list(zip(entries, exits))

    def within_secure_window(t: float) -> bool:
        # A detection belongs to a round if it falls between that round's
        # entry and (exit + a small clearance for the visibility delay).
        return any(start <= t <= end + 5e-3 for start, end in windows)

    false_positives = sum(
        1 for d in counted_detections if not within_secure_window(d.time)
    )

    # Per-core suspicion intervals: detection time .. matching clear time.
    suspicion: dict = {}
    for d in prober.controller.detections:
        suspicion.setdefault(d.suspect_core, []).append([d.time, float("inf")])
    for c in prober.controller.clears:
        intervals = suspicion.get(c.suspect_core, [])
        for interval in intervals:
            if interval[0] < c.time and interval[1] == float("inf"):
                interval[1] = c.time
                break

    def round_covered(result) -> bool:
        window_start = result.start_time
        window_end = result.start_time + 0.02
        for start, end in suspicion.get(result.core_index, []):
            if start <= window_end and window_start <= end:
                return True
        return False

    rounds_covered = sum(1 for r in counted_results if round_covered(r))

    stats = DetectionRunStats(
        rounds=rounds_run,
        passes=satin.full_passes,
        prober_detections=len(counted_detections),
        rounds_covered=rounds_covered,
        prober_false_positives=false_positives,
        trace_area_index=trace_area.index,
        trace_area_checks=len(trace_scans),
        trace_area_detections=sum(1 for s in trace_scans if not s.match),
        area_check_gaps=gaps,
        full_pass_time_estimate=satin.policy.full_pass_time,
        evader_hide_attempts=evader.hide_attempts,
        evader_hides_completed=evader.hides_completed,
    )

    scale = passes / PAPER_PASSES
    rows = [
        ["introspection rounds", str(int(PAPER_ROUNDS * scale)), str(stats.rounds)],
        ["kernel passes", str(passes), str(stats.passes)],
        ["rounds observed by KProber (FN=0)", str(int(PAPER_ROUNDS * scale)),
         f"{stats.rounds_covered} ({stats.prober_detections} detections)"],
        ["KProber false positives", "0", str(stats.prober_false_positives)],
        [f"area {stats.trace_area_index} checks", str(passes),
         str(stats.trace_area_checks)],
        ["hijack detections", str(passes), str(stats.trace_area_detections)],
        ["avg gap between area checks", f"{PAPER_AREA14_GAP:.0f} s",
         f"{stats.avg_area_gap:.0f} s" if stats.avg_area_gap else "n/a"],
        ["full kernel pass", f"~{PAPER_FULL_PASS:.0f} s",
         sci(stats.full_pass_time_estimate, 3)],
        ["evader recovery attempts", "all fail",
         f"{stats.evader_hide_attempts} tried, 0 races won"],
    ]
    result = ExperimentResult(
        experiment_id="E9",
        title="SATIN vs TZ-Evader detection campaign (Section VI-B1)",
        rendered=render_table(("quantity", "paper", "measured"), rows),
        values={"stats": stats},
    )
    result.compare("rounds", int(PAPER_ROUNDS * scale), stats.rounds)
    result.compare("trace-area detections", passes, stats.trace_area_detections)
    result.compare("avg area gap", PAPER_AREA14_GAP, stats.avg_area_gap)
    result.compare("full pass time", PAPER_FULL_PASS, stats.full_pass_time_estimate)
    return result
