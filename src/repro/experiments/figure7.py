"""Experiment E10 — Figure 7: SATIN's normal-world overhead.

Runs each UnixBench-like program with and without SATIN's self-activation
and reports the normalized performance degradation, for one copy (1-task)
and six simultaneous copies (6-task).  Paper: 0.711% mean (1-task) and
0.848% (6-task), with ``file copy 256B`` (3.556%) and ``pipe-based
context switching`` (3.912%) as the outliers — the programs whose state a
secure-world visit demolishes.

For the overhead study each core self-activates about every
``per_core_period`` seconds (default 8 s); the random wake-up deviation is
disabled so short runs see a stable interruption count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import pct, render_table
from repro.config import SatinConfig
from repro.experiments.common import ExperimentResult, build_stack
from repro.workloads.programs import UNIXBENCH_PROGRAMS, BenchmarkProgram
from repro.workloads.suite import BenchmarkRun

#: Paper's headline numbers.
PAPER_MEAN_1TASK = 0.00711
PAPER_MEAN_6TASK = 0.00848
PAPER_OUTLIERS = {
    "file_copy_256B": 0.03556,
    "pipe_context_switching": 0.03912,
}


@dataclass
class OverheadPoint:
    """One bar of Figure 7."""

    program: str
    task_count: int
    score_off: float
    score_on: float

    @property
    def degradation(self) -> float:
        if self.score_off == 0:
            return 0.0
        return max(1.0 - self.score_on / self.score_off, 0.0)


def _satin_overhead_config(core_count: int, per_core_period: float) -> SatinConfig:
    """SATIN configured so each core wakes about every per_core_period."""
    from repro.config import PAPER_AREA_COUNT

    tp = per_core_period / core_count
    return SatinConfig(
        tgoal=tp * PAPER_AREA_COUNT,
        random_deviation=False,
    )


def _run_one(
    program: BenchmarkProgram,
    task_count: int,
    duration: float,
    seed: int,
    with_satin: bool,
    per_core_period: float,
) -> float:
    satin_config = None
    if with_satin:
        satin_config = _satin_overhead_config(6, per_core_period)
    stack = build_stack(
        seed=seed, satin_config=satin_config, with_satin=with_satin
    )
    run = BenchmarkRun(
        stack.machine, stack.rich_os, program,
        task_count=task_count, duration=duration,
    )
    return run.run_to_completion().score


def run_figure7(
    seed: int = 2019,
    duration: float = 16.0,
    task_counts: Sequence[int] = (1, 6),
    programs: Optional[Sequence[BenchmarkProgram]] = None,
    per_core_period: float = 8.0,
) -> ExperimentResult:
    """Regenerate Figure 7's series."""
    chosen = list(programs) if programs is not None else list(UNIXBENCH_PROGRAMS)
    points: List[OverheadPoint] = []
    for task_count in task_counts:
        for program in chosen:
            score_off = _run_one(
                program, task_count, duration, seed, False, per_core_period
            )
            score_on = _run_one(
                program, task_count, duration, seed, True, per_core_period
            )
            points.append(
                OverheadPoint(program.name, task_count, score_off, score_on)
            )

    means: Dict[int, float] = {}
    for task_count in task_counts:
        degs = [p.degradation for p in points if p.task_count == task_count]
        means[task_count] = sum(degs) / len(degs) if degs else 0.0

    rows = []
    for point in points:
        paper = PAPER_OUTLIERS.get(point.program)
        rows.append(
            [
                point.program,
                f"{point.task_count}-task",
                f"{point.score_off:.1f}",
                f"{point.score_on:.1f}",
                pct(point.degradation),
                pct(paper) if paper is not None else "(small)",
            ]
        )
    for task_count, mean in means.items():
        paper_mean = PAPER_MEAN_1TASK if task_count == 1 else PAPER_MEAN_6TASK
        rows.append(
            ["MEAN", f"{task_count}-task", "", "", pct(mean), pct(paper_mean)]
        )

    result = ExperimentResult(
        experiment_id="E10",
        title=(
            f"Figure 7: UnixBench degradation with SATIN "
            f"(duration={duration:g}s, per-core period={per_core_period:g}s)"
        ),
        rendered=render_table(
            ("program", "tasks", "score off", "score on", "degradation", "paper"),
            rows,
        ),
        values={"points": points, "means": means},
    )
    for task_count, mean in means.items():
        paper_mean = PAPER_MEAN_1TASK if task_count == 1 else PAPER_MEAN_6TASK
        result.compare(f"mean degradation {task_count}-task", paper_mean, mean)
    outlier_points: Dict[Tuple[str, int], float] = {
        (p.program, p.task_count): p.degradation for p in points
    }
    for name, paper_value in PAPER_OUTLIERS.items():
        measured = outlier_points.get((name, task_counts[0]))
        if measured is not None:
            result.compare(f"{name} degradation", paper_value, measured)
    return result
