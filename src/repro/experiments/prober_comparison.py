"""Experiment A2 — the three probers head to head (Section III-B/III-C).

The paper presents three probing options with different privileges and
granularities.  This experiment runs each against the introspection style
it can actually see, and reports the measured detection capability:

* against a **whole-kernel** scan (~0.1 s core freeze) every prober works,
  with latency ordered KProber-II < user-level < KProber-I (the paper's
  accuracy ranking: Tsleep = 0.2 ms beats CFS scheduling beats the
  1/HZ tick grid);
* against **SATIN** (~5 ms rounds) only the sub-millisecond-threshold
  KProber-II still registers the entries — and even it loses the race.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table, sci
from repro.attacks.kprober1 import KProberI
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.user_prober import UserLevelProber
from repro.config import SatinConfig
from repro.core.satin import Satin
from repro.experiments.common import ExperimentResult, build_stack

PROBERS = ("kprober2", "user", "kprober1")


@dataclass
class ProberOutcome:
    """One prober's performance against one introspection style."""

    prober: str
    mechanism: str
    rounds: int
    detections: int
    latency: Optional[Summary]

    @property
    def detection_rate(self) -> float:
        if self.rounds == 0:
            return 0.0
        return min(self.detections / self.rounds, 1.0)


def _install_prober(name: str, machine, rich_os, oracle):
    if name == "kprober2":
        return KProberII(machine, rich_os, oracle=oracle).install()
    if name == "user":
        return UserLevelProber(machine, rich_os, oracle=oracle).install()
    if name == "kprober1":
        return KProberI(machine, rich_os).install()
    raise ValueError(f"unknown prober {name!r}")


def _run_campaign(
    prober_name: str, mechanism: str, seed: int, rounds_wanted: int
) -> ProberOutcome:
    stack = build_stack(seed=seed)
    machine, rich_os = stack.machine, stack.rich_os
    if mechanism == "whole-kernel":
        config = SatinConfig(
            tgoal=1.0, partition_mode="whole",
            random_deviation=False, enforce_area_bound=False,
        )
    else:
        config = SatinConfig(tgoal=19 * 0.5)
    satin = Satin(machine, rich_os, config=config).install()
    # KProber-I keeps cores busy itself; the oracle only helps the
    # sleep-loop probers.
    oracle = None if prober_name == "kprober1" else ProberAccelerationOracle(machine)
    prober = _install_prober(prober_name, machine, rich_os, oracle)
    guard = 0
    while satin.round_count < rounds_wanted and guard < rounds_wanted * 20:
        machine.run_for(satin.policy.tp)
        guard += 1

    entries = [
        r.time for r in machine.trace.records("monitor")
        if r.message == "secure entry begins"
    ][:rounds_wanted]
    detection_times = sorted(d.time for d in prober.controller.detections)
    latencies: List[float] = []
    horizon = 0.5 if mechanism == "whole-kernel" else 0.05
    for entry in entries:
        later = [d for d in detection_times if entry <= d <= entry + horizon]
        if later:
            latencies.append(later[0] - entry)
    return ProberOutcome(
        prober=prober_name,
        mechanism=mechanism,
        rounds=min(satin.round_count, rounds_wanted),
        detections=len(latencies),
        latency=Summary.of(latencies) if latencies else None,
    )


def run_prober_comparison(seed: int = 2019, rounds: int = 5) -> ExperimentResult:
    """Run every prober against both introspection styles."""
    outcomes: List[ProberOutcome] = []
    for mechanism in ("whole-kernel", "satin"):
        for prober_name in PROBERS:
            outcomes.append(_run_campaign(prober_name, mechanism, seed, rounds))

    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.prober,
                outcome.mechanism,
                str(outcome.rounds),
                str(outcome.detections),
                sci(outcome.latency.average) if outcome.latency else "-",
            ]
        )
    result = ExperimentResult(
        experiment_id="A2",
        title="Prober comparison: detection capability and latency",
        rendered=render_table(
            ("prober", "against", "rounds", "detected", "mean latency"),
            rows,
        ),
        values={"outcomes": {(o.prober, o.mechanism): o for o in outcomes}},
    )
    by_key = result.values["outcomes"]
    wk = "whole-kernel"
    if all((p, wk) in by_key for p in PROBERS):
        k2 = by_key[("kprober2", wk)].latency
        us = by_key[("user", wk)].latency
        k1 = by_key[("kprober1", wk)].latency
        if k2 and us and k1:
            result.values["latency_ordering_holds"] = (
                k2.average < us.average < k1.average
            )
    # KProber-I's tick-grid threshold (~10 ms at HZ=250) sits above most
    # SATIN round durations; only the longest A53 rounds graze it.
    satin_k1 = by_key[("kprober1", "satin")]
    result.values["kprober1_mostly_blind_to_satin"] = (
        satin_k1.detection_rate <= 0.5
    )
    return result
