"""Full reproduction report: run every experiment, render one document.

``generate_report`` regenerates every table and figure and assembles a
markdown document with the rendered tables and the paper-vs-measured
comparison rows — the programmatic source of EXPERIMENTS.md-style output,
also exposed through ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.ablations import run_ablations
from repro.experiments.common import ExperimentResult
from repro.experiments.detection import run_detection_experiment
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure7 import run_figure7
from repro.experiments.prober_comparison import run_prober_comparison
from repro.experiments.race_analysis import (
    run_escape_comparison,
    run_race_analysis,
)
from repro.experiments.recover_delay import run_recover_delay
from repro.experiments.switch_delay import run_switch_delay
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_single_core_ratio, run_table2
from repro.experiments.user_prober_eval import run_user_prober_eval
from repro.workloads.programs import UNIXBENCH_PROGRAMS


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, description, fast and full runners."""

    experiment_id: str
    title: str
    fast: Callable[[int], ExperimentResult]
    full: Callable[[int], ExperimentResult]


def _figure7_fast(seed: int) -> ExperimentResult:
    subset = [p for p in UNIXBENCH_PROGRAMS
              if p.name in ("dhrystone2", "syscall_overhead",
                            "file_copy_256B", "pipe_context_switching")]
    return run_figure7(seed=seed, duration=8.0, task_counts=(1,), programs=subset)


#: All experiments, in DESIGN.md index order.
EXPERIMENT_SPECS: List[ExperimentSpec] = [
    ExperimentSpec(
        "E1", "Table I: secure world introspection time",
        lambda seed: run_table1(seed=seed, repetitions=15),
        lambda seed: run_table1(seed=seed, repetitions=50),
    ),
    ExperimentSpec(
        "E2", "Ts_switch: world-switch delay",
        lambda seed: run_switch_delay(seed=seed, repetitions=25),
        lambda seed: run_switch_delay(seed=seed, repetitions=50),
    ),
    ExperimentSpec(
        "E3", "Tns_recover: trace recovery time",
        lambda seed: run_recover_delay(seed=seed, repetitions=25),
        lambda seed: run_recover_delay(seed=seed, repetitions=50),
    ),
    ExperimentSpec(
        "E4", "Table II: probing threshold vs period",
        lambda seed: run_table2(seed=seed, rounds=50),
        lambda seed: run_table2(seed=seed, rounds=50),
    ),
    ExperimentSpec(
        "E5", "Figure 4: threshold stability box plots",
        lambda seed: run_figure4(seed=seed, rounds=50),
        lambda seed: run_figure4(seed=seed, rounds=50),
    ),
    ExperimentSpec(
        "E6", "Single-core vs all-core probing ratio",
        lambda seed: run_single_core_ratio(seed=seed, rounds=200),
        lambda seed: run_single_core_ratio(seed=seed, rounds=400),
    ),
    ExperimentSpec(
        "E7", "Section IV-C race analysis",
        lambda seed: run_race_analysis(seed=seed, mc_trials=5_000),
        lambda seed: run_race_analysis(seed=seed, mc_trials=50_000),
    ),
    ExperimentSpec(
        "E8", "User-level prober vs whole-kernel check",
        lambda seed: run_user_prober_eval(seed=seed, introspection_rounds=5),
        lambda seed: run_user_prober_eval(seed=seed, introspection_rounds=10),
    ),
    ExperimentSpec(
        "E9", "Section VI-B1 detection campaign",
        lambda seed: run_detection_experiment(seed=seed, passes=2),
        lambda seed: run_detection_experiment(seed=seed, passes=10),
    ),
    ExperimentSpec(
        "E10", "Figure 7: UnixBench overhead",
        _figure7_fast,
        lambda seed: run_figure7(seed=seed, duration=16.0),
    ),
    ExperimentSpec(
        "E11", "Live escape-rate comparison",
        lambda seed: run_escape_comparison(seed=seed, rounds=5, mean_period=2.0),
        lambda seed: run_escape_comparison(seed=seed, rounds=12, mean_period=4.0),
    ),
    ExperimentSpec(
        "A1", "SATIN design-choice ablations",
        lambda seed: run_ablations(seed=seed, trace_scans_wanted=2),
        lambda seed: run_ablations(seed=seed, trace_scans_wanted=6),
    ),
    ExperimentSpec(
        "A2", "Prober comparison",
        lambda seed: run_prober_comparison(seed=seed, rounds=3),
        lambda seed: run_prober_comparison(seed=seed, rounds=8),
    ),
]


def spec_by_id(experiment_id: str) -> ExperimentSpec:
    for spec in EXPERIMENT_SPECS:
        if spec.experiment_id.lower() == experiment_id.lower():
            return spec
    known = ", ".join(s.experiment_id for s in EXPERIMENT_SPECS)
    raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})")


def run_experiment(experiment_id: str, seed: int = 2019, full: bool = False) -> ExperimentResult:
    """Run one experiment by id at the chosen scale."""
    spec = spec_by_id(experiment_id)
    runner = spec.full if full else spec.fast
    return runner(seed)


def _format_comparison(result: ExperimentResult) -> str:
    if not result.comparisons:
        return ""
    lines = ["", "paper vs measured:"]
    for row in result.comparisons:
        lines.append(
            f"  - {row['quantity']}: paper={row['paper']} "
            f"measured={row['measured']}"
        )
    return "\n".join(lines)


def _run_specs_parallel(
    chosen: List[ExperimentSpec],
    seed: int,
    full: bool,
    jobs: int,
    progress: "Callable[[str], None] | None",
) -> Dict[str, ExperimentResult]:
    """Fan the chosen experiments out across the campaign worker pool.

    Each experiment is one pool task (crash-isolated, retried once), and
    results are reassembled in spec order, so the report text is
    byte-identical to the serial path for the same seed.
    """
    from repro.campaign.pool import run_tasks
    from repro.campaign.runner import TRIAL_FN

    tasks = [
        {
            "key": spec.experiment_id,
            "experiment_id": spec.experiment_id,
            "seed": seed,
            "full": full,
        }
        for spec in chosen
    ]

    def on_final(task, outcome) -> None:
        if progress is not None:
            state = "done" if outcome.ok else outcome.status
            progress(f"{task['experiment_id']}: {state}")

    outcomes = run_tasks(tasks, TRIAL_FN, jobs=jobs, on_final=on_final)
    results: Dict[str, ExperimentResult] = {}
    for spec in chosen:
        outcome = outcomes[spec.experiment_id]
        if not outcome.ok:
            raise RuntimeError(
                f"experiment {spec.experiment_id} failed in the worker pool:\n"
                f"{outcome.error}"
            )
        payload = outcome.payload
        results[spec.experiment_id] = ExperimentResult(
            experiment_id=spec.experiment_id,
            title=spec.title,
            rendered=payload["rendered"],
            values=payload["values"],
            comparisons=payload["comparisons"],
        )
    return results


def generate_report(
    seed: int = 2019,
    full: bool = False,
    only: "List[str] | None" = None,
    progress: "Callable[[str], None] | None" = None,
    jobs: "int | None" = None,
) -> str:
    """Run the experiment suite and return the assembled report text.

    ``jobs=None`` runs everything serially in-process (the historical
    behaviour); any integer routes the experiments through the campaign
    worker pool (``jobs`` workers; 0 = the pool's inline serial mode).
    Both paths render identical text for the same seed.
    """
    chosen = (
        [spec_by_id(eid) for eid in only] if only else list(EXPERIMENT_SPECS)
    )
    parallel: Dict[str, ExperimentResult] = {}
    if jobs is not None:
        if progress is not None:
            progress(
                f"running {len(chosen)} experiments across "
                f"{jobs or 1} worker(s) ..."
            )
        parallel = _run_specs_parallel(chosen, seed, full, jobs, progress)
    scale = "full (paper-scale)" if full else "fast"
    sections: List[str] = [
        "# SATIN reproduction report",
        "",
        f"seed={seed}, scale={scale}, {len(chosen)} experiments.",
        "",
    ]
    for spec in chosen:
        if spec.experiment_id in parallel:
            result = parallel[spec.experiment_id]
        else:
            if progress is not None:
                progress(f"running {spec.experiment_id}: {spec.title} ...")
            result = (spec.full if full else spec.fast)(seed)
        sections.append(f"## {spec.experiment_id} — {spec.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.rendered)
        sections.append("```")
        comparison = _format_comparison(result)
        if comparison:
            sections.append(comparison)
        sections.append("")
    return "\n".join(sections)
