"""Experiment E2 — Section IV-B1: the world-switch delay ``Ts_switch``.

Executes 50 secure-world entries on an A53 core and an A57 core and times
the gap between the secure interrupt request and the first secure payload
instruction.  The paper reports the range 2.38e-6 .. 3.60e-6 s and notes
the two core types behave similarly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table, sci
from repro.experiments.common import ExperimentResult, build_stack
from repro.hw.core import Core
from repro.sim.process import cpu

#: Paper's measured bounds.
PAPER_SWITCH_MIN = 2.38e-6
PAPER_SWITCH_MAX = 3.60e-6


def run_switch_delay(seed: int = 2019, repetitions: int = 50) -> ExperimentResult:
    """Regenerate the Ts_switch measurement."""
    stack = build_stack(seed=seed)
    machine = stack.machine
    summaries: Dict[str, Summary] = {}
    for cluster, core in (
        ("A53", machine.little_core()),
        ("A57", machine.big_core()),
    ):
        samples: List[float] = []
        for _ in range(repetitions):
            requested_at = machine.sim.now
            record: Dict[str, float] = {}

            def payload(entered_core: Core, _record=record):
                _record["entered"] = machine.sim.now
                yield cpu(1e-7)

            machine.monitor.request_secure_entry(core, payload)
            machine.sim.run(max_events=100)
            samples.append(record["entered"] - requested_at)
        summaries[cluster] = Summary.of(samples)

    rows = [
        [
            cluster,
            sci(s.average),
            sci(s.maximum),
            sci(s.minimum),
            f"{sci(PAPER_SWITCH_MIN)} .. {sci(PAPER_SWITCH_MAX)}",
        ]
        for cluster, s in summaries.items()
    ]
    result = ExperimentResult(
        experiment_id="E2",
        title="Ts_switch: world-switch delay (50 switches per core type)",
        rendered=render_table(
            ("core", "avg", "max", "min", "paper range"), rows, title=None
        ),
        values={"summaries": summaries},
    )
    for cluster, s in summaries.items():
        result.compare(f"{cluster} Ts_switch range",
                       (PAPER_SWITCH_MIN, PAPER_SWITCH_MAX),
                       (s.minimum, s.maximum))
    result.values["within_paper_range"] = all(
        PAPER_SWITCH_MIN <= s.minimum and s.maximum <= PAPER_SWITCH_MAX
        for s in summaries.values()
    )
    a53, a57 = summaries["A53"], summaries["A57"]
    result.values["clusters_similar"] = (
        abs(a53.average - a57.average) < 0.5 * max(a53.average, a57.average)
    )
    return result
