"""Experiment A1 — ablations over SATIN's design choices (Section V).

Each variant removes one SATIN ingredient and faces the strongest matching
attacker; the metric is the detection rate over scans of the trace area
plus the attack's utility (captured syscalls stay possible?).

* ``satin``          — the full mechanism (reference).
* ``fixed-core``     — random core off: one core does all rounds.  The
  normal world probes a *known* core with ~4x better accuracy.
* ``fixed-period``   — random deviation off: a PredictiveEvader learns the
  schedule and hides ahead of time instead of racing.
* ``whole-kernel``   — no divide-and-conquer: the Section IV-C race is
  lost for ~90% of the kernel.
* ``packed-areas``   — sections greedily merged up to the safety bound:
  fewer, larger rounds; still safe, but each round steals more core time.
* ``preemptible``    — NS-interrupt blocking off (Section V-B): an
  interrupt-storm attacker stretches rounds beyond the race bound,
  breaking the SATIN guarantee even when this particular trace is still
  caught (it sits near its area's start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import pct, render_table
from repro.attacks.evader import TZEvader
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.predictor import PredictiveEvader
from repro.attacks.rootkit import PersistentRootkit
from repro.config import SatinConfig
from repro.core.satin import Satin
from repro.experiments.common import ExperimentResult, build_stack


@dataclass
class AblationOutcome:
    """One variant's campaign result."""

    variant: str
    trace_scans: int
    detections: int
    hide_attempts: int
    proactive_hides: int
    rounds: int
    #: longest single round duration vs the race-model safety window:
    #: rounds longer than the window void the SATIN guarantee.
    max_round_duration: float = 0.0
    safety_window: float = 0.0

    @property
    def detection_rate(self) -> float:
        if self.trace_scans == 0:
            return 0.0
        return self.detections / self.trace_scans

    @property
    def guarantee_factor(self) -> float:
        """max round duration / attacker reaction window.

        <= 1 means every round beat the Eq. 2 window outright.  Values
        slightly above 1 occur for the largest areas scanned by A53 cores
        — the paper derives its bound from the A57 per-byte speed, a
        big.LITTLE oversight this reproduction surfaces (EXPERIMENTS.md).
        Values far above 1 mean the guarantee is genuinely gone.
        """
        if self.safety_window <= 0:
            return float("inf")
        return self.max_round_duration / self.safety_window

    @property
    def guarantee_holds(self) -> bool:
        """Within the window up to the documented A53 slack."""
        return self.guarantee_factor <= 1.3


def _variant_config(variant: str, tgoal: float) -> SatinConfig:
    if variant == "satin":
        return SatinConfig(tgoal=tgoal)
    if variant == "fixed-core":
        return SatinConfig(tgoal=tgoal, random_core=False)
    if variant == "fixed-period":
        return SatinConfig(tgoal=tgoal, random_deviation=False)
    if variant == "whole-kernel":
        return SatinConfig(
            tgoal=tgoal / 19, partition_mode="whole", enforce_area_bound=False
        )
    if variant == "packed-areas":
        return SatinConfig(tgoal=tgoal, partition_mode="packed",
                           max_area_size=1_218_351)
    if variant == "preemptible":
        return SatinConfig(tgoal=tgoal, block_ns_interrupts=False)
    raise ValueError(f"unknown variant {variant!r}")


def run_ablation_variant(
    variant: str,
    seed: int = 2019,
    trace_scans_wanted: int = 6,
    tgoal: float = 19.0 * 2.0,
) -> AblationOutcome:
    """Run one variant against its strongest matching evader."""
    stack = build_stack(seed=seed)
    machine, rich_os = stack.machine, stack.rich_os
    satin = Satin(machine, rich_os, config=_variant_config(variant, tgoal)).install()
    oracle = ProberAccelerationOracle(machine)
    # Against a fixed core the attacker probes just that core (E6: ~4x
    # sharper threshold).
    if variant == "fixed-core":
        threshold = machine.config.prober.detect_threshold / 4.0
        prober = KProberII(
            machine, rich_os, oracle=oracle, threshold=threshold
        ).install()
    else:
        prober = KProberII(machine, rich_os, oracle=oracle).install()
    rootkit = PersistentRootkit(machine, rich_os)
    if variant == "preemptible":
        from repro.attacks.irq_storm import IrqStormAttacker

        IrqStormAttacker(machine, interval=1e-5).start()
    if variant == "fixed-period":
        evader: TZEvader = PredictiveEvader(
            machine, rich_os, rootkit, prober.controller
        ).start()
    else:
        evader = TZEvader(machine, rich_os, rootkit, prober.controller).start()

    trace_offset = rootkit.traces[0].offset
    trace_area = next(a for a in satin.areas if a.contains(trace_offset))
    guard = 0
    while (
        len(satin.checker.results_for_area(trace_area.index)) < trace_scans_wanted
        and guard < trace_scans_wanted * 100
    ):
        machine.run_for(satin.policy.tp)
        guard += 1

    scans = satin.checker.results_for_area(trace_area.index)[:trace_scans_wanted]
    durations = [r.duration for r in satin.checker.results]
    return AblationOutcome(
        variant=variant,
        trace_scans=len(scans),
        detections=sum(1 for s in scans if not s.match),
        hide_attempts=evader.hide_attempts,
        proactive_hides=getattr(evader, "proactive_hides", 0),
        rounds=satin.round_count,
        max_round_duration=max(durations) if durations else 0.0,
        safety_window=satin.race.tns_delay + satin.race.tns_recover,
    )


ABLATION_VARIANTS = (
    "satin", "fixed-core", "fixed-period", "whole-kernel", "packed-areas",
    "preemptible",
)


def run_ablations(
    seed: int = 2019,
    trace_scans_wanted: int = 6,
    variants: Optional[List[str]] = None,
) -> ExperimentResult:
    """Run the full ablation sweep."""
    chosen = variants if variants is not None else list(ABLATION_VARIANTS)
    outcomes: Dict[str, AblationOutcome] = {
        v: run_ablation_variant(v, seed=seed, trace_scans_wanted=trace_scans_wanted)
        for v in chosen
    }
    rows = []
    for variant, outcome in outcomes.items():
        rows.append(
            [
                variant,
                str(outcome.trace_scans),
                str(outcome.detections),
                pct(outcome.detection_rate, 1),
                str(outcome.hide_attempts),
                str(outcome.proactive_hides),
                f"{outcome.guarantee_factor:.2f}x"
                + ("" if outcome.guarantee_holds else " VIOLATED"),
            ]
        )
    result = ExperimentResult(
        experiment_id="A1",
        title="SATIN design-choice ablations vs the strongest matching evader",
        rendered=render_table(
            ("variant", "trace scans", "detections", "detection rate",
             "hides", "proactive", "round/bound"),
            rows,
        ),
        values={"outcomes": outcomes},
    )
    if "satin" in outcomes:
        result.compare("satin detection rate", 1.0, outcomes["satin"].detection_rate)
    if "whole-kernel" in outcomes:
        result.compare(
            "whole-kernel detection rate", 0.10,
            outcomes["whole-kernel"].detection_rate,
        )
    return result
