"""Deterministic fault injection and the chaos sweep harness.

The subsystem has three layers:

* :mod:`repro.faults.plan` — declarative fault plans: which fault
  classes strike, at what rate, with what parameters;
* :mod:`repro.faults.injector` — the seed-driven injector that wires a
  plan into a live machine/SATIN stack through dedicated hardware hooks
  (its RNG streams are derived from ``(config_digest, fault_seed)``, so
  baseline draws are never perturbed);
* :mod:`repro.faults.chaos` — the campaign-pool sweep behind
  ``python -m repro chaos`` and its survival/detection matrix.
"""

from repro.faults.chaos import ChaosResult, ChaosSpec, run_chaos, run_chaos_trial
from repro.faults.injector import FaultInjector, Injection
from repro.faults.plan import (
    FAULT_CLASSES,
    FaultPlan,
    FaultSpec,
    plan_by_name,
    plan_names,
)

__all__ = [
    "FAULT_CLASSES",
    "ChaosResult",
    "ChaosSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "Injection",
    "plan_by_name",
    "plan_names",
    "run_chaos",
    "run_chaos_trial",
]
