"""Declarative fault plans.

A :class:`FaultPlan` says *what* can go wrong and *how often*; it carries no
randomness of its own.  The injector combines a plan with a fault seed to
produce the concrete, fully deterministic injection schedule, so the same
``(plan, config_digest, fault_seed)`` triple always yields bit-identical
timelines.

Fault classes model the platform failures SATIN's hardened mode is designed
to survive (ISSUE 5):

``timer_drop``
    A secure timer expiry is silently lost (flaky timer IP / missed compare).
``timer_late``
    A secure timer expiry is delivered late by a bounded extra delay.
``smc_spike``
    One world switch costs extra latency (SMC path contention).
``bitflip``
    A transient single-bit flip in a kernel image page, reverted after a
    hold time (DRAM disturbance that ECC scrubs later).
``wakeup_corrupt``
    A wake-up-time-queue slot in secure SRAM is overwritten with garbage or
    a stale value from generations ago.
``core_stall``
    A core stops making forward progress for a window (power glitch /
    firmware hog); its timer expiries are deferred until the window ends.
``snapshot_corrupt``
    The snapshot buffer copy of a scanned chunk is corrupted in flight
    (secure SRAM disturbance on the copy path, not on the kernel itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, Tuple

from repro.errors import FaultPlanError

#: Every fault class the injector understands, in canonical order.
FAULT_CLASSES: Tuple[str, ...] = (
    "timer_drop",
    "timer_late",
    "smc_spike",
    "bitflip",
    "wakeup_corrupt",
    "core_stall",
    "snapshot_corrupt",
)

#: Hard cap on scheduled injections per spec — a mis-typed rate must not
#: turn a smoke run into a melt-down.
MAX_INJECTIONS_PER_SPEC = 256


@dataclass(frozen=True)
class FaultSpec:
    """One fault class with its arrival rate and parameters.

    ``rate`` is a Poisson arrival rate in faults per simulated second;
    ``params`` is a sorted tuple of ``(key, value)`` pairs (kept hashable so
    plans can be frozen and digested).
    """

    fault_class: str
    rate: float
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.fault_class not in FAULT_CLASSES:
            raise FaultPlanError(
                f"unknown fault class {self.fault_class!r}; "
                f"known: {', '.join(FAULT_CLASSES)}"
            )
        if not self.rate > 0.0:
            raise FaultPlanError(
                f"fault class {self.fault_class!r} needs a positive rate, "
                f"got {self.rate!r}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, key: str, default: float) -> float:
        for name, value in self.params:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class FaultPlan:
    """A named set of fault specs active for ``duration`` simulated seconds."""

    name: str
    specs: Tuple[FaultSpec, ...]
    duration: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.specs:
            raise FaultPlanError(f"fault plan {self.name!r} has no specs")
        if not self.duration > 0.0:
            raise FaultPlanError(
                f"fault plan {self.name!r} needs a positive duration"
            )
        seen = set()
        for spec in self.specs:
            if spec.fault_class in seen:
                raise FaultPlanError(
                    f"fault plan {self.name!r} lists {spec.fault_class!r} twice"
                )
            seen.add(spec.fault_class)

    @property
    def fault_classes(self) -> Tuple[str, ...]:
        return tuple(s.fault_class for s in self.specs)

    def spec_for(self, fault_class: str) -> FaultSpec:
        for spec in self.specs:
            if spec.fault_class == fault_class:
                return spec
        raise FaultPlanError(
            f"fault plan {self.name!r} has no {fault_class!r} spec"
        )

    @property
    def needs_snapshot(self) -> bool:
        """True if the plan only makes sense with the snapshot scan path."""
        return any(s.fault_class == "snapshot_corrupt" for s in self.specs)

    def digest(self) -> str:
        """Stable short hash naming this exact plan (cache/campaign keys)."""
        h = sha256()
        h.update(f"{self.name}|{self.duration!r}".encode("utf-8"))
        for spec in self.specs:
            h.update(f"|{spec.fault_class}|{spec.rate!r}".encode("utf-8"))
            for key, value in spec.params:
                h.update(f"|{key}={value!r}".encode("utf-8"))
        return h.hexdigest()[:16]

    def describe(self) -> str:
        lines = [f"fault plan {self.name!r} ({self.duration:g}s horizon)"]
        for spec in self.specs:
            expected = spec.rate * self.duration
            params = ", ".join(f"{k}={v:g}" for k, v in spec.params)
            suffix = f" [{params}]" if params else ""
            lines.append(
                f"  {spec.fault_class:<17} rate={spec.rate:g}/s "
                f"(~{expected:.1f} expected){suffix}"
            )
        return "\n".join(lines)


def _plan(name: str, duration: float, description: str, *specs: FaultSpec) -> FaultPlan:
    return FaultPlan(name=name, specs=tuple(specs), duration=duration,
                     description=description)


#: Built-in plans.  ``smoke`` covers every fault class with enough expected
#: arrivals (rate * duration >= 2 per class) to make a zero-missed assertion
#: meaningful while staying CI-fast.
_PLANS: Dict[str, FaultPlan] = {}


def _register(plan: FaultPlan) -> FaultPlan:
    _PLANS[plan.name] = plan
    return plan


SMOKE_PLAN = _register(_plan(
    "smoke", 80.0,
    "every fault class at low rate; the CI chaos gate",
    FaultSpec("timer_drop", 0.05),
    FaultSpec("timer_late", 0.05, (("min_delay", 0.05), ("max_delay", 1.0))),
    FaultSpec("smc_spike", 0.15, (("min_extra", 2e-5), ("max_extra", 2e-4))),
    FaultSpec("bitflip", 0.04, (("revert_after", 6.0),)),
    FaultSpec("wakeup_corrupt", 0.05, (("stale_fraction", 0.5),)),
    FaultSpec("core_stall", 0.03, (("min_window", 0.5), ("max_window", 2.0))),
    FaultSpec("snapshot_corrupt", 0.05),
))

_register(_plan(
    "timers", 120.0,
    "liveness pressure: dropped/late expiries and stalled cores",
    FaultSpec("timer_drop", 0.08),
    FaultSpec("timer_late", 0.08, (("min_delay", 0.1), ("max_delay", 2.0))),
    FaultSpec("core_stall", 0.04, (("min_window", 1.0), ("max_window", 4.0))),
))

_register(_plan(
    "memory", 120.0,
    "integrity pressure: transient kernel bit-flips and snapshot corruption",
    FaultSpec("bitflip", 0.06, (("revert_after", 8.0),)),
    FaultSpec("snapshot_corrupt", 0.08),
))

_register(_plan(
    "queue", 120.0,
    "secure-SRAM pressure on the wake-up time queue",
    FaultSpec("wakeup_corrupt", 0.1, (("stale_fraction", 0.5),)),
))

_register(_plan(
    "full", 160.0,
    "every fault class at elevated rates; the soak configuration",
    FaultSpec("timer_drop", 0.1),
    FaultSpec("timer_late", 0.1, (("min_delay", 0.05), ("max_delay", 2.0))),
    FaultSpec("smc_spike", 0.3, (("min_extra", 2e-5), ("max_extra", 5e-4))),
    FaultSpec("bitflip", 0.08, (("revert_after", 8.0),)),
    FaultSpec("wakeup_corrupt", 0.1, (("stale_fraction", 0.5),)),
    FaultSpec("core_stall", 0.05, (("min_window", 0.5), ("max_window", 3.0))),
    FaultSpec("snapshot_corrupt", 0.1),
))


def plan_names() -> Tuple[str, ...]:
    return tuple(sorted(_PLANS))


def plan_by_name(name: str) -> FaultPlan:
    try:
        return _PLANS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; available: {', '.join(plan_names())}"
        ) from None
