"""The deterministic fault injector.

Combines a :class:`~repro.faults.plan.FaultPlan` with a fault seed into a
concrete injection schedule and wires it into a live machine/SATIN stack
through the dedicated hardware hooks (timer fault filter, monitor switch
fault, snapshot fault hook, wake-up queue slots, core stall windows,
kernel-image bit flips).

Determinism contract: every draw comes from a private
:class:`~repro.sim.rng.RngRegistry` seeded with
``derive_seed(fault_seed, f"faults:{config_digest}")`` — the machine's own
streams are never touched, so enabling injection perturbs the baseline
*only* through the faults themselves, and the same
``(config_digest, fault_seed)`` pair replays bit-identically.  All
class-specific parameters are pre-drawn at install time in schedule order,
so no simulation interleaving can reorder RNG consumption.

After the run, :meth:`FaultInjector.classify` folds the injection log and
the system's observable responses (watchdog missed-wake log, alarm stream,
scan results, queue validation events) into the survival matrix: per fault
class, how many injections were *detected*, how many the engine *degraded*
through while staying correct, and how many were *missed*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.areas import area_containing
from repro.errors import FaultInjectionError
from repro.faults.plan import MAX_INJECTIONS_PER_SPEC, FaultPlan, FaultSpec
from repro.hw.world import World
from repro.sim.rng import RngRegistry, derive_seed

#: Slack added to float comparisons between scheduled and observed times.
_TIME_TOL = 1e-6

#: Fixed-point roundtrip tolerance for wake-up queue slot values (the queue
#: stores microsecond-resolution 64-bit fixed point).
_SLOT_TOL = 1e-5

#: Outcome labels of the survival matrix.
OUTCOMES = ("detected", "degraded", "missed")


@dataclass
class Injection:
    """One scheduled fault occurrence and its eventual classification."""

    index: int
    fault_class: str
    time: float
    core_index: int = -1
    details: Dict[str, Any] = field(default_factory=dict)
    #: the fault actually took effect (a timer fired into a drop, a spike
    #: landed on a switch, ...); unconsumed faults were absorbed unseen.
    consumed: bool = False
    consumed_at: Optional[float] = None
    outcome: Optional[str] = None
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "class": self.fault_class,
            "time": self.time,
            "core": self.core_index,
            "consumed": self.consumed,
            "consumed_at": self.consumed_at,
            "outcome": self.outcome,
            "note": self.note,
            "details": {
                k: v for k, v in self.details.items() if not k.startswith("_")
            },
        }


class FaultInjector:
    """Injects one plan's faults into a machine and audits the response."""

    def __init__(
        self,
        machine,
        satin,
        plan: FaultPlan,
        fault_seed: int,
        horizon: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.satin = satin
        self.plan = plan
        self.fault_seed = fault_seed
        self.horizon = horizon if horizon is not None else plan.duration
        if not self.horizon > 0.0:
            raise FaultInjectionError("injection horizon must be positive")
        self.rng = RngRegistry(
            derive_seed(fault_seed, f"faults:{machine.config.config_digest()}")
        )
        self.injections: List[Injection] = []
        self.installed = False
        #: injections take effect only while active; deactivate() stops the
        #: world at the horizon so classification windows stay bounded.
        self.active = False
        self.start_time = 0.0
        # --- pending one-shot decisions, armed by schedule events ---------
        self._drop_pending: Dict[int, List[Injection]] = {}
        self._delay_pending: Dict[int, List[Tuple[float, Injection]]] = {}
        self._spike_pending: List[Tuple[float, Injection]] = []
        self._snapshot_pending: List[Injection] = []
        self._stall_windows: Dict[int, List[Tuple[float, float, Injection]]] = {}
        self._has_bitflips = any(
            s.fault_class == "bitflip" for s in plan.specs
        )
        self._bitflip_guard_until = float("-inf")
        # --- statistics ---------------------------------------------------
        self.timer_drops = 0
        self.timer_delays = 0
        self.stall_deferrals = 0
        self.smc_spikes = 0
        self.bitflips = 0
        self.bitflip_reverts = 0
        self.wakeup_corruptions = 0
        self.core_stalls = 0
        self.snapshot_corruptions = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Draw the full injection schedule and wire every hook."""
        if self.installed:
            raise FaultInjectionError("fault injector is already installed")
        if self.machine.fault_injector is not None:
            raise FaultInjectionError(
                "machine already has a fault injector attached"
            )
        sim = self.machine.sim
        self.start_time = sim.now
        end = self.start_time + self.horizon
        index = 0
        for spec in self.plan.specs:
            stream = self.rng.stream(f"faults.{spec.fault_class}")
            t = self.start_time
            scheduled = 0
            while scheduled < MAX_INJECTIONS_PER_SPEC:
                t += stream.expovariate(spec.rate)
                if t >= end:
                    break
                injection = Injection(index=index, fault_class=spec.fault_class,
                                      time=t)
                self._draw_details(injection, spec, stream)
                self.injections.append(injection)
                sim.schedule_at(t, self._inject, injection)
                index += 1
                scheduled += 1
        if self._has_bitflips and self.injections:
            revert_after = self.plan.spec_for("bitflip").param("revert_after", 6.0)
            flips = [i for i in self.injections if i.fault_class == "bitflip"]
            if flips:
                self._bitflip_guard_until = (
                    max(i.time for i in flips) + revert_after + 1e-9
                )
        # --- hooks --------------------------------------------------------
        classes = set(self.plan.fault_classes)
        for core in self.machine.cores:
            if core.secure_timer.fault_filter is not None:
                raise FaultInjectionError(
                    f"core {core.index} secure timer already has a fault filter"
                )
            core.secure_timer.fault_filter = self._timer_filter
        if "smc_spike" in classes:
            self.machine.monitor.switch_fault = self._switch_fault
        if "snapshot_corrupt" in classes:
            self.satin.snapshot_buffer.fault_hook = self._snapshot_hook
        if "wakeup_corrupt" in classes:
            self.satin.wakeup_queue.invalid_listeners.append(self._on_invalid_entry)
            self.satin.activation.arm_listeners.append(self._on_arm)
        self.machine.attach_fault_injector(self)
        metrics = self.machine.metrics
        self._m_injected = metrics.counter("faults.injected")
        self._m_by_class = {
            cls: metrics.counter(f"faults.injected.{cls}") for cls in classes
        }
        self.installed = True
        self.active = True
        self.machine.trace.emit(
            sim.now, "faults", "injector installed",
            plan=self.plan.name, seed=self.fault_seed,
            scheduled=len(self.injections), horizon=self.horizon,
        )
        return self

    def _draw_details(self, injection: Injection, spec: FaultSpec, stream) -> None:
        """Pre-draw all class-specific parameters (schedule-order RNG)."""
        cls = injection.fault_class
        d = injection.details
        ncores = len(self.machine.cores)
        if cls == "timer_drop":
            injection.core_index = stream.randrange(ncores)
        elif cls == "timer_late":
            injection.core_index = stream.randrange(ncores)
            d["delay"] = stream.uniform(
                spec.param("min_delay", 0.05), spec.param("max_delay", 1.0)
            )
        elif cls == "smc_spike":
            d["extra"] = stream.uniform(
                spec.param("min_extra", 2e-5), spec.param("max_extra", 2e-4)
            )
        elif cls == "bitflip":
            d["offset"] = stream.randrange(self.satin.rich_os.image.size)
            d["bit"] = stream.randrange(8)
            d["revert_after"] = spec.param("revert_after", 6.0)
        elif cls == "wakeup_corrupt":
            d["slot"] = stream.randrange(self.satin.wakeup_queue.slot_count)
            d["stale"] = stream.random() < spec.param("stale_fraction", 0.5)
            d["garbage"] = stream.uniform(1e9, 9e9)
        elif cls == "core_stall":
            injection.core_index = stream.randrange(ncores)
            d["window"] = stream.uniform(
                spec.param("min_window", 0.5), spec.param("max_window", 2.0)
            )
        elif cls == "snapshot_corrupt":
            d["pos"] = stream.randrange(4096)
            d["bit"] = stream.randrange(8)

    # ------------------------------------------------------------------
    # Injection events
    # ------------------------------------------------------------------
    def _inject(self, injection: Injection) -> None:
        if not self.active:
            injection.note = "injector inactive at arrival"
            return
        now = self.machine.sim.now
        self._m_injected.inc()
        self._m_by_class[injection.fault_class].inc()
        self.machine.trace.emit(
            now, "faults", "inject",
            kind=injection.fault_class, core=injection.core_index,
        )
        cls = injection.fault_class
        if cls == "timer_drop":
            self._drop_pending.setdefault(injection.core_index, []).append(injection)
        elif cls == "timer_late":
            self._delay_pending.setdefault(injection.core_index, []).append(
                (injection.details["delay"], injection)
            )
        elif cls == "smc_spike":
            self._spike_pending.append((injection.details["extra"], injection))
        elif cls == "bitflip":
            self._inject_bitflip(injection)
        elif cls == "wakeup_corrupt":
            self._inject_wakeup_corrupt(injection)
        elif cls == "core_stall":
            self._inject_core_stall(injection)
        elif cls == "snapshot_corrupt":
            self._snapshot_pending.append(injection)

    def _inject_bitflip(self, injection: Injection) -> None:
        image = self.satin.rich_os.image
        now = self.machine.sim.now
        d = injection.details
        offset, bit = d["offset"], d["bit"]
        original = image.read(offset, 1, World.SECURE)[0]
        flipped = original ^ (1 << bit)
        image.write(offset, bytes([flipped]), World.NORMAL)
        d["original"] = original
        d["area_index"] = area_containing(self.satin.areas, offset).index
        d["revert_at"] = now + d["revert_after"]
        injection.consumed = True
        injection.consumed_at = now
        self.bitflips += 1
        self.machine.metrics.counter("faults.bitflips").inc()
        self.machine.sim.schedule_at(
            d["revert_at"], self._revert_bitflip, injection
        )

    def _revert_bitflip(self, injection: Injection) -> None:
        image = self.satin.rich_os.image
        d = injection.details
        current = image.read(d["offset"], 1, World.SECURE)[0]
        expected = d["original"] ^ (1 << d["bit"])
        if current == expected:
            image.write(d["offset"], bytes([d["original"]]), World.NORMAL)
            d["reverted"] = True
            self.bitflip_reverts += 1
            self.machine.metrics.counter("faults.bitflip_reverts").inc()
        else:
            # Someone else wrote the byte meanwhile (attacker or another
            # flip); restoring would destroy their state, so leave it.
            d["reverted"] = False
            d["revert_skipped"] = True

    def _inject_wakeup_corrupt(self, injection: Injection) -> None:
        queue = self.satin.wakeup_queue
        d = injection.details
        if d["stale"]:
            value = queue._last_refresh_base - 2.0 * queue.tp
            if value < 0.0:
                # Too early in the run for a stale generation to exist;
                # fall through to the garbage pattern.
                value = d["garbage"]
                d["stale"] = False
        else:
            value = d["garbage"]
        queue._write_slot(d["slot"], value)
        d["value"] = value
        d["refresh_generation"] = queue.refresh_count
        injection.consumed = True
        injection.consumed_at = self.machine.sim.now
        self.wakeup_corruptions += 1
        self.machine.metrics.counter("faults.wakeup_corruptions").inc()

    def _inject_core_stall(self, injection: Injection) -> None:
        core = self.machine.cores[injection.core_index]
        now = self.machine.sim.now
        window = injection.details["window"]
        end = core.stall_for(window)
        injection.details["stall_end"] = end
        injection.consumed = True
        injection.consumed_at = now
        self._stall_windows.setdefault(core.index, []).append(
            (now, end, injection)
        )
        self.core_stalls += 1
        self.machine.metrics.counter("faults.core_stalls").inc()

    # ------------------------------------------------------------------
    # Hardware hooks
    # ------------------------------------------------------------------
    def _timer_filter(self, core_index: int):
        """Secure-timer expiry hook: drop, delay, or defer-through-stall."""
        core = self.machine.cores[core_index]
        now = self.machine.sim.now
        if core.stalled:
            # A stalled core cannot take the interrupt; the hardware pends
            # it and delivery happens when the stall window ends.  Stalls
            # are physical state, so this path stays live past the horizon.
            self.stall_deferrals += 1
            self.machine.metrics.counter("faults.stall_deferrals").inc()
            for start, end_, inj in self._stall_windows.get(core_index, ()):
                if start - _TIME_TOL <= now <= end_ + _TIME_TOL:
                    inj.details["deferrals"] = inj.details.get("deferrals", 0) + 1
                    break
            return (core.stalled_until - now) + 1e-6
        if not self.active:
            return None
        pend = self._drop_pending.get(core_index)
        if pend:
            injection = pend.pop(0)
            injection.consumed = True
            injection.consumed_at = now
            injection.details["serviced_at_consume"] = (
                self.satin.tsp.timer_entries_per_core.get(core_index, 0)
            )
            self.timer_drops += 1
            self.machine.metrics.counter("faults.timer_drops").inc()
            self.machine.trace.emit(
                now, "faults", "timer expiry dropped", core=core_index
            )
            return "drop"
        delayed = self._delay_pending.get(core_index)
        if delayed:
            delay, injection = delayed.pop(0)
            injection.consumed = True
            injection.consumed_at = now
            injection.details["serviced_at_consume"] = (
                self.satin.tsp.timer_entries_per_core.get(core_index, 0)
            )
            self.timer_delays += 1
            self.machine.metrics.counter("faults.timer_delays").inc()
            self.machine.trace.emit(
                now, "faults", "timer expiry delayed",
                core=core_index, delay=delay,
            )
            return float(delay)
        return None

    def _switch_fault(self, core) -> float:
        """World-switch latency hook on the EL3 monitor."""
        if not self.active or not self._spike_pending:
            return 0.0
        extra, injection = self._spike_pending.pop(0)
        injection.consumed = True
        injection.consumed_at = self.machine.sim.now
        injection.core_index = core.index
        self.smc_spikes += 1
        self.machine.metrics.counter("faults.smc_spikes").inc()
        self.machine.metrics.histogram("faults.smc_spike_seconds").observe(extra)
        return extra

    def _snapshot_hook(self, chunk_offset: int, chunk: bytes) -> bytes:
        """Corrupt the next snapshot chunk copied into secure SRAM."""
        if not self.active or not self._snapshot_pending:
            return chunk
        injection = self._snapshot_pending.pop(0)
        d = injection.details
        pos = min(d["pos"], len(chunk) - 1)
        mutated = bytearray(chunk)
        mutated[pos] ^= 1 << d["bit"]
        d["chunk_offset"] = chunk_offset
        injection.consumed = True
        injection.consumed_at = self.machine.sim.now
        self.snapshot_corruptions += 1
        self.machine.metrics.counter("faults.snapshot_corruptions").inc()
        return bytes(mutated)

    def _on_invalid_entry(self, slot: int, value: float, now: float) -> None:
        """Queue validation rejected a slot: match it to our corruption."""
        for injection in self.injections:
            if injection.fault_class != "wakeup_corrupt":
                continue
            d = injection.details
            if (
                injection.consumed
                and "detected_at" not in d
                and d["slot"] == slot
                and abs(d.get("value", float("nan")) - value) < _SLOT_TOL
            ):
                d["detected_at"] = now
                break

    def _on_arm(self, core, wake_at: float) -> None:
        """Audit: did a corrupted slot value ever reach the timer hardware?"""
        for injection in self.injections:
            if injection.fault_class != "wakeup_corrupt":
                continue
            d = injection.details
            if (
                injection.consumed
                and "detected_at" not in d
                and abs(d.get("value", float("nan")) - wake_at) < _SLOT_TOL
            ):
                d["armed_missed"] = True

    def interferes_with_scans(self) -> bool:
        """True while a memory-corrupting fault could strike mid-scan.

        Conservative on purpose: while any bit flip (or its revert write)
        may still land, fused-span scans must fall back to the per-chunk
        timeline — a write during a fused span would falsify its
        no-interleaving claim and abort the simulation.
        """
        return self._has_bitflips and self.machine.sim.now <= self._bitflip_guard_until

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def deactivate(self) -> None:
        """Stop injecting (end of horizon); pending decisions are voided.

        Physical state already inflicted — stall windows, un-reverted bit
        flips, corrupted queue slots — stays, as it would on real hardware.
        """
        self.active = False
        for pend in self._drop_pending.values():
            for injection in pend:
                injection.note = "armed but no expiry before horizon"
        self._drop_pending.clear()
        for delayed in self._delay_pending.values():
            for _, injection in delayed:
                injection.note = "armed but no expiry before horizon"
        self._delay_pending.clear()
        for _, injection in self._spike_pending:
            injection.note = "armed but no world switch before horizon"
        self._spike_pending.clear()
        for injection in self._snapshot_pending:
            injection.note = "armed but no snapshot before horizon"
        self._snapshot_pending.clear()

    # ------------------------------------------------------------------
    # Classification: the survival matrix
    # ------------------------------------------------------------------
    def classify(self) -> Dict[str, Any]:
        """Fold injections and system responses into the survival matrix."""
        watchdog = self.satin.watchdog
        missed_events: List[Tuple[float, int]] = (
            list(watchdog.missed_events) if watchdog is not None else []
        )
        used = [False] * len(missed_events)
        grace = watchdog.grace if watchdog is not None else 0.0

        def claim_missed_event(core_index: int, not_before: float) -> bool:
            for i, (t, c) in enumerate(missed_events):
                if not used[i] and c == core_index and t >= not_before - _TIME_TOL:
                    used[i] = True
                    return True
            return False

        # Liveness claims must be matched in chronological order of the
        # expected missed-wake check, or a later claim could steal an
        # earlier claim's event.
        liveness: List[Tuple[float, Injection]] = []
        for injection in self.injections:
            if injection.fault_class == "timer_drop" and injection.consumed:
                liveness.append((injection.consumed_at, injection))
            elif injection.fault_class == "timer_late" and injection.consumed:
                if injection.details["delay"] > grace + _TIME_TOL:
                    liveness.append((injection.consumed_at + grace, injection))
        for expected_at, injection in sorted(liveness, key=lambda x: x[0]):
            injection.details["_watchdog_matched"] = claim_missed_event(
                injection.core_index
                if injection.core_index >= 0
                else -1,
                injection.consumed_at,
            )

        for injection in self.injections:
            handler = getattr(self, f"_classify_{injection.fault_class}")
            handler(injection, missed_events, used, grace)

        matrix: Dict[str, Dict[str, int]] = {}
        for cls in self.plan.fault_classes:
            matrix[cls] = {"injected": 0, "detected": 0, "degraded": 0, "missed": 0}
        for injection in self.injections:
            row = matrix[injection.fault_class]
            row["injected"] += 1
            row[injection.outcome] += 1
        totals = {key: 0 for key in ("injected",) + OUTCOMES}
        for row in matrix.values():
            for key in totals:
                totals[key] += row[key]
        return {
            "classes": matrix,
            "totals": totals,
            "injections": [i.as_dict() for i in self.injections],
        }

    def _core_recovered(self, injection) -> bool:
        """Did the injected core keep servicing wakes after consumption?

        A wake that is genuinely lost with no working watchdog leaves its
        core silent forever (nothing ever re-arms the timer), so forward
        progress after the fault proves *some* mechanism — a deferred
        delivery, a watchdog re-arm whose record another fault claimed —
        recovered the round.
        """
        serviced_now = self.satin.tsp.timer_entries_per_core.get(
            injection.core_index, 0
        )
        return serviced_now > injection.details.get("serviced_at_consume", 0)

    # --- per-class classifiers -----------------------------------------
    def _classify_timer_drop(self, injection, missed_events, used, grace) -> None:
        if not injection.consumed:
            injection.outcome = "degraded"
            injection.note = injection.note or "absorbed: no expiry to drop"
        elif injection.details.get("_watchdog_matched"):
            injection.outcome = "detected"
            injection.note = "watchdog logged the missed wake and re-armed"
        elif self._core_recovered(injection):
            # Overlapping faults on one core can make a drop harmless (it
            # ate a retry fire for a wake a late delivery had already or
            # concurrently serviced); the core demonstrably kept going.
            injection.outcome = "degraded"
            injection.note = "dropped a redundant fire; core kept servicing wakes"
        else:
            injection.outcome = "missed"
            injection.note = "dropped expiry never surfaced and the core went silent"

    def _classify_timer_late(self, injection, missed_events, used, grace) -> None:
        if not injection.consumed:
            injection.outcome = "degraded"
            injection.note = injection.note or "absorbed: no expiry to delay"
        elif injection.details.get("_watchdog_matched"):
            injection.outcome = "detected"
            injection.note = "watchdog saw the wake miss its grace window"
        elif injection.details["delay"] <= grace + _TIME_TOL:
            injection.outcome = "degraded"
            injection.note = "delivered late but inside the grace window"
        elif self._core_recovered(injection):
            injection.outcome = "degraded"
            injection.note = "late delivery landed; core kept servicing wakes"
        else:
            injection.outcome = "missed"
            injection.note = "late beyond grace, no record, and the core went silent"

    def _classify_smc_spike(self, injection, missed_events, used, grace) -> None:
        injection.outcome = "degraded"
        if injection.consumed:
            injection.note = "absorbed by the switch path; round still completed"
        else:
            injection.note = injection.note or "no world switch consumed it"

    def _classify_bitflip(self, injection, missed_events, used, grace) -> None:
        d = injection.details
        flip_at = injection.consumed_at
        revert_at = d["revert_at"] if d.get("reverted", False) else float("inf")
        window_end = (revert_at if revert_at != float("inf") else
                      self.machine.sim.now) + 1.0
        for alarm in self.satin.alarms.alarms:
            if (
                alarm.kind == "mismatch"
                and alarm.area_index == d["area_index"]
                and flip_at - _TIME_TOL <= alarm.time <= window_end
            ):
                injection.outcome = "detected"
                injection.note = "integrity alarm on the flipped area"
                return
        # No alarm.  A clean scan whose whole window sat inside the flip's
        # lifetime provably read the flipped byte region while it was
        # corrupt — that would be a genuine miss.
        for result in self.satin.checker.results:
            if (
                result.area_index == d["area_index"]
                and result.match
                and result.start_time >= flip_at - _TIME_TOL
                and result.end_time <= revert_at + _TIME_TOL
            ):
                injection.outcome = "missed"
                injection.note = "a scan verified the area clean while flipped"
                return
        injection.outcome = "degraded"
        injection.note = "transient flip reverted before any scan observed it"

    def _classify_wakeup_corrupt(self, injection, missed_events, used, grace) -> None:
        d = injection.details
        if not injection.consumed:
            injection.outcome = "degraded"
            injection.note = injection.note or "not injected"
        elif "detected_at" in d:
            injection.outcome = "detected"
            injection.note = "queue validation rejected the slot and redrew"
        elif d.get("armed_missed"):
            injection.outcome = "missed"
            injection.note = "corrupted value was armed into the timer"
        elif self.satin.wakeup_queue.refresh_count > d["refresh_generation"]:
            injection.outcome = "degraded"
            injection.note = "slot refreshed before the corrupt value was read"
        else:
            injection.outcome = "degraded"
            injection.note = "corrupt slot still unread at end of run"

    def _classify_core_stall(self, injection, missed_events, used, grace) -> None:
        d = injection.details
        if d.get("deferrals", 0) == 0:
            injection.outcome = "degraded"
            injection.note = "no expiry fell inside the stall window"
            return
        # The stall deferred at least one wake; if the deferral outlived the
        # watchdog's grace there should be a missed-wake record for it.
        start = injection.consumed_at
        end = d["stall_end"] + grace + _TIME_TOL
        for i, (t, c) in enumerate(missed_events):
            if not used[i] and c == injection.core_index and start <= t <= end:
                used[i] = True
                injection.outcome = "detected"
                injection.note = "watchdog logged the stalled wake"
                return
        injection.outcome = "degraded"
        injection.note = "deferred delivery landed inside the grace window"

    def _classify_snapshot_corrupt(self, injection, missed_events, used, grace) -> None:
        if not injection.consumed:
            injection.outcome = "degraded"
            injection.note = injection.note or "no snapshot consumed it"
            return
        window_end = injection.consumed_at + 2.0
        for alarm in self.satin.alarms.alarms:
            if (
                alarm.kind in ("snapshot_suspected", "mismatch")
                and injection.consumed_at - _TIME_TOL <= alarm.time <= window_end
            ):
                injection.outcome = "detected"
                injection.note = (
                    "re-verified and degraded"
                    if alarm.kind == "snapshot_suspected"
                    else "surfaced as an integrity mismatch"
                )
                return
        injection.outcome = "missed"
        injection.note = "corrupted snapshot produced no alarm"

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Injector-side effect counters (consumed faults by mechanism)."""
        return {
            "timer_drops": self.timer_drops,
            "timer_delays": self.timer_delays,
            "stall_deferrals": self.stall_deferrals,
            "smc_spikes": self.smc_spikes,
            "bitflips": self.bitflips,
            "bitflip_reverts": self.bitflip_reverts,
            "wakeup_corruptions": self.wakeup_corruptions,
            "core_stalls": self.core_stalls,
            "snapshot_corruptions": self.snapshot_corruptions,
        }
