"""Chaos sweeps: fault plans x seeds through the campaign pool.

``python -m repro chaos <scenario> --faults <plan> --seeds N --jobs N``
runs one hardened SATIN stack per ``(seed, fault_seed)`` pair with the
plan's faults injected, classifies every injection (detected /
degraded-but-correct / missed), and merges the per-trial results into a
**survival matrix** that lands in the rendered report, the campaign
manifest (``survival`` section, picked up by ``repro metrics``), and an
optional JSON artifact for CI.

Determinism: each trial's event timeline is digested through the
simulator's fire hook into an ``event_checksum``; the same
``(config_digest, fault_seed)`` pair yields the identical checksum and
alarm stream at any ``--jobs`` level, which the golden determinism test
pins.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from repro.analysis.tables import render_table
from repro.campaign.digest import CODE_VERSION, stable_digest
from repro.campaign.pool import DEFAULT_MAX_ATTEMPTS
from repro.campaign.runner import DEFAULT_CACHE_DIR, Observer, run_sweep
from repro.campaign.trials import DEFAULT_PRESET
from repro.config import preset_config
from repro.errors import CampaignError, FaultInjectionError
from repro.faults.injector import OUTCOMES, FaultInjector
from repro.faults.plan import FaultPlan, plan_by_name
from repro.obs.manifest import build_manifest, write_manifest

#: Import path of the worker-side chaos trial function.
CHAOS_TRIAL_FN = "repro.faults.chaos:run_chaos_trial"


@dataclass
class ChaosSpec:
    """Everything that defines a chaos sweep.

    Duck-types the :class:`~repro.campaign.runner.CampaignSpec` surface
    (``trial_tasks``/``campaign_id``/``experiment_id``/``presets``/...)
    that :func:`repro.obs.manifest.build_manifest` consumes, so chaos runs
    write first-class campaign manifests.
    """

    scenario: str
    seeds: Sequence[int]
    plan_name: str = "smoke"
    fault_seed_base: int = 0
    preset: str = DEFAULT_PRESET
    duration: Optional[float] = None
    jobs: int = 1
    timeout: Optional[float] = None
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    cache_dir: str = DEFAULT_CACHE_DIR
    resume: bool = False
    full: bool = False  # manifest-surface compatibility; chaos has one scale
    #: executor backend (same choices and semantics as CampaignSpec).
    backend: str = "auto"
    queue_dir: Optional[str] = None
    queue_workers: int = 0

    def __post_init__(self) -> None:
        from repro.obs.scenarios import scenario_by_name
        from repro.service.executors import BACKENDS

        if not self.seeds:
            raise CampaignError("chaos sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignError("chaos sweep seeds must be unique")
        if self.backend not in ("auto",) + BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r} "
                f"(choose from auto, {', '.join(BACKENDS)})"
            )
        if self.backend == "queue" and not self.queue_dir:
            raise CampaignError("backend 'queue' needs queue_dir")
        self.plan: FaultPlan = plan_by_name(self.plan_name)
        # Fail fast on a scenario the trial function would reject anyway:
        # without SATIN there is no degradation machinery to audit.
        scenario = scenario_by_name(self.scenario)
        if not scenario.with_satin:
            raise FaultInjectionError(
                f"scenario {scenario.name!r} runs without SATIN; chaos needs "
                "the engine whose degradation is under test"
            )

    # --- CampaignSpec-compatible surface -------------------------------
    @property
    def experiment_id(self) -> str:
        return f"CHAOS-{self.scenario.upper()}"

    @property
    def presets(self) -> Sequence[str]:
        return (self.preset,)

    def effective_duration(self) -> float:
        return self.duration if self.duration is not None else self.plan.duration

    def campaign_id(self) -> str:
        digest = stable_digest(
            {
                "experiment_id": self.experiment_id,
                "plan": self.plan.digest(),
                "preset": self.preset,
                "duration": self.effective_duration(),
                "code": CODE_VERSION,
            },
            length=12,
        )
        return f"{self.experiment_id}-{digest}"

    def fault_seed_for(self, seed: int) -> int:
        return self.fault_seed_base + int(seed)

    def trial_tasks(self) -> List[Dict[str, Any]]:
        tasks: List[Dict[str, Any]] = []
        duration = self.effective_duration()
        for seed in self.seeds:
            config = preset_config(self.preset, seed=int(seed))
            fault_seed = self.fault_seed_for(int(seed))
            tasks.append(
                {
                    "key": stable_digest(
                        {
                            "experiment_id": self.experiment_id,
                            "seed": int(seed),
                            "fault_seed": fault_seed,
                            "plan": self.plan.digest(),
                            "config": config.config_digest(),
                            "duration": duration,
                            "code": CODE_VERSION,
                        }
                    ),
                    "experiment_id": self.experiment_id,
                    "scenario": self.scenario,
                    "seed": int(seed),
                    "fault_seed": fault_seed,
                    "plan": self.plan.name,
                    "preset": self.preset,
                    "duration": duration,
                    "full": False,
                }
            )
        return tasks


@dataclass
class ChaosResult:
    """Outcome of one chaos sweep (CampaignResult-compatible surface)."""

    spec: ChaosSpec
    total: int
    records: List[Dict[str, Any]]
    cached: int
    ran: int
    quarantined: List[Dict[str, Any]]
    rendered: str
    #: aggregated survival matrix: ``{class: {injected, detected, ...}}``.
    survival: Dict[str, Dict[str, int]] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)
    manifest_path: Optional[str] = None
    cancelled: bool = False

    @property
    def cache_hit_ratio(self) -> float:
        return self.cached / self.total if self.total else 0.0

    @property
    def missed(self) -> int:
        return self.totals.get("missed", 0)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def run_chaos_trial(task: Dict[str, Any]) -> Dict[str, Any]:
    """One seeded scenario run with fault injection; returns the record.

    Builds the scenario's stack under a scoped metrics registry, hardens
    SATIN, installs the injector, digests the event timeline through the
    simulator fire hook, runs the plan's horizon plus a drain window (so
    every consumed fault's watchdog check and alarm can land), and
    classifies the injections into the survival matrix.
    """
    from repro.experiments.common import build_stack
    from repro.obs.metrics import use_registry
    from repro.obs.scenarios import scenario_by_name

    plan = plan_by_name(task["plan"])
    duration = float(task.get("duration") or plan.duration)
    scenario = scenario_by_name(task["scenario"])
    if not scenario.with_satin:
        raise FaultInjectionError(
            f"scenario {scenario.name!r} runs without SATIN; chaos needs the "
            "engine whose degradation is under test"
        )

    with use_registry() as registry:
        config = preset_config(task["preset"], seed=int(task["seed"]))
        if plan.needs_snapshot and not config.satin.use_snapshot:
            config.satin = replace(config.satin, use_snapshot=True)
        stack = build_stack(
            machine_config=config,
            with_satin=True,
            with_evader=scenario.with_evader,
        )
        satin = stack.satin
        watchdog = satin.harden()
        injector = FaultInjector(
            stack.machine, satin, plan, fault_seed=int(task["fault_seed"]),
            horizon=duration,
        ).install()

        checksum = hashlib.sha256()

        def fire_hook(now: float, seq: int) -> None:
            checksum.update(f"{now.hex()}|{seq};".encode("ascii"))

        stack.machine.sim.set_fire_hook(fire_hook)
        stack.machine.run(until=duration)
        injector.deactivate()
        max_delay = 0.0
        for spec in plan.specs:
            if spec.fault_class == "timer_late":
                max_delay = spec.param("max_delay", 1.0)
        drain = (
            watchdog.grace * (watchdog.max_retries + 2) + max_delay + 2.0
        )
        stack.machine.run(until=duration + drain)
        stack.machine.sim.set_fire_hook(None)

        survival = injector.classify()
        alarm_digest = hashlib.sha256()
        for alarm in satin.alarms.alarms:
            alarm_digest.update(
                f"{alarm.time.hex()}|{alarm.kind}|{alarm.severity}|"
                f"{alarm.core_index}|{alarm.area_index};".encode("ascii")
            )

        return {
            "scenario": scenario.name,
            "seed": int(task["seed"]),
            "fault_seed": int(task["fault_seed"]),
            "plan": plan.name,
            "plan_digest": plan.digest(),
            "duration": duration,
            "drain": drain,
            "survival": survival["classes"],
            "totals": survival["totals"],
            "injections": survival["injections"],
            "event_checksum": checksum.hexdigest(),
            "alarm_checksum": alarm_digest.hexdigest(),
            "alarm_severities": satin.alarms.severity_counts(),
            "rounds": satin.round_count,
            "watchdog": {
                "checks": watchdog.checks,
                "missed_wakes": watchdog.missed_wakes,
                "rearms": watchdog.rearms,
                "late_rounds": watchdog.late_rounds,
                "degraded_rounds": watchdog.degraded_rounds,
            },
            "queue": {
                "invalid_entries": satin.wakeup_queue.invalid_entries,
                "fallback_draws": satin.wakeup_queue.fallback_draws,
            },
            "checker": {
                "snapshot_reverifies": satin.checker.snapshot_reverifies,
                "snapshot_suspected": satin.checker.snapshot_suspected,
                "chunked_fallbacks": satin.checker.chunked_fallbacks,
            },
            "injector": injector.counters(),
            "metrics": registry.snapshot(),
        }


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------

def empty_matrix(plan: FaultPlan) -> Dict[str, Dict[str, int]]:
    return {
        cls: {"injected": 0, "detected": 0, "degraded": 0, "missed": 0}
        for cls in plan.fault_classes
    }


def merge_survival(
    matrix: Dict[str, Dict[str, int]], trial_matrix: Dict[str, Dict[str, Any]]
) -> None:
    """Fold one trial's survival classes into the aggregate (in place)."""
    for cls, row in trial_matrix.items():
        agg = matrix.setdefault(
            cls, {"injected": 0, "detected": 0, "degraded": 0, "missed": 0}
        )
        for key in agg:
            agg[key] += int(row.get(key, 0))


def render_survival(
    matrix: Dict[str, Dict[str, int]], title: str
) -> str:
    rows = []
    totals = {key: 0 for key in ("injected",) + OUTCOMES}
    for cls, row in matrix.items():
        rows.append(
            [cls]
            + [str(row[key]) for key in ("injected",) + OUTCOMES]
        )
        for key in totals:
            totals[key] += row[key]
    rows.append(
        ["TOTAL"] + [str(totals[key]) for key in ("injected",) + OUTCOMES]
    )
    return render_table(
        ("fault class", "injected", "detected", "degraded", "missed"),
        rows,
        title=title,
    )


def render_chaos(spec: ChaosSpec, result_matrix, totals, records, cached, ran,
                 quarantined) -> str:
    lines = [
        f"# chaos {spec.experiment_id} — plan {spec.plan.name!r}, "
        f"{len(spec.seeds)} seed(s), horizon {spec.effective_duration():g}s",
        f"trials: {len(spec.seeds)} total, {ran} ran, {cached} cached, "
        f"{len(quarantined)} quarantined",
        "",
        render_survival(
            result_matrix,
            f"survival matrix — {totals.get('injected', 0)} faults injected",
        ),
    ]
    missed = totals.get("missed", 0)
    if missed:
        lines.append("")
        lines.append(f"!! {missed} fault(s) MISSED — silent divergence")
        for record in records:
            for injection in record["payload"].get("injections", []):
                if injection.get("outcome") == "missed":
                    lines.append(
                        f"  - seed={record['seed']} t={injection['time']:.6f}s "
                        f"{injection['class']}: {injection['note']}"
                    )
    else:
        lines.append("")
        lines.append(
            "all faults accounted for: detected or degraded-but-correct"
        )
    if quarantined:
        lines.append("")
        lines.append("quarantined trials (failed every attempt):")
        for item in quarantined:
            failures = "+".join(item.get("failures", []) + [item["status"]])
            lines.append(
                f"  - seed={item['seed']} [{failures}] "
                f"after {item['attempts']} attempt(s)"
            )
    return "\n".join(lines)


def run_chaos(
    spec: ChaosSpec,
    stream: Optional[TextIO] = None,
    progress: Union[bool, str] = True,
    trial_fn: str = CHAOS_TRIAL_FN,
    observer: Optional[Observer] = None,
    cancel_event: Optional[threading.Event] = None,
) -> ChaosResult:
    """Execute a chaos sweep end-to-end through the executor layer.

    Shares :func:`repro.campaign.runner.run_sweep` with campaigns, so
    every backend (inline/thread/fork/queue), the cache, cancellation and
    quarantine behave identically; only the survival aggregation differs.
    """
    sweep = run_sweep(
        spec, trial_fn,
        stream=stream, progress=progress,
        observer=observer, cancel_event=cancel_event,
    )
    records = sweep.records

    matrix = empty_matrix(spec.plan)
    totals = {key: 0 for key in ("injected",) + OUTCOMES}
    for record in records:
        merge_survival(matrix, record["payload"].get("survival", {}))
    for row in matrix.values():
        for key in totals:
            totals[key] += row[key]

    rendered = render_chaos(
        spec, matrix, totals, records,
        cached=sweep.cached, ran=sweep.ran, quarantined=sweep.quarantined,
    )
    if sweep.cancelled:
        rendered = (
            f"!! chaos sweep cancelled — partial results "
            f"({len(records)}/{len(sweep.tasks)} trials)\n" + rendered
        )
    result = ChaosResult(
        spec=spec,
        total=len(sweep.tasks),
        records=records,
        cached=sweep.cached,
        ran=sweep.ran,
        quarantined=sweep.quarantined,
        rendered=rendered,
        survival=matrix,
        totals=totals,
        cancelled=sweep.cancelled,
    )
    manifest = build_manifest(
        spec,
        result,
        wall_seconds=sweep.wall_seconds,
        supervisor_snapshot=sweep.supervisor.snapshot(),
        cancelled=sweep.cancelled,
        store_health=sweep.store_health,
    )
    manifest["survival"] = {
        "scenario": spec.scenario,
        "plan": spec.plan.name,
        "plan_digest": spec.plan.digest(),
        "horizon": spec.effective_duration(),
        "classes": matrix,
        "totals": totals,
        "event_checksums": {
            str(record["seed"]): record["payload"].get("event_checksum")
            for record in records
        },
    }
    result.manifest_path = write_manifest(sweep.store.directory, manifest)
    return result
