"""Performance benchmarks behind ``python -m repro bench``.

Two kinds of numbers come out of a bench run:

* **wall-clock measurements** — events/sec on the event-engine microbench
  (against a bundled seed-style reference engine), schedule_batch vs
  one-at-a-time scheduling, fused vs per-chunk scan wall time, trusted-boot
  cache effect, and end-to-end trial wall times.  These vary by host and
  are *reported, never asserted*.
* **deterministic invariants** — events-fired counts, introspection
  rounds-per-pass, fired ``(time, seq)`` sequence checksums, and table
  digests.  These are pure functions of the code and the seeds, so CI can
  fail hard on any drift (``repro bench --check FILE``) without being
  flaky.

The JSON written by ``--out`` starts the ``BENCH_*.json`` trajectory: one
file per optimisation PR, so speedups stay documented and regressions have
a baseline to be measured against.
"""

from __future__ import annotations

import gc
import hashlib
import heapq
import itertools
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bumped whenever the bench suite itself changes shape (new sections,
#: changed workloads).  ``--check`` fails on a pinned file carrying a
#: different version, so a stale baseline reads as an explicit error
#: instead of a silent key-by-key pass.
BENCH_VERSION = 9

# ----------------------------------------------------------------------
# Seed-style reference engine (the pre-overhaul design, kept verbatim in
# spirit: Event objects *in* the heap, Python __lt__ per sift, separate
# peek+pop per fired event).  The microbench ratio and the (time, seq)
# equivalence check both run against this.
# ----------------------------------------------------------------------


class _RefEvent:
    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time, seq, callback, args=()):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class _RefQueue:
    def __init__(self):
        self._heap: List[_RefEvent] = []
        self._counter = itertools.count()

    def push(self, time, callback, args=()):
        event = _RefEvent(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self):
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None


class ReferenceSimulator:
    """Minimal seed-style simulator: peek, then pop, one event at a time."""

    def __init__(self):
        self.now = 0.0
        self._queue = _RefQueue()
        self.events_fired = 0

    def schedule(self, delay, callback, *args):
        return self._queue.push(self.now + delay, callback, args)

    def run(self, until=None, max_events=None):
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None or (until is not None and next_time > until):
                break
            event = self._queue.pop()
            self.now = event.time
            event.fired = True
            fired += 1
            self.events_fired += 1
            event.callback(*event.args)
        if until is not None and self.now < until:
            self.now = until


# ----------------------------------------------------------------------
# Deterministic synthetic workload (shared by speed and equivalence runs)
# ----------------------------------------------------------------------

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


def _timer_wheel_workload(sim, n_events: int, fanout: int = 4, on_fire=None) -> None:
    """Self-rescheduling callbacks with LCG-derived delays, plus cancels.

    Mirrors the real event mix: mostly rescheduling timers, a fraction of
    scheduled-then-cancelled events (preempted quanta, rearmed timers).
    ``on_fire(now)`` is invoked at every firing, for sequence tracing.
    """
    state = {"lcg": 12345, "fired": 0, "budget": n_events}
    pending_cancel: List[Any] = []

    def next_delay() -> float:
        state["lcg"] = (state["lcg"] * _LCG_MULT + _LCG_INC) & _MASK64
        return ((state["lcg"] >> 16) % 10_000 + 1) * 1e-7

    def tick() -> None:
        if on_fire is not None:
            on_fire(sim.now)
        state["fired"] += 1
        if state["fired"] >= state["budget"]:
            return
        sim.schedule(next_delay(), tick)
        # every 8th firing schedules a victim and cancels an older one
        if state["fired"] % 8 == 0:
            pending_cancel.append(sim.schedule(next_delay() * 3, tick))
            if len(pending_cancel) > 2:
                pending_cancel.pop(0).cancel()

    for _ in range(fanout):
        sim.schedule(next_delay(), tick)
    sim.run(max_events=n_events)


#: Precomputed pseudo-random delays for the engine microbench, so the
#: callback under test does near-zero work and the measurement isolates
#: the engine itself (heap, event allocation, run loop).
_DELAY_TABLE_LEN = 1 << 12


def _delay_table() -> List[float]:
    lcg = 99991
    delays = []
    for _ in range(_DELAY_TABLE_LEN):
        lcg = (lcg * _LCG_MULT + _LCG_INC) & _MASK64
        delays.append(((lcg >> 16) % 10_000 + 1) * 1e-7)
    return delays


def _lean_timer_workload(sim, n_events: int, fanout: int = 4) -> None:
    """Minimal-callback timer wheel: all cost is engine cost.

    Every 8th firing also schedules a victim event and cancels an older
    one, so lazy deletion stays on the measured path.
    """
    delays = _delay_table()
    mask = _DELAY_TABLE_LEN - 1
    state = {"i": 0}
    pending_cancel: List[Any] = []

    def tick() -> None:
        i = state["i"] = state["i"] + 1
        sim.schedule(delays[i & mask], tick)
        if not i & 7:
            pending_cancel.append(sim.schedule(delays[(i + 1) & mask] * 3, tick))
            if len(pending_cancel) > 2:
                pending_cancel.pop(0).cancel()

    for j in range(fanout):
        sim.schedule(delays[j], tick)
    sim.run(max_events=n_events)


#: chunk count of one synthetic scan pass in the scan-mix workload; matches
#: a 256 KiB area at the default 4 KiB chunk size.
_CHUNKS_PER_SCAN = 64


def _scan_mix_workload(sim, n_events: int, scanners: int = 4, fused: bool = False) -> None:
    """Concurrent scanners, each forever re-running a 64-chunk pass.

    This is the event population the real simulator spends its time on:
    per-chunk ``cpu()`` completions vastly outnumber timers in every
    E-suite trial.  The reference engine must pay one heap round-trip per
    chunk; the overhauled engine schedules one :class:`SpanEvent` per pass
    (``fused=True``) and charges the 64 chunks through span accounting —
    both fire exactly ``n_events`` *logical* events.
    """
    delays = _delay_table()
    mask = _DELAY_TABLE_LEN - 1
    cursors = list(range(0, scanners * 1024, 1024))

    if fused:
        def rearm(s: int) -> None:
            i = cursors[s]
            cursors[s] = i + _CHUNKS_PER_SCAN
            t = sim.now
            times = []
            append = times.append
            for k in range(_CHUNKS_PER_SCAN):
                t = t + delays[(i + k) & mask]
                append(t)
            sim.schedule_span(times, rearm, s)

        for s in range(scanners):
            rearm(s)
    else:
        def chunk(s: int) -> None:
            i = cursors[s]
            cursors[s] = i + 1
            sim.schedule(delays[i & mask], chunk, s)

        for s in range(scanners):
            chunk(s)
    sim.run(max_events=n_events)


def bench_event_engine(n_events: int = 300_000) -> Dict[str, Any]:
    """Events/sec through the optimized engine vs the seed-style reference.

    The headline number is the scan-mix workload (the simulator's dominant
    event population, where the fused engine schedules one span per pass);
    the timer-wheel number isolates the bare tuple-heap/run-loop win on a
    workload with no coalescible structure.
    """
    from repro.sim.simulator import Simulator

    def timed(workload, engine, **kwargs) -> float:
        gc.collect()
        started = time.perf_counter()
        workload(engine, n_events, **kwargs)
        return time.perf_counter() - started

    scan_wall = timed(_scan_mix_workload, Simulator(), fused=True)
    scan_ref_wall = timed(_scan_mix_workload, ReferenceSimulator())
    timer_wall = timed(_lean_timer_workload, Simulator())
    timer_ref_wall = timed(_lean_timer_workload, ReferenceSimulator())

    return {
        "n_events": n_events,
        "events_per_sec": round(n_events / scan_wall),
        "reference_events_per_sec": round(n_events / scan_ref_wall),
        "speedup": round(scan_ref_wall / scan_wall, 2),
        "timer_wheel": {
            "events_per_sec": round(n_events / timer_wall),
            "reference_events_per_sec": round(n_events / timer_ref_wall),
            "speedup": round(timer_ref_wall / timer_wall, 2),
        },
    }


def bench_schedule_batch(n_events: int = 200_000) -> Dict[str, Any]:
    """Push throughput: one-at-a-time schedule() vs schedule_batch()."""
    from repro.sim.simulator import Simulator

    sim = Simulator()
    gc.collect()
    started = time.perf_counter()
    for i in range(n_events):
        sim.schedule(1e-6 * (i % 977), _noop)
    loop_wall = time.perf_counter() - started

    sim = Simulator()
    items = [(1e-6 * (i % 977), _noop, ()) for i in range(n_events)]
    gc.collect()
    started = time.perf_counter()
    sim.schedule_batch(items)
    batch_wall = time.perf_counter() - started

    return {
        "n_events": n_events,
        "schedule_per_sec": round(n_events / loop_wall),
        "schedule_batch_per_sec": round(n_events / batch_wall),
        "speedup": round(loop_wall / batch_wall, 2),
    }


def _noop() -> None:
    return None


def engine_equivalence(n_events: int = 30_000) -> Dict[str, Any]:
    """Fire the synthetic workload on both engines; checksum (time, seq).

    The sequences must be identical: the optimized engine re-implements the
    calendar queue, it does not re-define its order.
    """
    from repro.sim.simulator import Simulator

    def traced(sim_cls) -> str:
        sim = sim_cls()
        trace = hashlib.sha256()
        count = [0]

        def on_fire(now: float) -> None:
            # float.hex() is exact: any bit-level divergence changes the digest.
            count[0] += 1
            trace.update(now.hex().encode())
            trace.update(b"|")

        _timer_wheel_workload(sim, n_events, on_fire=on_fire)
        trace.update(str(count[0]).encode())
        return trace.hexdigest()

    return {
        "n_events": n_events,
        "optimized_checksum": traced(Simulator),
        "reference_checksum": traced(ReferenceSimulator),
    }


def bench_scan_coalescing(seed: int = 2019, passes: int = 2) -> Dict[str, Any]:
    """Fused vs per-chunk SATIN rounds on identical uncontended stacks.

    Asserts the timeline is bit-identical (round end times, digests,
    weighted events fired) and reports the wall-clock difference.
    """
    from repro.experiments.common import build_stack

    def run_rounds(coalesce: bool):
        stack = build_stack(seed=seed, with_satin=True)
        satin = stack.satin
        satin.checker.coalesce_scans = coalesce
        target = passes * len(satin.areas)
        started = time.perf_counter()
        guard = 0
        while satin.checker.round_count < target and guard < target * 50:
            stack.machine.run_for(satin.policy.tp)
            guard += 1
        wall = time.perf_counter() - started
        results = satin.checker.results[:target]
        return {
            "wall": wall,
            "rounds": satin.checker.round_count,
            "events_fired": stack.machine.sim.events_fired,
            "events_scheduled": stack.machine.sim._queue._seq,
            "signature": hashlib.sha256(
                "".join(
                    f"{r.area_index}:{r.start_time.hex()}:{r.end_time.hex()}:{r.digest}"
                    for r in results
                ).encode()
            ).hexdigest(),
        }

    fused = run_rounds(True)
    chunked = run_rounds(False)
    return {
        "seed": seed,
        "passes": passes,
        "fused_wall_seconds": round(fused["wall"], 4),
        "chunked_wall_seconds": round(chunked["wall"], 4),
        "speedup": round(chunked["wall"] / fused["wall"], 2) if fused["wall"] else None,
        "rounds": fused["rounds"],
        "events_fired": fused["events_fired"],
        "events_fired_chunked": chunked["events_fired"],
        "events_scheduled": fused["events_scheduled"],
        "events_scheduled_chunked": chunked["events_scheduled"],
        "timeline_identical": fused["signature"] == chunked["signature"],
        "timeline_signature": fused["signature"],
    }


def bench_trials() -> Dict[str, Any]:
    """End-to-end fast-trial wall times for a cheap and an expensive trial."""
    from repro.experiments.report import run_experiment

    out: Dict[str, Any] = {}
    for experiment_id in ("E1", "E9"):
        started = time.perf_counter()
        result = run_experiment(experiment_id, seed=2019)
        out[experiment_id] = {
            "wall_seconds": round(time.perf_counter() - started, 3),
            "table_sha256": hashlib.sha256(result.rendered.encode()).hexdigest(),
        }
    return out


def bench_boot_cache(seed: int = 77) -> Dict[str, Any]:
    """Back-to-back stack builds: cold (caches flushed) vs warm."""
    from repro.experiments.common import build_stack
    from repro.kernel import image as image_module
    from repro.secure import boot as boot_module
    from repro.secure.boot import DIGEST_CACHE_STATS

    # Flush the process-level caches so the first build is genuinely cold
    # (earlier bench stages share the default image_seed and warm them).
    boot_module._DIGEST_CACHE.clear()
    image_module._CONTENT_CACHE.clear()
    before = dict(DIGEST_CACHE_STATS)

    def table_of(stack):
        store = stack.satin.checker.store
        return tuple(store.expected_digest(span) for span in store.spans)

    gc.collect()
    started = time.perf_counter()
    cold_table = table_of(build_stack(seed=seed, with_satin=True))
    cold_wall = time.perf_counter() - started
    gc.collect()
    started = time.perf_counter()
    warm_table = table_of(build_stack(seed=seed, with_satin=True))
    warm_wall = time.perf_counter() - started
    return {
        "cold_build_seconds": round(cold_wall, 4),
        "warm_build_seconds": round(warm_wall, 4),
        "speedup": round(cold_wall / warm_wall, 2) if warm_wall else None,
        "identical_digests": cold_table == warm_table,
        "digest_cache_hits": DIGEST_CACHE_STATS["hits"] - before["hits"],
        "digest_cache_misses": DIGEST_CACHE_STATS["misses"] - before["misses"],
        "digest_cache_rejected": DIGEST_CACHE_STATS["rejected"] - before["rejected"],
    }


def bench_batch_kernels(
    rows: int = 64, large: int = 262144, small: int = 2048
) -> Dict[str, Any]:
    """Batched djb2 strategies across the break-even: matmul vs scalar.

    BENCH_7 recorded the one-matmul-per-chunk kernel at 0.22x on 256 KiB
    rows — the uint8->uint64 widening copy swamps the matmul once rows
    fall out of cache.  ``batch_djb2`` now routes through
    :func:`repro.sim.batch.batch_hash_strategy`; this bench times both
    kernels on one shape each side of the threshold, records which side
    the auto heuristic picked (and whether that fell back to scalar), and
    asserts the digests are bit-identical regardless of strategy.  The
    headline ``digests_identical`` covers every strategy on every shape.
    """
    import numpy as np

    from repro.secure.hashes import djb2
    from repro.sim.batch import (
        BATCH_HASH_MATMUL_MAX_BYTES,
        batch_djb2,
        batch_hash_strategy,
    )

    rng = np.random.RandomState(2019)
    cases: Dict[str, Any] = {}
    all_identical = True
    for name, size in (("large", large), ("small", small)):
        matrix = rng.randint(0, 256, size=(rows, size), dtype=np.uint8)
        walls: Dict[str, float] = {}
        digests: Dict[str, List[int]] = {}
        for strategy in ("matmul", "scalar"):
            gc.collect()
            started = time.perf_counter()
            digests[strategy] = [int(x) for x in batch_djb2(matrix, strategy=strategy)]
            walls[strategy] = time.perf_counter() - started
        reference = [djb2(matrix[i].tobytes()) for i in range(rows)]
        identical = digests["matmul"] == digests["scalar"] == reference
        all_identical = all_identical and identical
        chosen = batch_hash_strategy(rows, size)
        auto_wall = walls[chosen]
        cases[name] = {
            "bytes_per_row": size,
            "matmul_wall_seconds": round(walls["matmul"], 4),
            "scalar_wall_seconds": round(walls["scalar"], 4),
            "auto_strategy": chosen,
            "fell_back": chosen == "scalar",
            # >= 1.0 means auto picked the right side of the break-even.
            "speedup": (
                round(walls["scalar"] / auto_wall, 2) if auto_wall else None
            ),
            "digests_identical": identical,
        }
    return {
        "rows": rows,
        "break_even_bytes": BATCH_HASH_MATMUL_MAX_BYTES,
        "cases": cases,
        "digests_identical": all_identical,
    }


def bench_batch_campaign(
    seeds_count: int = 64, experiment_id: str = "E9"
) -> Dict[str, Any]:
    """Scalar vs ``--batch`` campaign over one experiment, inline backend.

    Both runs use fresh cache directories; the manifest fingerprints must
    be byte-identical (batching is bit-exact by construction), and the
    wall-clock ratio is reported as measured — never asserted.
    """
    import shutil
    import tempfile

    from repro.campaign.runner import CampaignSpec, run_campaign
    from repro.obs.manifest import load_manifest, manifest_fingerprint

    seeds = list(range(2019, 2019 + seeds_count))
    out: Dict[str, Any] = {"experiment_id": experiment_id, "seeds": seeds_count}
    fingerprints: Dict[str, str] = {}
    for label, batch in (("scalar", False), ("batch", True)):
        cache = tempfile.mkdtemp(prefix=f"repro-bench-{label}-")
        try:
            spec = CampaignSpec(
                experiment_id=experiment_id,
                seeds=seeds,
                jobs=0,
                cache_dir=cache,
                batch=batch,
            )
            gc.collect()
            started = time.perf_counter()
            result = run_campaign(spec, progress=False)
            wall = time.perf_counter() - started
            manifest = load_manifest(result.manifest_path)
            fingerprints[label] = manifest_fingerprint(manifest)
            entry: Dict[str, Any] = {
                "wall_seconds": round(wall, 3),
                "quarantined": len(result.quarantined),
            }
            if batch:
                entry["dispatch"] = manifest.get("batch")
            out[label] = entry
        finally:
            shutil.rmtree(cache, ignore_errors=True)
    batch_wall = out["batch"]["wall_seconds"]
    out["speedup"] = (
        round(out["scalar"]["wall_seconds"] / batch_wall, 2) if batch_wall else None
    )
    out["fingerprint_identical"] = fingerprints["scalar"] == fingerprints["batch"]
    out["fingerprint_sha256"] = hashlib.sha256(
        fingerprints["scalar"].encode()
    ).hexdigest()
    return out


def bench_planner(
    seeds_count: int = 64,
    ci_width: float = 75.0,
    experiment_id: str = "E9",
    min_seeds: int = 8,
    round_size: int = 2,
) -> Dict[str, Any]:
    """Fixed-budget campaign vs the adaptive planner at the same CI target.

    Runs the experiment twice from fresh caches: once over the full fixed
    seed budget, once with ``--adaptive`` stopping as soon as the 95% CI
    on the headline quantity narrows to ``ci_width``.  Reports the seeds
    each run consumed, the CI width each achieved, and the wall-clock
    ratio — the ISSUE acceptance number (``seed_reduction``) lives here.
    """
    import shutil
    import tempfile

    from repro.analysis.planning.planner import (
        CONFIDENCE,
        _ci_width,
        select_quantity,
    )
    from repro.campaign.runner import CampaignSpec, run_campaign
    from repro.obs.manifest import load_manifest

    seeds = list(range(2019, 2019 + seeds_count))
    out: Dict[str, Any] = {
        "experiment_id": experiment_id,
        "target_ci_width": ci_width,
        "confidence": CONFIDENCE,
    }

    cache = tempfile.mkdtemp(prefix="repro-bench-plan-fixed-")
    try:
        spec = CampaignSpec(
            experiment_id=experiment_id, seeds=seeds, jobs=0, cache_dir=cache
        )
        gc.collect()
        started = time.perf_counter()
        fixed = run_campaign(spec, progress=False)
        fixed_wall = time.perf_counter() - started
        quantity = select_quantity(fixed.records, None)
        out["quantity"] = quantity
        out["fixed"] = {
            "seeds": seeds_count,
            "wall_seconds": round(fixed_wall, 3),
            "ci_width": (
                round(_ci_width(fixed.records, quantity), 4) if quantity else None
            ),
        }
    finally:
        shutil.rmtree(cache, ignore_errors=True)

    cache = tempfile.mkdtemp(prefix="repro-bench-plan-adaptive-")
    try:
        spec = CampaignSpec(
            experiment_id=experiment_id,
            seeds=seeds,
            jobs=0,
            cache_dir=cache,
            adaptive=True,
            ci_width=ci_width,
            min_seeds=min_seeds,
            round_size=round_size,
        )
        gc.collect()
        started = time.perf_counter()
        adaptive = run_campaign(spec, progress=False)
        adaptive_wall = time.perf_counter() - started
        manifest = load_manifest(adaptive.manifest_path)
        planner = manifest.get("planner", {})
        seeds_used = max(
            (entry["consumed"] for entry in planner.get("presets", {}).values()),
            default=len(adaptive.records),
        )
        out["adaptive"] = {
            "seeds_used": seeds_used,
            "wall_seconds": round(adaptive_wall, 3),
            "ci_width": (
                round(_ci_width(adaptive.records, quantity), 4) if quantity else None
            ),
            "rounds": planner.get("rounds"),
        }
    finally:
        shutil.rmtree(cache, ignore_errors=True)

    seeds_used = out["adaptive"]["seeds_used"]
    out["seeds_saved"] = seeds_count - seeds_used  # the ISSUE headline
    out["seed_reduction"] = (
        round(seeds_count / seeds_used, 2) if seeds_used else None
    )
    adaptive_wall = out["adaptive"]["wall_seconds"]
    out["speedup"] = (
        round(out["fixed"]["wall_seconds"] / adaptive_wall, 2)
        if adaptive_wall
        else None
    )
    fixed_width = out["fixed"]["ci_width"]
    adaptive_width = out["adaptive"]["ci_width"]
    out["both_within_target"] = (
        fixed_width is not None
        and adaptive_width is not None
        and fixed_width <= ci_width
        and adaptive_width <= ci_width
    )
    return out


# ----------------------------------------------------------------------
# Assembly, determinism pinning, CLI backend
# ----------------------------------------------------------------------


def determinism_block(results: Dict[str, Any]) -> Dict[str, Any]:
    """The host-independent subset a CI perf-smoke job may fail on."""
    engine = results["engine_equivalence"]
    scans = results["scan_coalescing"]
    return {
        "engine_sequences_match": engine["optimized_checksum"] == engine["reference_checksum"],
        "engine_sequence_checksum": engine["optimized_checksum"],
        "scan_rounds_per_pass": scans["rounds"] // scans["passes"],
        "scan_events_fired": scans["events_fired"],
        "scan_events_fired_chunked": scans["events_fired_chunked"],
        "scan_timeline_identical": scans["timeline_identical"],
        "scan_timeline_signature": scans["timeline_signature"],
        "e1_table_sha256": results["trials"]["E1"]["table_sha256"],
        "e9_table_sha256": results["trials"]["E9"]["table_sha256"],
    }


def run_bench(
    progress: Optional[Callable[[str], None]] = None,
    batch: bool = False,
    batch_seeds: int = 64,
    planner: bool = False,
    planner_seeds: int = 64,
    planner_ci_width: float = 75.0,
) -> Dict[str, Any]:
    """Run every benchmark; returns the full result dict.

    ``batch=True`` adds the vectorized-dispatch sections (batched hashing
    kernels and the scalar-vs-``--batch`` campaign differential);
    ``planner=True`` adds the fixed-vs-adaptive campaign pair.  Both are
    opt-in because each campaign pair runs up to ``2 * seeds`` full
    trials.
    """

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    results: Dict[str, Any] = {"bench_version": BENCH_VERSION}
    note("event engine microbench...")
    results["event_engine"] = bench_event_engine()
    note("schedule_batch microbench...")
    results["schedule_batch"] = bench_schedule_batch()
    note("engine (time, seq) equivalence...")
    results["engine_equivalence"] = engine_equivalence()
    note("scan coalescing (fused vs per-chunk rounds)...")
    results["scan_coalescing"] = bench_scan_coalescing()
    note("trial wall times (E1, E9)...")
    results["trials"] = bench_trials()
    note("trusted-boot digest cache...")
    results["boot_cache"] = bench_boot_cache()
    if batch:
        note("batched hashing kernels (matmul vs scalar, both break-even sides)...")
        results["batch_kernels"] = bench_batch_kernels()
        note(f"batch campaign differential ({batch_seeds} seeds, scalar vs --batch)...")
        results["batch_campaign"] = bench_batch_campaign(batch_seeds)
    if planner:
        note(
            f"adaptive planner differential ({planner_seeds} seeds fixed vs "
            f"--adaptive at width {planner_ci_width})..."
        )
        results["planner"] = bench_planner(planner_seeds, planner_ci_width)
    results["determinism"] = determinism_block(results)
    return results


def check_determinism(results: Dict[str, Any], expected_path: str) -> List[str]:
    """Compare the determinism block against a pinned file; list mismatches."""
    with open(expected_path, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    actual = results["determinism"]
    problems = []
    baseline_version = expected.pop("bench_version", None)
    if baseline_version is not None and baseline_version != results.get("bench_version"):
        problems.append(
            f"stale bench_version: baseline {baseline_version}, current "
            f"{results.get('bench_version')} — regenerate the pinned file"
        )
    for key, want in expected.items():
        got = actual.get(key)
        if got != want:
            problems.append(f"{key}: expected {want!r}, got {got!r}")
    if not actual.get("engine_sequences_match"):
        problems.append("optimized engine fired a different (time, seq) sequence")
    if not actual.get("scan_timeline_identical"):
        problems.append("fused scan timeline diverged from per-chunk timeline")
    batch_campaign = results.get("batch_campaign")
    if batch_campaign is not None and not batch_campaign.get("fingerprint_identical"):
        problems.append("batched campaign fingerprint diverged from scalar run")
    return problems
