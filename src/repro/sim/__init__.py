"""Discrete-event simulation substrate.

Exports the simulator core, coroutine process machinery, deterministic RNG
registry, timing-noise distributions, and the trace recorder.
"""

from repro.sim.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    LogNormalJitter,
    Shifted,
    SpikeMixture,
    Uniform,
    inverse_cdf,
)
from repro.sim.events import Event, EventQueue
from repro.sim.process import (
    CoroutineDriver,
    CpuRequest,
    Signal,
    SimCoroutine,
    SleepRequest,
    WaitRequest,
    cpu,
    run_coroutine,
    sleep,
    wait,
)
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceRecord, TraceRecorder

__all__ = [
    "BoundedPareto",
    "Constant",
    "CoroutineDriver",
    "CpuRequest",
    "Distribution",
    "Event",
    "EventQueue",
    "LogNormalJitter",
    "RngRegistry",
    "Shifted",
    "Signal",
    "SimCoroutine",
    "Simulator",
    "SleepRequest",
    "SpikeMixture",
    "TraceRecord",
    "TraceRecorder",
    "Uniform",
    "WaitRequest",
    "cpu",
    "derive_seed",
    "inverse_cdf",
    "run_coroutine",
    "sleep",
    "wait",
]
