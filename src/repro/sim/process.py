"""Coroutine processes for the simulator.

Simulated activities are written as Python generators that ``yield`` request
objects.  Three requests exist:

``cpu(seconds)``
    Consume CPU time.  Under the rich-OS scheduler this is preemptible and
    contended; under the plain :func:`run_coroutine` driver (used for
    secure-world code that owns its core outright) it simply elapses.

``sleep(seconds)``
    Block without consuming CPU until the interval elapses.

``wait(signal)``
    Block until :meth:`Signal.fire` is called; the fired payload is sent back
    into the generator as the value of the ``yield``.

Keeping the request vocabulary this small lets the same generator body run
both as a normal-world task (scheduled, preemptible) and as bare-metal
secure-world code (uncontended), which mirrors how the paper's measurement
routines run in both worlds.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.simulator import Simulator

#: Type alias for simulated activities.
SimCoroutine = Generator[Any, Any, Any]


class CpuRequest:
    """Ask to consume ``seconds`` of CPU time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"negative cpu request: {seconds}")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover
        return f"cpu({self.seconds!r})"


class SleepRequest:
    """Ask to block for ``seconds`` without consuming CPU."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"negative sleep request: {seconds}")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover
        return f"sleep({self.seconds!r})"


class WaitRequest:
    """Ask to block until a :class:`Signal` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal") -> None:
        self.signal = signal

    def __repr__(self) -> str:  # pragma: no cover
        return f"wait({self.signal!r})"


class CpuBatchRequest:
    """Ask to consume CPU through a pre-computed run of chunk completions.

    ``chunk_times`` are absolute simulated times, non-decreasing, produced
    by replaying the exact per-chunk cost draws a sequence of ``cpu()``
    requests would have made.  Drivers that own their core outright (the
    secure world with NS interrupts blocked) may satisfy the whole run with
    a single :class:`~repro.sim.events.SpanEvent`; contended drivers reject
    it because a batch is only meaningful when nothing can interleave.
    """

    __slots__ = ("chunk_times",)

    def __init__(self, chunk_times) -> None:
        if not chunk_times:
            raise SimulationError("empty cpu batch request")
        self.chunk_times = chunk_times

    def __repr__(self) -> str:  # pragma: no cover
        return f"cpu_batch({len(self.chunk_times)} chunks -> {self.chunk_times[-1]!r})"


def cpu(seconds: float) -> CpuRequest:
    """Request ``seconds`` of CPU time (preemptible under a scheduler)."""
    return CpuRequest(seconds)


def cpu_batch(chunk_times) -> CpuBatchRequest:
    """Request an uncontended run of CPU chunks ending at ``chunk_times[-1]``."""
    return CpuBatchRequest(chunk_times)


def sleep(seconds: float) -> SleepRequest:
    """Request a timed block of ``seconds``."""
    return SleepRequest(seconds)


def wait(signal: "Signal") -> WaitRequest:
    """Request a block until ``signal`` fires."""
    return WaitRequest(signal)


class Signal:
    """A broadcast wake-up channel for coroutine processes.

    ``fire(payload)`` resumes every waiter, delivering ``payload`` as the
    value of their ``yield wait(sig)`` expression.
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_payload")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class CoroutineDriver:
    """Drives a generator on the bare simulator (no CPU contention).

    Used for code that owns its core exclusively — notably the secure world
    while it holds a core, and harness-level orchestration processes.  Both
    ``cpu`` and ``sleep`` requests elapse as plain simulated time.
    """

    __slots__ = ("sim", "gen", "on_done", "result", "finished", "_pending_event")

    def __init__(
        self,
        sim: Simulator,
        gen: SimCoroutine,
        on_done: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.on_done = on_done
        self.result: Any = None
        self.finished = False
        self._pending_event = None

    def start(self) -> "CoroutineDriver":
        """Begin executing the coroutine at the current simulated time."""
        self._advance(None)
        return self

    def _advance(self, send_value: Any) -> None:
        try:
            request = self.gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self.on_done is not None:
                self.on_done(stop.value)
            return
        if isinstance(request, (CpuRequest, SleepRequest)):
            self._pending_event = self.sim.schedule(request.seconds, self._advance, None)
        elif isinstance(request, WaitRequest):
            request.signal.add_waiter(self._advance)
        elif isinstance(request, CpuBatchRequest):
            # Uncontended by construction: one span event covers the run.
            self._pending_event = self.sim.schedule_span(
                request.chunk_times, self._advance, None
            )
        else:
            raise SimulationError(f"coroutine yielded unknown request: {request!r}")


def run_coroutine(
    sim: Simulator,
    gen: SimCoroutine,
    on_done: Optional[Callable[[Any], None]] = None,
) -> CoroutineDriver:
    """Start ``gen`` under a :class:`CoroutineDriver` and return the driver."""
    return CoroutineDriver(sim, gen, on_done).start()
