"""Vectorized batch-trial kernels and bit-exact RNG stream replay.

The campaign batch runner (:mod:`repro.campaign.batch_runner`) executes N
seeds of one configuration with shared, numpy-precomputed randomness.  The
contract that makes ``--batch`` safe is *bit-exactness*: every value a
batched trial consumes must be the very float (or digest) the scalar
engine would have produced, so manifests, detection verdicts and
``(time, seq)`` engine checksums are byte-identical either way.  Three
pieces deliver that:

``uniform_block`` / ``uniform_matrix``
    CPython's Mersenne Twister state is transplanted into a
    ``numpy.random.RandomState`` (both are MT19937 with the same
    double-from-53-bits output path), so one vectorized call reproduces a
    ``random.Random(seed)`` stream exactly — including *pre-advancement*:
    generating a block, consuming part of it, and extending later
    continues the same sequence N independent scalar streams would yield.

``ReplayRandom``
    A ``random.Random`` subclass that serves its uniforms from such
    pre-generated blocks.  ``random()`` (and everything built on it:
    ``uniform``, ``gauss``, every ``Distribution.sample``) is replayed
    bit-exactly; draws with a closed-form or rejection-replayable
    transform get a compiled fast path via :meth:`ReplayRandom.make_draw`.
    Consumers that need raw MT words (``getrandbits`` → ``shuffle``,
    ``randrange``…) cannot be replayed from the float stream — they raise
    :class:`BatchDivergence`, the per-seed divergence detector that ejects
    the trial back to the scalar engine.

``batch_djb2`` / ``batch_linear_hash``
    djb2/sdbm folds over a ``(seeds x bytes)`` uint8 matrix in one uint64
    matmul per 64 KiB chunk — integer arithmetic mod 2^64 is exact, so
    row *i* equals :func:`repro.secure.hashes.djb2` of row *i*'s bytes.

A note on transcendentals: numpy's vectorized ``log``/``exp``/``pow`` are
SIMD polynomial kernels that differ from libm by ~1 ulp, so replay never
uses them for *values* — final transforms run through ``math.exp``/float
``**`` exactly as the scalar samplers do.  The one vectorized use is the
lognormal rejection-acceptance scan, where any near-tie (the only place a
1-ulp drift could flip a decision) is re-checked with ``math.log``.
"""

from __future__ import annotations

import math
import random
import threading
from contextlib import contextmanager
from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.distributions import (
    _NV_MAGICCONST,
    BoundedPareto,
    Constant,
    Distribution,
    LogNormalJitter,
    Shifted,
    SpikeMixture,
    Uniform,
)
from repro.sim.rng import derive_seed

_log = math.log
_exp = math.exp

#: Streams that consume raw MT words (``shuffle``/``randrange``) and
#: therefore cannot be replayed from a float block: SATIN's wake-up slot
#: shuffle and random-walk area picks, plus every fault-injector stream.
#: They always get a plain ``random.Random`` — identical to scalar runs.
REPLAY_BLACKLIST = frozenset({"satin.area_set", "satin.wakeup"})
REPLAY_BLACKLIST_PREFIXES = ("faults.",)

#: Uniforms generated per window extension of one replayed stream.
DEFAULT_WINDOW = 1 << 15

#: Defensive per-stream generation cap — a stream that asks for more than
#: this many uniforms is diverging from any plausible trial profile.
MAX_STREAM_UNIFORMS = 1 << 26


class BatchDivergence(RuntimeError):
    """A batched seed departed lockstep and must rerun on the scalar engine.

    Raised when a replayed stream is asked for entropy the float-block
    replay cannot serve bit-exactly (``getrandbits``-family calls), when a
    stream exceeds its generation budget, or when a forced trip point
    (``trip_after``) is reached in the differential tests.
    """


# ---------------------------------------------------------------------------
# Pre-advanced uniform blocks (MT19937 state transplant)
# ---------------------------------------------------------------------------


def numpy_stream(seed: int) -> "np.random.RandomState":
    """A ``RandomState`` producing exactly ``random.Random(seed)``'s floats.

    Direct numpy seeding is *not* equivalent (numpy routes 1-word seeds
    through ``init_genrand`` while CPython always uses ``init_by_array``),
    so the 624-word state is transplanted verbatim.
    """
    _, state, _ = random.Random(seed).getstate()
    rs = np.random.RandomState()
    rs.set_state(("MT19937", np.array(state[:624], dtype=np.uint32), state[624]))
    return rs


def uniform_block(seed: int, n: int, skip: int = 0) -> np.ndarray:
    """``n`` uniforms of stream ``seed`` starting after ``skip`` draws."""
    rs = numpy_stream(seed)
    if skip:
        rs.random_sample(skip)
    return rs.random_sample(n)


def uniform_matrix(seeds: Sequence[int], n: int, skip: int = 0) -> np.ndarray:
    """A ``(len(seeds), n)`` matrix; row *i* is ``uniform_block(seeds[i], n)``.

    The rows are the *pre-advanced per-seed streams* a batch plan hands to
    its member trials: row *i* is bit-identical to ``n`` consecutive
    ``random.Random(seeds[i]).random()`` calls (after ``skip`` discards).
    """
    out = np.empty((len(seeds), n), dtype=np.float64)
    for i, seed in enumerate(seeds):
        out[i] = uniform_block(int(seed), n, skip=skip)
    return out


# ---------------------------------------------------------------------------
# Batched linear hashing over a (seeds x bytes) matrix
# ---------------------------------------------------------------------------


#: Per-row byte count above which the one-matmul-per-chunk path loses to
#: per-row scalar hashing.  The matmul widens every uint8 chunk to a
#: uint64 copy (an 8x materialization) before the BLAS call, so once a
#: row stops fitting in cache the scalar row loop — which folds each row
#: through the same power table without the cross-row copy — wins by
#: 3-5x; below it the shared-table matmul amortizes across rows and wins
#: by up to an order of magnitude (measured: matmul 1.1-19x faster at
#: <= 4 KiB/row, 0.19-0.28x at >= 16 KiB/row).
BATCH_HASH_MATMUL_MAX_BYTES = 8192


def batch_hash_strategy(rows: int, length: int) -> str:
    """Break-even heuristic: ``"matmul"`` or ``"scalar"`` for this shape."""
    if rows < 2 or length > BATCH_HASH_MATMUL_MAX_BYTES:
        return "scalar"
    return "matmul"


def batch_linear_hash(
    matrix: Any, mult: int, init: int, strategy: str = "auto"
) -> np.ndarray:
    """Row-wise multiplier hash of a ``(rows, bytes)`` uint8 matrix.

    ``strategy`` selects the kernel: ``"matmul"`` runs one uint64 matmul
    against the precomputed descending power table per 64 KiB chunk;
    ``"scalar"`` folds each row through :class:`repro.secure.hashes.
    LinearHasher` (the thread-safe per-row path); ``"auto"`` picks by the
    measured break-even (:func:`batch_hash_strategy`).  Wrap-around
    multiply-add mod 2^64 is exact either way, so
    ``batch_linear_hash(M, 33, 5381)[i] == djb2(M[i].tobytes())``
    regardless of strategy.
    """
    from repro.secure.hashes import _TABLE_LEN, LinearHasher, _pow_table

    data = np.ascontiguousarray(matrix, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError(f"batch_linear_hash needs a 2-D matrix, got ndim={data.ndim}")
    rows, length = data.shape
    if strategy == "auto":
        strategy = batch_hash_strategy(rows, length)
    if strategy not in ("matmul", "scalar"):
        raise ValueError(f"unknown batch hash strategy {strategy!r}")

    if strategy == "scalar":
        out = np.empty(rows, dtype=np.uint64)
        for i in range(rows):
            hasher = LinearHasher(mult, init)
            hasher.update(data[i].tobytes())
            out[i] = hasher.digest()
        return out

    h = np.full(rows, init, dtype=np.uint64)
    for start in range(0, length, _TABLE_LEN):
        chunk = data[:, start : start + _TABLE_LEN].astype(np.uint64)
        n = chunk.shape[1]
        powers = _pow_table(mult)[_TABLE_LEN - n :]
        with np.errstate(over="ignore"):
            h = h * np.uint64(pow(mult, n, 1 << 64)) + chunk @ powers
    return h


def batch_djb2(matrix: Any, strategy: str = "auto") -> np.ndarray:
    """Row-wise djb2 digests of a ``(rows, bytes)`` uint8 matrix."""
    from repro.secure.hashes import DJB2_INIT, DJB2_MULT

    return batch_linear_hash(matrix, DJB2_MULT, DJB2_INIT, strategy=strategy)


# ---------------------------------------------------------------------------
# Lognormal rejection replay (shared per-window tables)
# ---------------------------------------------------------------------------


def _lognorm_accept_map(u: np.ndarray) -> bytes:
    """Acceptance bitmap of CPython's normalvariate rejection loop over ``u``.

    Byte ``i`` is 1 iff the candidate pair starting at uniform ``i``
    accepts: ``z*z/4 <= -log(u2)`` for ``u1 = u[i]``, ``u2 = 1 - u[i+1]``.
    Acceptance is parameter-free, so one map serves every
    ``LogNormalJitter`` on the stream; a draw starting at cursor ``c``
    walks ``c, c+2, c+4, …`` to its first set byte and recomputes the
    accepted ``z`` from the uniforms with exact scalar arithmetic.
    """
    n = u.size
    if n < 2:
        return b""
    u2 = 1.0 - u[1:]
    z = _NV_MAGICCONST * (u[:-1] - 0.5) / u2
    with np.errstate(over="ignore", invalid="ignore"):
        zz4 = z * z / 4.0
        neglog = -np.log(u2)
        accept = zz4 <= neglog
        # numpy's SIMD log drifts from libm by ~1 ulp; only a near-tie can
        # flip the decision, so re-check those few exactly.
        near = np.flatnonzero(
            np.abs(zz4 - neglog) <= 1e-9 * np.maximum(1.0, np.abs(neglog))
        )
    for idx in near:
        accept[idx] = zz4[idx] <= -_log(u2[idx])
    return accept.tobytes()


# ---------------------------------------------------------------------------
# ReplayRandom: a random.Random served from pre-generated blocks
# ---------------------------------------------------------------------------


class ReplayRandom(random.Random):
    """A ``random.Random`` whose float stream is replayed from numpy blocks.

    Everything funnelled through ``random()`` — ``uniform``, ``gauss``,
    every ``Distribution.sample`` — is bit-identical to a plain
    ``random.Random(seed)``.  ``getrandbits`` (and so ``shuffle``,
    ``randrange``, ``choice``…) consumes raw MT words the float replay
    cannot reproduce and raises :class:`BatchDivergence` instead.

    The window is a sliding block: unconsumed tail uniforms are carried
    across extensions so draws straddling a boundary replay correctly.
    """

    def __new__(cls, *args: Any, **kwargs: Any) -> "ReplayRandom":
        # _random.Random.__new__ rejects keyword arguments; bypass it.
        return super().__new__(cls, args[0] if args else None)

    def __init__(
        self,
        seed: int,
        name: str = "",
        initial: Optional[np.ndarray] = None,
        trip_after: Optional[int] = None,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__(seed)
        self.name = name
        #: shared cursor cell; a one-element list so compiled draw closures
        #: can read/advance it without attribute lookups on ``self``.
        self._cur = [0]
        self._rs = numpy_stream(seed)
        self._window = int(window)
        self._trip = trip_after
        self._served = 0  # uniforms consumed in windows already slid past
        self._generated = 0
        self._lognorm = False
        # The window list and acceptance map are stable objects mutated in
        # place on every slide, so draw closures capture them once and
        # never go stale.
        self._ul: List[float] = []
        self._acc = bytearray()
        if initial is not None and len(initial):
            block = np.asarray(initial, dtype=np.float64)
            if self._trip is not None:
                block = block[: self._trip]
            # position the private generator after the pre-advanced block
            self._rs.random_sample(block.size)
            self._generated = block.size
            self._uarr = block
            self._ul[:] = block.tolist()
        else:
            self._uarr = np.empty(0, dtype=np.float64)

    # -- window management ------------------------------------------------

    def _slide(self) -> None:
        """Carry the unconsumed tail and append a fresh window of uniforms."""
        if self._trip is not None and self._generated >= self._trip:
            raise BatchDivergence(
                f"stream {self.name!r}: tripped after {self._generated} uniforms"
            )
        consumed = self._cur[0]
        tail = self._uarr[consumed:]
        # If nothing was consumed since the last slide, one draw needs more
        # than a whole window — double the fresh allotment.
        fresh_n = self._window if consumed or not self._generated else self._uarr.size
        if self._trip is not None:
            fresh_n = min(fresh_n, max(1, self._trip - self._generated))
        if self._generated + fresh_n > MAX_STREAM_UNIFORMS:
            raise BatchDivergence(
                f"stream {self.name!r}: exceeded {MAX_STREAM_UNIFORMS} uniforms"
            )
        fresh = self._rs.random_sample(fresh_n)
        self._generated += fresh_n
        self._served += consumed
        self._cur[0] = 0
        self._uarr = np.concatenate((tail, fresh)) if tail.size else fresh
        self._ul[:] = self._uarr.tolist()
        if self._lognorm:
            self._acc[:] = _lognorm_accept_map(self._uarr)

    @property
    def uniforms_served(self) -> int:
        """Total uniforms consumed from this stream so far."""
        return self._served + self._cur[0]

    # -- the random.Random surface ---------------------------------------

    def random(self) -> float:
        cur = self._cur
        i = cur[0]
        try:
            u = self._ul[i]
        except IndexError:
            self._slide()
            i = 0
            u = self._ul[0]
        cur[0] = i + 1
        return u

    def getrandbits(self, k: int) -> int:
        raise BatchDivergence(
            f"stream {self.name!r}: getrandbits({k}) needs raw MT words the "
            "float replay cannot serve bit-exactly"
        )

    def seed(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover
        # called by random.Random.__init__ before our state exists; once a
        # replay stream is live, reseeding would silently desync the block.
        if hasattr(self, "_rs"):
            raise BatchDivergence(f"stream {self.name!r}: reseeded mid-replay")
        super().seed(*args, **kwargs)

    # -- compiled fast draws ----------------------------------------------

    def _enable_lognorm(self) -> None:
        if not self._lognorm:
            self._lognorm = True
            self._acc[:] = _lognorm_accept_map(self._uarr)

    def _lognorm_const(self, dist: LogNormalJitter) -> float:
        """The (clipped) value of a sigma==0 lognormal: zero uniforms."""
        value = dist._mean
        if dist.lo_clip is not None and value < dist.lo_clip:
            value = dist.lo_clip
        if dist.hi_clip is not None and value > dist.hi_clip:
            value = dist.hi_clip
        return value

    def _step(self, dist: Distribution) -> Optional[Callable[[int], Tuple[float, int]]]:
        """A replay step ``fn(i) -> (value, next_cursor)`` for ``dist``.

        The composition protocol behind :meth:`make_draw`: raises
        ``IndexError`` when the window is too short to complete the draw
        starting at ``i``; returns ``None`` for unknown distribution types.
        The captured window lists are mutated in place by ``_slide``, so
        the closures never go stale.
        """
        if isinstance(dist, Constant):
            value = dist.value

            def step(i: int, _v: float = value) -> Tuple[float, int]:
                return _v, i

            return step
        if isinstance(dist, Uniform):
            lo, span, ul = dist.lo, dist.hi - dist.lo, self._ul

            def step(i: int) -> Tuple[float, int]:
                return lo + span * ul[i], i + 1

            return step
        if isinstance(dist, BoundedPareto):
            norm, inva, xm = 1.0 - dist._tail_at_cap, 1.0 / dist.alpha, dist.xm
            ul = self._ul

            def step(i: int) -> Tuple[float, int]:
                raw = ul[i] * norm
                return xm / ((1.0 - raw) ** inva), i + 1

            return step
        if isinstance(dist, LogNormalJitter):
            if dist.sigma == 0.0:
                value = self._lognorm_const(dist)

                def step(i: int, _v: float = value) -> Tuple[float, int]:
                    return _v, i

                return step
            self._enable_lognorm()
            mu, sigma = dist.mu, dist.sigma
            lo_clip, hi_clip = dist.lo_clip, dist.hi_clip
            acc, ul = self._acc, self._ul

            def step(i: int) -> Tuple[float, int]:
                while not acc[i]:  # IndexError past map end -> refill
                    i += 2
                u2 = 1.0 - ul[i + 1]
                z = _NV_MAGICCONST * (ul[i] - 0.5) / u2
                value = _exp(mu + z * sigma)
                if lo_clip is not None and value < lo_clip:
                    value = lo_clip
                if hi_clip is not None and value > hi_clip:
                    value = hi_clip
                return value, i + 2

            return step
        if isinstance(dist, SpikeMixture):
            base_step = self._step(dist.base)
            spike_step = self._step(dist.spike)
            if base_step is None or spike_step is None:
                return None
            p, ul = dist.spike_prob, self._ul

            def step(i: int) -> Tuple[float, int]:
                if ul[i] < p:
                    return spike_step(i + 1)
                return base_step(i + 1)

            return step
        if isinstance(dist, Shifted):
            inner_step = self._step(dist.inner)
            if inner_step is None:
                return None
            offset = dist.offset

            def step(i: int) -> Tuple[float, int]:
                value, j = inner_step(i)
                return value + offset, j

            return step
        return None

    def make_draw(self, dist: Distribution) -> Callable[[], float]:
        """A zero-argument sampler bit-identical to ``dist.sample(self)``.

        The two hottest shapes (lognormal jitter and uniform) get merged
        single-frame closures over the shared cursor cell; everything else
        composes through :meth:`_step`, and unknown distribution types fall
        back to ``dist.sample(self)`` — still bit-exact through the
        overridden ``random()``.
        """
        cur, slide = self._cur, self._slide
        if isinstance(dist, LogNormalJitter) and dist.sigma != 0.0:
            self._enable_lognorm()
            mu, sigma = dist.mu, dist.sigma
            lo_clip, hi_clip = dist.lo_clip, dist.hi_clip
            acc, ul = self._acc, self._ul

            def draw() -> float:
                i = cur[0]
                while True:
                    try:
                        while not acc[i]:
                            i += 2
                        break
                    except IndexError:
                        slide()
                        i = 0
                cur[0] = i + 2
                u2 = 1.0 - ul[i + 1]
                z = _NV_MAGICCONST * (ul[i] - 0.5) / u2
                value = _exp(mu + z * sigma)
                if lo_clip is not None and value < lo_clip:
                    value = lo_clip
                if hi_clip is not None and value > hi_clip:
                    value = hi_clip
                return value

            return draw
        if isinstance(dist, Uniform):
            lo, span, ul = dist.lo, dist.hi - dist.lo, self._ul

            def draw() -> float:
                i = cur[0]
                try:
                    u = ul[i]
                except IndexError:
                    slide()
                    i = 0
                    u = ul[0]
                cur[0] = i + 1
                return lo + span * u

            return draw
        if isinstance(dist, SpikeMixture):
            if (
                isinstance(dist.base, LogNormalJitter)
                and dist.base.sigma != 0.0
                and isinstance(dist.spike, BoundedPareto)
            ):
                # The calibrated visibility-delay shape — the single
                # hottest replay stream — gets a fully inlined draw.
                self._enable_lognorm()
                p, ul, acc = dist.spike_prob, self._ul, self._acc
                base = dist.base
                mu, sigma = base.mu, base.sigma
                lo_clip, hi_clip = base.lo_clip, base.hi_clip
                spike = dist.spike
                norm = 1.0 - spike._tail_at_cap
                inva, xm = 1.0 / spike.alpha, spike.xm

                def draw() -> float:
                    i = cur[0]
                    while True:
                        try:
                            if ul[i] < p:
                                raw = ul[i + 1] * norm
                                cur[0] = i + 2
                                return xm / ((1.0 - raw) ** inva)
                            j = i + 1
                            while not acc[j]:
                                j += 2
                            break
                        except IndexError:
                            slide()
                            i = 0
                    cur[0] = j + 2
                    u2 = 1.0 - ul[j + 1]
                    z = _NV_MAGICCONST * (ul[j] - 0.5) / u2
                    value = _exp(mu + z * sigma)
                    if lo_clip is not None and value < lo_clip:
                        value = lo_clip
                    if hi_clip is not None and value > hi_clip:
                        value = hi_clip
                    return value

                return draw
            base_step = self._step(dist.base)
            spike_step = self._step(dist.spike)
            if base_step is not None and spike_step is not None:
                p, ul = dist.spike_prob, self._ul

                def draw() -> float:
                    i = cur[0]
                    while True:
                        try:
                            if ul[i] < p:
                                value, j = spike_step(i + 1)
                            else:
                                value, j = base_step(i + 1)
                            break
                        except IndexError:
                            slide()
                            i = 0
                    cur[0] = j
                    return value

                return draw
        step = self._step(dist)
        if step is None:
            return partial(dist.sample, self)

        def draw() -> float:
            while True:
                try:
                    value, j = step(cur[0])
                    break
                except IndexError:
                    slide()
            cur[0] = j
            return value

        return draw


def bind_sampler(dist: Distribution, rng: random.Random) -> Callable[[], float]:
    """A zero-argument sampler for ``dist`` on ``rng``.

    Hot draw sites bind this once at setup: on a plain ``random.Random``
    it is ``partial(dist.sample, rng)`` (the scalar path, one frame fewer
    per draw); on a :class:`ReplayRandom` it is the compiled replay draw.
    Either way the produced values are bit-identical.
    """
    if isinstance(rng, ReplayRandom):
        return rng.make_draw(dist)
    return partial(dist.sample, rng)


# ---------------------------------------------------------------------------
# Replay plans: scoped stream-factory installation
# ---------------------------------------------------------------------------


def replayable(name: str) -> bool:
    """Whether stream ``name`` may be replayed from a float block."""
    if name in REPLAY_BLACKLIST:
        return False
    return not any(name.startswith(p) for p in REPLAY_BLACKLIST_PREFIXES)


class ReplayPlan:
    """Per-seed replay wiring for one batched trial.

    ``blocks`` maps ``(master_seed, stream_name)`` to a pre-generated
    uniform block (a row of :func:`uniform_matrix`); streams without a
    block generate lazily from their transplanted generator.  Installing
    the plan (:func:`use_replay`) makes every
    :class:`~repro.sim.rng.RngRegistry` built inside the scope serve
    :class:`ReplayRandom` streams for replayable names and plain
    ``random.Random`` for blacklisted ones.
    """

    def __init__(
        self,
        blocks: Optional[Dict[Tuple[int, str], np.ndarray]] = None,
        trip_after: Optional[int] = None,
    ) -> None:
        self.blocks = blocks if blocks is not None else {}
        self.trip_after = trip_after
        #: streams ejected with BatchDivergence are recorded here by the
        #: batch runner for the manifest's ejection log.
        self.created: List[str] = []

    def make_stream(self, master_seed: int, name: str, derived_seed: int) -> random.Random:
        if not replayable(name):
            return random.Random(derived_seed)
        # blocks are single-use: a second registry for the same (seed,
        # stream) — e.g. a trial building two machines — regenerates from
        # scratch, which yields the identical sequence anyway.
        initial = self.blocks.pop((master_seed, name), None)
        self.created.append(name)
        return ReplayRandom(
            derived_seed, name=name, initial=initial, trip_after=self.trip_after
        )


_active = threading.local()


def active_replay() -> Optional[ReplayPlan]:
    """The replay plan installed for the current thread, if any."""
    return getattr(_active, "plan", None)


@contextmanager
def use_replay(plan: ReplayPlan):
    """Install ``plan`` as the thread's active replay plan."""
    from repro.sim import rng as rng_module

    previous = getattr(_active, "plan", None)
    _active.plan = plan
    rng_module.push_stream_factory(plan.make_stream)
    try:
        yield plan
    finally:
        _active.plan = previous
        rng_module.pop_stream_factory()


def plan_blocks(
    seeds: Sequence[int],
    stream_names: Iterable[str],
    block_size: int = 4096,
) -> Dict[Tuple[int, str], np.ndarray]:
    """Pre-advance the hot streams of every seed in one pass per stream.

    For each stream name, one :func:`uniform_matrix` call produces the
    ``(seeds x block_size)`` matrix whose rows become the member trials'
    initial windows — the batched draw precompute of the batch runner.
    """
    out: Dict[Tuple[int, str], np.ndarray] = {}
    for name in stream_names:
        if not replayable(name):
            continue
        derived = [derive_seed(int(seed), name) for seed in seeds]
        matrix = uniform_matrix(derived, block_size)
        for row, seed in enumerate(seeds):
            out[(int(seed), name)] = matrix[row]
    return out
