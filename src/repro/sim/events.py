"""Event primitives for the discrete-event simulator.

The simulator core is a classic calendar queue built on :mod:`heapq`.  Every
scheduled callback is wrapped in an :class:`Event` that doubles as a
cancellation token: cancelled events stay in the heap but are skipped when
popped (lazy deletion), which keeps cancellation O(1).

The heap itself stores ``(time, seq, event)`` tuples rather than the events
themselves, so every sift comparison is a C-level tuple compare instead of a
Python ``Event.__lt__`` call.  ``seq`` is unique, so the comparison never
reaches the third element and events are never compared to each other during
heap maintenance.

Live-count accounting is exact at all times: ``cancel()`` debits the owning
queue immediately instead of deferring the debit to whichever of ``pop()`` /
``peek_time()`` happens to sweep the corpse out of the heap first, so
``len(queue)`` always equals the number of events that can still fire.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Shared empty argument tuple; callbacks without args all reference this one
#: object instead of each carrying their own.
EMPTY_ARGS: Tuple[Any, ...] = ()


class Event:
    """A scheduled callback, usable as a cancellation token.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so that events scheduled earlier at the same timestamp fire
    first, giving the simulation a deterministic total order.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = EMPTY_ARGS,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        #: the EventQueue whose live count this event is part of, or None
        #: once popped / cancelled / constructed outside a queue.
        self._owner: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent; safe after firing."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._live -= 1

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} seq={self.seq} {name} {state}>"


class SpanEvent(Event):
    """An event standing in for a run of per-chunk events with known times.

    A fused secure-world scan schedules one :class:`SpanEvent` at the time
    its *last* chunk would have completed, but remembers every intermediate
    chunk-completion time in ``chunk_times`` (ascending, absolute, ending at
    ``self.time``).  The simulator charges those chunks to whichever
    ``run()`` window they land in, so event accounting stays identical to
    the unfused per-chunk engine.
    """

    __slots__ = ("chunk_times", "accounted")

    def __init__(
        self,
        chunk_times: Sequence[float],
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = EMPTY_ARGS,
    ) -> None:
        super().__init__(chunk_times[-1], seq, callback, args)
        self.chunk_times: Tuple[float, ...] = tuple(chunk_times)
        #: how many leading chunks have already been charged to a run window.
        self.accounted = 0

    @property
    def remaining_weight(self) -> int:
        """Chunks not yet charged to any run window."""
        return len(self.chunk_times) - self.accounted

    def account_until(self, limit: float) -> int:
        """Charge every unaccounted chunk at time <= ``limit``; return count."""
        times = self.chunk_times
        index = self.accounted
        end = len(times)
        while index < end and times[index] <= limit:
            index += 1
        charged = index - self.accounted
        self.accounted = index
        return charged


class EventQueue:
    """Time-ordered queue of :class:`Event` objects with lazy deletion."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        #: heap of (time, seq, event); seq is unique so comparisons stay in C.
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0

    def push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...] = EMPTY_ARGS) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args or EMPTY_ARGS)
        event._owner = self
        heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def push_batch(
        self,
        items: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
        base: Optional[float] = None,
    ) -> List[Event]:
        """Schedule many ``(time, callback, args)`` entries in one pass.

        With ``base`` given the first element of each item is a *delay*
        added to ``base`` (and validated non-negative); otherwise it is an
        absolute time.  When the batch rivals the heap in size the entries
        are appended and re-heapified in one O(n) pass instead of n
        O(log n) sifts.
        """
        seq = self._seq
        entries: List[Tuple[float, int, Event]] = []
        entry_append = entries.append
        new = Event.__new__
        if base is None:
            for time, callback, args in items:
                if time != time:
                    raise SimulationError("event time is NaN")
                event = new(Event)
                event.time = time
                event.seq = seq
                event.callback = callback
                event.args = args or EMPTY_ARGS
                event.cancelled = False
                event.fired = False
                event._owner = self
                entry_append((time, seq, event))
                seq += 1
        else:
            for delay, callback, args in items:
                if not delay >= 0:  # rejects negatives and NaN alike
                    raise SimulationError(
                        f"cannot schedule into the past (delay={delay})"
                    )
                time = base + delay
                event = new(Event)
                event.time = time
                event.seq = seq
                event.callback = callback
                event.args = args or EMPTY_ARGS
                event.cancelled = False
                event.fired = False
                event._owner = self
                entry_append((time, seq, event))
                seq += 1
        self._seq = seq
        self._live += len(entries)
        heap = self._heap
        if len(entries) > len(heap) >> 3:
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        return [entry[2] for entry in entries]

    def push_span(
        self,
        chunk_times: Sequence[float],
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = EMPTY_ARGS,
    ) -> SpanEvent:
        """Schedule a :class:`SpanEvent` covering ``chunk_times``."""
        last = chunk_times[-1]
        if last != last:
            raise SimulationError("event time is NaN")
        seq = self._seq
        self._seq = seq + 1
        event = SpanEvent(chunk_times, seq, callback, args or EMPTY_ARGS)
        event._owner = self
        heappush(self._heap, (last, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                continue
            event._owner = None
            self._live -= 1
            return event
        return None

    def pop_next(self, limit: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event at time <= ``limit`` (peek + pop fused).

        Events beyond ``limit`` stay queued; cancelled entries encountered on
        the way are swept out of the heap (their live count was already
        debited by :meth:`Event.cancel`).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heappop(heap)
                continue
            if limit is not None and head[0] > limit:
                return None
            heappop(heap)
            event._owner = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heappop(heap)
                continue
            return head[0]
        return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
