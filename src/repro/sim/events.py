"""Event primitives for the discrete-event simulator.

The simulator core is a classic calendar queue built on :mod:`heapq`.  Every
scheduled callback is wrapped in an :class:`Event` that doubles as a
cancellation token: cancelled events stay in the heap but are skipped when
popped (lazy deletion), which keeps cancellation O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback, usable as a cancellation token.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so that events scheduled earlier at the same timestamp fire
    first, giving the simulation a deterministic total order.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent; safe after firing."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} seq={self.seq} {name} {state}>"


class EventQueue:
    """Time-ordered queue of :class:`Event` objects with lazy deletion."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._live -= 1
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._live -= 1
        if not heap:
            self._live = 0
            return None
        return heap[0].time

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
