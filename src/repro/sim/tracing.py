"""Structured tracing for simulation runs.

The trace is the simulator's flight recorder: world switches, introspection
rounds, prober detections, attack hide/restore transitions all leave records
here.  Experiments and tests query it instead of scraping stdout, and the
telemetry layer (:mod:`repro.obs.trace_export`) streams it to JSONL and
Perfetto.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

#: A listener is detached after this many *consecutive* failures.
MAX_LISTENER_FAILURES = 3


class TraceRecord:
    """One timestamped trace entry."""

    __slots__ = ("time", "category", "message", "fields")

    def __init__(self, time: float, category: str, message: str, fields: Dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.message = message
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.9f}] {self.category}: {self.message} {extra}".rstrip()


class TraceRecorder:
    """Bounded in-memory trace sink with per-category filtering.

    ``maxlen`` bounds memory for long simulations; the default keeps the
    most recent million records which is ample for every experiment here.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the ``trace.listener_errors`` counter when listener dispatch fails.
    """

    def __init__(
        self,
        maxlen: int = 1_000_000,
        enabled: bool = True,
        metrics: Optional[Any] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics
        self._records: Deque[TraceRecord] = deque(maxlen=maxlen)
        self._category_counts: Dict[str, int] = {}
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._listener_failures: Dict[int, int] = {}
        self._muted: set = set()
        self._dropped: set = set()
        self.listener_errors = 0

    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record one entry (no-op when disabled or the category is dropped).

        A *muted* category still accumulates its lifetime count — metrics
        derived from :meth:`count` stay truthful — but retains no record
        and fires no listeners.  A *dropped* category vanishes entirely.
        """
        if not self.enabled or category in self._dropped:
            return
        self._category_counts[category] = self._category_counts.get(category, 0) + 1
        if category in self._muted:
            return
        record = TraceRecord(time, category, message, fields)
        self._records.append(record)
        self._dispatch(record)

    def _dispatch(self, record: TraceRecord) -> None:
        """Run listeners, absorbing their failures.

        A listener raising must never kill the event loop mid-simulation:
        the exception is swallowed, counted in ``trace.listener_errors``,
        and the listener is detached after
        :data:`MAX_LISTENER_FAILURES` consecutive failures.
        """
        if not self._listeners:
            return
        detach: List[Callable[[TraceRecord], None]] = []
        for listener in list(self._listeners):
            try:
                listener(record)
            except Exception:
                self.listener_errors += 1
                if self.metrics is not None:
                    self.metrics.counter("trace.listener_errors").inc()
                key = id(listener)
                failures = self._listener_failures.get(key, 0) + 1
                self._listener_failures[key] = failures
                if failures >= MAX_LISTENER_FAILURES:
                    detach.append(listener)
            else:
                self._listener_failures.pop(id(listener), None)
        for listener in detach:
            self.remove_listener(listener)

    def mute(self, category: str) -> None:
        """Stop retaining records of ``category``; counts keep accumulating."""
        self._muted.add(category)

    def unmute(self, category: str) -> None:
        self._muted.discard(category)

    def drop(self, category: str) -> None:
        """Discard ``category`` entirely: no records, no counts, no listeners."""
        self._dropped.add(category)

    def undrop(self, category: str) -> None:
        self._dropped.discard(category)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every future record."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Detach ``listener`` (no-op if it is not attached)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass
        self._listener_failures.pop(id(listener), None)

    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records, optionally filtered by category."""
        if category is None:
            return iter(list(self._records))
        return (r for r in list(self._records) if r.category == category)

    def count(self, category: str) -> int:
        """Lifetime count of records emitted in ``category``."""
        return self._category_counts.get(category, 0)

    def last(self, category: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent retained record (of ``category`` if given)."""
        if category is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def clear(self) -> None:
        self._records.clear()
        self._category_counts.clear()

    def __len__(self) -> int:
        return len(self._records)
