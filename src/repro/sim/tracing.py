"""Structured tracing for simulation runs.

The trace is the simulator's flight recorder: world switches, introspection
rounds, prober detections, attack hide/restore transitions all leave records
here.  Experiments and tests query it instead of scraping stdout.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


class TraceRecord:
    """One timestamped trace entry."""

    __slots__ = ("time", "category", "message", "fields")

    def __init__(self, time: float, category: str, message: str, fields: Dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.message = message
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.9f}] {self.category}: {self.message} {extra}".rstrip()


class TraceRecorder:
    """Bounded in-memory trace sink with per-category filtering.

    ``maxlen`` bounds memory for long simulations; the default keeps the
    most recent million records which is ample for every experiment here.
    """

    def __init__(self, maxlen: int = 1_000_000, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: Deque[TraceRecord] = deque(maxlen=maxlen)
        self._category_counts: Dict[str, int] = {}
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._muted: set = set()

    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, message: str, **fields: Any) -> None:
        """Record one entry (no-op when disabled or the category is muted)."""
        if not self.enabled or category in self._muted:
            return
        record = TraceRecord(time, category, message, fields)
        self._records.append(record)
        self._category_counts[category] = self._category_counts.get(category, 0) + 1
        for listener in self._listeners:
            listener(record)

    def mute(self, category: str) -> None:
        """Drop future records of ``category`` (counts stop accumulating)."""
        self._muted.add(category)

    def unmute(self, category: str) -> None:
        self._muted.discard(category)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every future record."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records, optionally filtered by category."""
        if category is None:
            return iter(list(self._records))
        return (r for r in list(self._records) if r.category == category)

    def count(self, category: str) -> int:
        """Lifetime count of records emitted in ``category``."""
        return self._category_counts.get(category, 0)

    def last(self, category: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent retained record (of ``category`` if given)."""
        if category is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def clear(self) -> None:
        self._records.clear()
        self._category_counts.clear()

    def __len__(self) -> int:
        return len(self._records)
