"""The discrete-event simulator core.

A :class:`Simulator` owns the clock and the event queue.  Everything else in
this library — cores, timers, schedulers, the secure monitor — expresses its
behaviour as callbacks scheduled here.  Time is a float in *seconds* of
simulated wall-clock time; the clock only moves when events fire.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


class Simulator:
    """Single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "hello")
    >>> sim.run()
    >>> (sim.now, out)
    (1.5, ['hello'])
    """

    __slots__ = (
        "now", "_queue", "_running", "_events_fired", "stop_requested",
        "metrics",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self.stop_requested = False
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: each :meth:`run` call reports its event volume and span.
        self.metrics = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue produced an out-of-order event")
        self.now = event.time
        event.fired = True
        self._events_fired += 1
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stop().

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        see a monotonic clock.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self.stop_requested = False
        started_at = self.now
        fired = 0
        try:
            while not self.stop_requested:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self.stop_requested:
            self.now = until
        if self.metrics is not None:
            self.metrics.counter("sim.events").inc(fired)
            self.metrics.histogram("sim.events_per_run").observe(float(fired))
            self.metrics.histogram("sim.run_span_seconds").observe(
                self.now - started_at
            )
            self.metrics.gauge("sim.pending_events").set(
                float(self.pending_events)
            )

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` seconds of simulated time."""
        self.run(until=self.now + duration, max_events=max_events)

    def stop(self) -> None:
        """Request the current :meth:`run` loop to return after this event."""
        self.stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of events executed since construction."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next live event, or None."""
        return self._queue.peek_time()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.9f} pending={self.pending_events}>"
