"""The discrete-event simulator core.

A :class:`Simulator` owns the clock and the event queue.  Everything else in
this library — cores, timers, schedulers, the secure monitor — expresses its
behaviour as callbacks scheduled here.  Time is a float in *seconds* of
simulated wall-clock time; the clock only moves when events fire.

The run loop is the hottest code in the repository: every scheduler quantum,
timer tick, probe read and scan chunk passes through it.  It therefore pops
the heap exactly once per event (no separate peek), keeps the queue methods
in locals, and resolves metric handles once when a registry is attached
instead of by name on every ``run()``.

Event accounting understands :class:`~repro.sim.events.SpanEvent`: a fused
secure-world scan schedules one heap entry for many chunks, and the chunks
are charged to whichever ``run()`` window their recorded times land in — so
``events_fired`` and the ``sim.*`` metrics stay bit-identical to the
one-event-per-chunk engine even when a window boundary slices a scan.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue, SpanEvent


class Simulator:
    """Single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "hello")
    >>> sim.run()
    >>> (sim.now, out)
    (1.5, ['hello'])
    """

    __slots__ = (
        "now", "_queue", "_running", "_events_fired", "stop_requested",
        "_metrics", "_inflight_spans", "_fire_hook",
        "_m_events", "_m_events_per_run", "_m_run_span", "_m_pending",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self.stop_requested = False
        self._metrics = None
        self._fire_hook = None
        self._m_events = None
        self._m_events_per_run = None
        self._m_run_span = None
        self._m_pending = None
        #: SpanEvents scheduled but not yet fired; their chunk accounting is
        #: settled incrementally at run-window boundaries.
        self._inflight_spans: List[SpanEvent] = []

    # ------------------------------------------------------------------
    # Metrics attachment
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        each :meth:`run` call reports its event volume and span."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        if registry is not None:
            self._m_events = registry.counter("sim.events")
            self._m_events_per_run = registry.histogram("sim.events_per_run")
            self._m_run_span = registry.histogram("sim.run_span_seconds")
            self._m_pending = registry.gauge("sim.pending_events")

    def set_fire_hook(
        self, hook: Optional[Callable[[float, int], None]]
    ) -> None:
        """Install a per-event observer called ``hook(time, seq)``.

        ``seq`` is the cumulative :attr:`events_fired` value after the
        event (span chunks charge their full weight), so the ``(time,
        seq)`` stream is a bit-exact witness of the executed timeline —
        the chaos harness folds it into a determinism checksum.  One
        attribute test per event when installed; ``None`` (the default)
        restores the zero-cost baseline path.
        """
        self._fire_hook = hook

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback, args)

    def schedule_batch(
        self,
        items: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> List[Event]:
        """Schedule many ``(delay, callback, args)`` entries in one call.

        One fused validate/create/insert pass in
        :meth:`EventQueue.push_batch` (with an O(n) heapify fast path for
        large batches) keeps per-event overhead well below a ``schedule()``
        loop; returned events are in input order.
        """
        return self._queue.push_batch(items, base=self.now)

    def schedule_span(
        self,
        chunk_times: Sequence[float],
        callback: Callable[..., Any],
        *args: Any,
    ) -> SpanEvent:
        """Schedule one event covering a run of chunk completions.

        ``chunk_times`` are absolute, non-decreasing times; the callback
        fires once at ``chunk_times[-1]`` but every chunk is charged to the
        run window its time lands in, exactly as if each had been its own
        event.
        """
        if not chunk_times:
            raise SimulationError("schedule_span needs at least one chunk time")
        previous = self.now
        for time in chunk_times:
            if time < previous:
                raise SimulationError(
                    f"span chunk times must be non-decreasing from now "
                    f"(got {time} after {previous})"
                )
            previous = time
        event = self._queue.push_span(chunk_times, callback, args)
        self._inflight_spans.append(event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue produced an out-of-order event")
        self.now = event.time
        event.fired = True
        spans = self._inflight_spans
        if spans and isinstance(event, SpanEvent):
            spans.remove(event)
            self._events_fired += event.remaining_weight
            event.accounted = len(event.chunk_times)
        else:
            self._events_fired += 1
        if self._fire_hook is not None:
            self._fire_hook(self.now, self._events_fired)
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stop().

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        see a monotonic clock.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self.stop_requested = False
        started_at = self.now
        fired = 0
        pop_next = self._queue.pop_next
        spans = self._inflight_spans
        # Chunk-accounting limit for spans still pending when the loop
        # exits: events up to `until` would have fired at a window boundary,
        # but only events up to `now` had fired at a stop()/max_events exit.
        exit_limit = until
        try:
            while True:
                if self.stop_requested:
                    exit_limit = self.now
                    break
                if max_events is not None and fired >= max_events:
                    exit_limit = self.now
                    break
                event = pop_next(until)
                if event is None:
                    break
                time = event.time
                if time < self.now:
                    raise SimulationError("event queue produced an out-of-order event")
                self.now = time
                event.fired = True
                if spans and isinstance(event, SpanEvent):
                    spans.remove(event)
                    weight = event.remaining_weight
                    event.accounted = len(event.chunk_times)
                    fired += weight
                    self._events_fired += weight
                else:
                    fired += 1
                    self._events_fired += 1
                if self._fire_hook is not None:
                    self._fire_hook(time, self._events_fired)
                event.callback(*event.args)
        finally:
            self._running = False
        if spans and exit_limit is not None:
            kept: List[SpanEvent] = []
            for span in spans:
                if span.cancelled:
                    continue
                charged = span.account_until(exit_limit)
                if charged:
                    fired += charged
                    self._events_fired += charged
                kept.append(span)
            spans[:] = kept
        if until is not None and self.now < until and not self.stop_requested:
            self.now = until
        if self._metrics is not None:
            self._m_events.inc(fired)
            self._m_events_per_run.observe(float(fired))
            self._m_run_span.observe(self.now - started_at)
            self._m_pending.set(float(len(self._queue)))

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` seconds of simulated time."""
        self.run(until=self.now + duration, max_events=max_events)

    def stop(self) -> None:
        """Request the current :meth:`run` loop to return after this event."""
        self.stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of events executed since construction.

        Chunks folded into a fired or window-straddling
        :class:`~repro.sim.events.SpanEvent` count individually, so this
        matches the one-event-per-chunk engine.
        """
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next live event, or None."""
        return self._queue.peek_time()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.9f} pending={self.pending_events}>"
