"""Timing-noise distributions used throughout the simulation.

The paper's measurements are noisy in characteristic ways:

* per-byte hash/snapshot costs vary a few percent around a mean (Table I);
* the world-switch cost sits in a bounded range (Section IV-B1);
* cross-core buffer reads are usually fast but occasionally suffer large
  delays up to ~1.3e-3 s (Section IV-B2) — a heavy right tail that makes the
  *maximum* observed probing threshold grow with the probing period.

Each distribution exposes ``sample`` and, where possible, ``cdf`` so the
order-statistics fast path (:mod:`repro.analysis.orderstats`) can sample the
maximum of *n* draws without materialising them.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import ConfigurationError

#: CPython's ``random.NV_MAGICCONST``, duplicated so the inlined
#: normalvariate rejection loop below is draw-for-draw identical to
#: ``Random.lognormvariate`` while skipping two call frames per sample.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)
_log = math.log
_exp = math.exp


class Distribution:
    """Protocol-ish base class; subclasses implement :meth:`sample`."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def cdf(self, x: float) -> float:
        """P(X <= x).  Optional; required by the order-statistics fast path."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic CDF")

    @property
    def mean(self) -> float:
        raise NotImplementedError

    def support(self) -> "tuple[float, float]":
        """A finite (lo, hi) bracket containing all probability mass."""
        raise NotImplementedError


class Constant(Distribution):
    """Degenerate distribution at ``value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    @property
    def mean(self) -> float:
        return self.value

    def support(self) -> "tuple[float, float]":
        return (self.value, self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constant({self.value!r})"


class Uniform(Distribution):
    """Uniform on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if hi < lo:
            raise ConfigurationError(f"Uniform: hi < lo ({hi} < {lo})")
        self.lo = float(lo)
        self.hi = float(hi)

    def sample(self, rng: random.Random) -> float:
        # Same arithmetic as rng.uniform(lo, hi), one call frame fewer on
        # the cross-core-read hot path.
        return self.lo + (self.hi - self.lo) * rng.random()

    def cdf(self, x: float) -> float:
        if x <= self.lo:
            return 0.0
        if x >= self.hi:
            return 1.0
        if self.hi == self.lo:
            return 1.0
        return (x - self.lo) / (self.hi - self.lo)

    @property
    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def support(self) -> "tuple[float, float]":
        return (self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Uniform({self.lo!r}, {self.hi!r})"


class LogNormalJitter(Distribution):
    """A lognormal centred so its mean equals ``mean``.

    ``sigma`` is the shape parameter of the underlying normal.  Models the
    mild multiplicative noise of per-byte costs and scheduler latencies.
    Samples may be clipped to ``[lo_clip, hi_clip]`` when given, mirroring a
    measurement that cannot physically leave a band.
    """

    def __init__(
        self,
        mean: float,
        sigma: float,
        lo_clip: Optional[float] = None,
        hi_clip: Optional[float] = None,
    ) -> None:
        if mean <= 0:
            raise ConfigurationError(f"LogNormalJitter: mean must be > 0, got {mean}")
        if sigma < 0:
            raise ConfigurationError(f"LogNormalJitter: sigma must be >= 0, got {sigma}")
        self._mean = float(mean)
        self.sigma = float(sigma)
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  mu below.
        self.mu = math.log(mean) - 0.5 * sigma * sigma
        self.lo_clip = lo_clip
        self.hi_clip = hi_clip

    def sample(self, rng: random.Random) -> float:
        if self.sigma == 0.0:
            value = self._mean
        else:
            # Inlined rng.lognormvariate(self.mu, self.sigma): the per-byte
            # cost path draws this hundreds of thousands of times per trial,
            # and the extra call frames dominate the actual math.  The
            # rejection loop below consumes the same uniforms and performs
            # the same arithmetic, so sampled values are bit-identical.
            uniform = rng.random
            while True:
                u1 = uniform()
                u2 = 1.0 - uniform()
                z = _NV_MAGICCONST * (u1 - 0.5) / u2
                if z * z / 4.0 <= -_log(u2):
                    break
            value = _exp(self.mu + z * self.sigma)
        if self.lo_clip is not None and value < self.lo_clip:
            value = self.lo_clip
        if self.hi_clip is not None and value > self.hi_clip:
            value = self.hi_clip
        return value

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        if self.hi_clip is not None and x >= self.hi_clip:
            return 1.0
        if self.lo_clip is not None and x < self.lo_clip:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if x >= self._mean else 0.0
        z = (math.log(x) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    @property
    def mean(self) -> float:
        return self._mean

    def support(self) -> "tuple[float, float]":
        lo = self.lo_clip if self.lo_clip is not None else 0.0
        if self.hi_clip is not None:
            hi = self.hi_clip
        else:
            # 8 sigma covers everything we will ever sample.
            hi = math.exp(self.mu + 8.0 * max(self.sigma, 1e-9))
        return (lo, hi)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormalJitter(mean={self._mean!r}, sigma={self.sigma!r})"


class BoundedPareto(Distribution):
    """Pareto on ``[xm, cap]`` with shape ``alpha`` (truncated & renormalised).

    Models the rare large cross-core reading delays the paper observed (up
    to ~1.3e-3 s): most mass near ``xm``, polynomially decaying tail.
    """

    def __init__(self, xm: float, alpha: float, cap: float) -> None:
        if xm <= 0 or cap <= xm:
            raise ConfigurationError(f"BoundedPareto: need 0 < xm < cap, got {xm}, {cap}")
        if alpha <= 0:
            raise ConfigurationError(f"BoundedPareto: alpha must be > 0, got {alpha}")
        self.xm = float(xm)
        self.alpha = float(alpha)
        self.cap = float(cap)
        self._tail_at_cap = (self.xm / self.cap) ** self.alpha

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        return self.inv_cdf(u)

    def cdf(self, x: float) -> float:
        if x <= self.xm:
            return 0.0
        if x >= self.cap:
            return 1.0
        raw = 1.0 - (self.xm / x) ** self.alpha
        return raw / (1.0 - self._tail_at_cap)

    def inv_cdf(self, u: float) -> float:
        u = min(max(u, 0.0), 1.0)
        raw = u * (1.0 - self._tail_at_cap)
        return self.xm / ((1.0 - raw) ** (1.0 / self.alpha))

    @property
    def mean(self) -> float:
        a, xm, cap = self.alpha, self.xm, self.cap
        norm = 1.0 - self._tail_at_cap
        if a == 1.0:
            raw = xm * math.log(cap / xm)
        else:
            raw = (a * xm / (a - 1.0)) * (1.0 - (xm / cap) ** (a - 1.0))
        return raw / norm

    def support(self) -> "tuple[float, float]":
        return (self.xm, self.cap)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BoundedPareto(xm={self.xm!r}, alpha={self.alpha!r}, cap={self.cap!r})"


class SpikeMixture(Distribution):
    """``base`` most of the time; with probability ``spike_prob``, ``spike``.

    The canonical model for a cross-core buffer read: usually a small
    near-uniform latency, occasionally a cache/coherence stall drawn from a
    bounded Pareto tail.
    """

    def __init__(self, base: Distribution, spike: Distribution, spike_prob: float) -> None:
        if not 0.0 <= spike_prob <= 1.0:
            raise ConfigurationError(f"spike_prob must be in [0,1], got {spike_prob}")
        self.base = base
        self.spike = spike
        self.spike_prob = float(spike_prob)

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.spike_prob:
            return self.spike.sample(rng)
        return self.base.sample(rng)

    def cdf(self, x: float) -> float:
        p = self.spike_prob
        return (1.0 - p) * self.base.cdf(x) + p * self.spike.cdf(x)

    @property
    def mean(self) -> float:
        p = self.spike_prob
        return (1.0 - p) * self.base.mean + p * self.spike.mean

    def support(self) -> "tuple[float, float]":
        blo, bhi = self.base.support()
        slo, shi = self.spike.support()
        return (min(blo, slo), max(bhi, shi))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SpikeMixture(base={self.base!r}, spike={self.spike!r}, "
            f"spike_prob={self.spike_prob!r})"
        )


class Shifted(Distribution):
    """``inner`` shifted right by a constant ``offset``."""

    def __init__(self, inner: Distribution, offset: float) -> None:
        self.inner = inner
        self.offset = float(offset)

    def sample(self, rng: random.Random) -> float:
        return self.inner.sample(rng) + self.offset

    def cdf(self, x: float) -> float:
        return self.inner.cdf(x - self.offset)

    @property
    def mean(self) -> float:
        return self.inner.mean + self.offset

    def support(self) -> "tuple[float, float]":
        lo, hi = self.inner.support()
        return (lo + self.offset, hi + self.offset)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Shifted({self.inner!r}, offset={self.offset!r})"


def inverse_cdf(dist: Distribution, u: float, tol: float = 1e-15) -> float:
    """Numerically invert ``dist.cdf`` by bisection on its support.

    Works for any distribution with a monotone CDF and finite support
    bracket; used by the order-statistics fast path for mixtures that have
    no closed-form quantile function.
    """
    u = min(max(u, 0.0), 1.0)
    lo, hi = dist.support()
    if hi <= lo:
        return lo
    # Expand the bracket defensively in case support() is approximate.
    while dist.cdf(hi) < u and hi - lo < 1e12:
        hi = lo + (hi - lo) * 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if hi - lo <= tol * max(1.0, abs(hi)):
            break
        if dist.cdf(mid) < u:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
