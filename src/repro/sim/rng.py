"""Deterministic named random streams.

Every stochastic component of the simulation (scheduler jitter, per-byte
hash cost noise, wake-up time deviations, cross-core read spikes, ...) draws
from its own named stream derived from one master seed.  This makes whole
experiments reproducible bit-for-bit while keeping the streams statistically
independent of one another: adding a new consumer never perturbs existing
ones.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Callable, Dict, Optional


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


#: A stream factory maps ``(master_seed, name, derived_seed)`` to the
#: ``random.Random`` (or subclass) that will back the stream.  The batch
#: replay engine installs one so registries built inside a batched trial
#: serve replayed streams; everything else pays nothing — the factory is
#: consulted once per stream *creation*, never per draw.
StreamFactory = Callable[[int, str, int], random.Random]

_factory_stack = threading.local()


def push_stream_factory(factory: StreamFactory) -> None:
    """Install ``factory`` for streams created on this thread."""
    stack = getattr(_factory_stack, "stack", None)
    if stack is None:
        stack = _factory_stack.stack = []
    stack.append(factory)


def pop_stream_factory() -> None:
    """Remove the most recently installed stream factory."""
    getattr(_factory_stack, "stack").pop()


def active_stream_factory() -> Optional[StreamFactory]:
    stack = getattr(_factory_stack, "stack", None)
    return stack[-1] if stack else None


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            derived = derive_seed(self.master_seed, name)
            factory = active_stream_factory()
            if factory is not None:
                rng = factory(self.master_seed, name, derived)
            else:
                rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry with a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
