"""Deterministic named random streams.

Every stochastic component of the simulation (scheduler jitter, per-byte
hash cost noise, wake-up time deviations, cross-core read spikes, ...) draws
from its own named stream derived from one master seed.  This makes whole
experiments reproducible bit-for-bit while keeping the streams statistically
independent of one another: adding a new consumer never perturbs existing
ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the registry with a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
