"""Kernel page tables with access-permission bits (Section VII-A substrate).

The paper's threat model starts from a rich OS protected by *synchronous*
introspection (KNOX-RKP / SPROBES style): security-critical kernel pages —
the exception vector table, the system call table — are mapped read-only,
and any write attempt traps to the secure world for mediation.  The
attacker bypasses it with a *data* attack: a write-what-where kernel
vulnerability flips the Access Permission (AP) bits of the relevant page
table entry — the PTE itself being ordinary kernel data that nothing
mediates — after which the "protected" page is freely writable [26].

This module models exactly that much MMU: 4 KiB pages over the kernel
image, one AP bit per page, and a write path that consults it.  The page
*table* lives inside the kernel image's ``.data`` section, so flipping a
PTE is a plain 8-byte kernel-memory write.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.image import KernelImage

PAGE_SIZE = 4096

#: PTE bit meaning "writable from the normal world" (AP[2]=0 in ARM terms;
#: we store it positively for clarity).
PTE_WRITABLE = 1 << 7

#: A write hook: (page_index, offset, data) -> allow?  Installed by the
#: synchronous introspection mechanism.
WriteMediator = Callable[[int, int, bytes], bool]


class PageTable:
    """AP-bit page table for the kernel image, resident in kernel .data."""

    ENTRY_SIZE = 8

    def __init__(self, image: KernelImage) -> None:
        self.image = image
        self.page_count = -(-image.size // PAGE_SIZE)
        data_section = image.system_map.section_by_name(".data")
        table_bytes = self.page_count * self.ENTRY_SIZE
        # Park the table a little way into .data (scaled so down-sized
        # test kernels still fit it), page aligned.
        gap = min(16384, data_section.size // 8)
        self.table_offset = (data_section.offset + gap + 4095) & ~0xFFF
        if self.table_offset + table_bytes > data_section.end:
            raise KernelError("page table does not fit in .data")
        self._install_defaults()

    def _install_defaults(self) -> None:
        """All pages writable by default (a stock kernel)."""
        entries = bytearray()
        for page in range(self.page_count):
            entries += struct.pack("<Q", PTE_WRITABLE | (page << 12))
        self.image.write(self.table_offset, bytes(entries), World.SECURE)

    # ------------------------------------------------------------------
    # PTE access (the PTEs are ordinary kernel memory!)
    # ------------------------------------------------------------------
    def pte_offset(self, page_index: int) -> int:
        """Image-relative offset of a PTE — itself inside the kernel."""
        if not 0 <= page_index < self.page_count:
            raise KernelError(f"page index {page_index} out of range")
        return self.table_offset + page_index * self.ENTRY_SIZE

    def read_pte(self, page_index: int, world: World) -> int:
        raw = self.image.read(self.pte_offset(page_index), self.ENTRY_SIZE, world)
        return struct.unpack("<Q", raw)[0]

    def write_pte(self, page_index: int, value: int, world: World) -> None:
        self.image.write(
            self.pte_offset(page_index), struct.pack("<Q", value), world
        )

    # ------------------------------------------------------------------
    # Permission queries / legitimate management
    # ------------------------------------------------------------------
    def page_of(self, image_offset: int) -> int:
        if not 0 <= image_offset < self.image.size:
            raise KernelError(f"offset {image_offset:#x} outside the kernel")
        return image_offset // PAGE_SIZE

    def is_writable(self, page_index: int) -> bool:
        return bool(self.read_pte(page_index, World.SECURE) & PTE_WRITABLE)

    def set_writable(self, page_index: int, writable: bool, world: World) -> None:
        pte = self.read_pte(page_index, world)
        if writable:
            pte |= PTE_WRITABLE
        else:
            pte &= ~PTE_WRITABLE
        self.write_pte(page_index, pte, world)

    def protect_range(self, offset: int, length: int, world: World) -> List[int]:
        """Mark every page covering [offset, offset+length) read-only."""
        first = self.page_of(offset)
        last = self.page_of(offset + length - 1)
        pages = list(range(first, last + 1))
        for page in pages:
            self.set_writable(page, False, world)
        return pages


class ProtectedKernelMemory:
    """The kernel write path once paging protection is active.

    Routes every normal-world write through the page table; writes to a
    read-only page are reported to the installed mediator (the synchronous
    introspection hook).  Secure-world writes bypass checks (higher
    privilege), matching TrustZone semantics.
    """

    def __init__(self, image: KernelImage, page_table: PageTable) -> None:
        self.image = image
        self.page_table = page_table
        self.mediator: Optional[WriteMediator] = None
        self.blocked_writes = 0
        self.mediated_writes = 0

    def write(self, offset: int, data: bytes, world: World) -> bool:
        """Attempt a kernel write; returns True if it landed."""
        if world is World.SECURE:
            self.image.write(offset, data, world)
            return True
        first = self.page_table.page_of(offset)
        last = self.page_table.page_of(offset + len(data) - 1)
        for page in range(first, last + 1):
            if not self.page_table.is_writable(page):
                # Permission fault: trap to the mediator (synchronous
                # introspection) if present, else just fault.
                self.mediated_writes += 1
                allowed = (
                    self.mediator is not None
                    and self.mediator(page, offset, data)
                )
                if not allowed:
                    self.blocked_writes += 1
                    return False
        self.image.write(offset, data, world)
        return True
