"""AArch64 exception vector table inside the kernel image.

``VBAR_EL1`` points at a 16-entry table; each entry here is modelled as an
8-byte handler address (the real table holds up to 32 instructions per
entry, but only the branch target matters to the mechanisms we reproduce).
KProber-I redirects the *IRQ from lower EL (AArch64)* entry to its own code
— an 8-byte modification inside the ``.vectors`` section that asynchronous
introspection can detect as a preparation trace (Section III-C1).
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.image import KernelImage

#: Entry indices in VBAR order (4 exception types x 4 source states).
VECTOR_NAMES = (
    "cur_el_sp0_sync", "cur_el_sp0_irq", "cur_el_sp0_fiq", "cur_el_sp0_serror",
    "cur_el_spx_sync", "cur_el_spx_irq", "cur_el_spx_fiq", "cur_el_spx_serror",
    "lower_el_a64_sync", "lower_el_a64_irq", "lower_el_a64_fiq", "lower_el_a64_serror",
    "lower_el_a32_sync", "lower_el_a32_irq", "lower_el_a32_fiq", "lower_el_a32_serror",
)

#: The entry KProber-I hijacks: IRQ taken from 64-bit EL0/EL1.
IRQ_VECTOR_INDEX = VECTOR_NAMES.index("lower_el_a64_irq")

ENTRY_SIZE = 8

#: Virtual-address base of the synthetic exception handlers.
HANDLER_VA_BASE = 0xFFFF_0000_0810_0000


def default_vector_addr(index: int) -> int:
    """Deterministic synthetic handler address for vector ``index``."""
    return HANDLER_VA_BASE + index * 0x80


class VectorTable:
    """Read/write interface to the in-image exception vector table."""

    def __init__(self, image: KernelImage) -> None:
        self.image = image
        self.table_offset = image.system_map.symbol("vectors")
        section = image.section_at(self.table_offset)
        if self.table_offset + len(VECTOR_NAMES) * ENTRY_SIZE > section.end:
            raise KernelError("vector table does not fit in its section")
        self._original: Dict[int, int] = {}
        self._install_defaults()

    def _install_defaults(self) -> None:
        entries = bytearray()
        for index in range(len(VECTOR_NAMES)):
            addr = default_vector_addr(index)
            self._original[index] = addr
            entries += struct.pack("<Q", addr)
        self.image.write(self.table_offset, bytes(entries), World.SECURE)

    # ------------------------------------------------------------------
    def entry_offset(self, index: int) -> int:
        if not 0 <= index < len(VECTOR_NAMES):
            raise KernelError(f"vector index {index} out of range")
        return self.table_offset + index * ENTRY_SIZE

    def read_entry(self, index: int, world: World) -> int:
        raw = self.image.read(self.entry_offset(index), ENTRY_SIZE, world)
        return struct.unpack("<Q", raw)[0]

    def write_entry(self, index: int, handler_addr: int, world: World) -> None:
        self.image.write(self.entry_offset(index), struct.pack("<Q", handler_addr), world)

    def original_entry(self, index: int) -> int:
        return self._original[index]

    def is_hijacked(self, index: int, world: World = World.SECURE) -> bool:
        return self.read_entry(index, world) != self._original[index]

    @property
    def vbar_value(self) -> int:
        """Physical address to load into VBAR_EL1."""
        return self.image.addr_of(self.table_offset)

    @property
    def section_index(self) -> int:
        """System.map section (== SATIN area) index holding the table."""
        return self.image.section_at(self.table_offset).index
