"""Loaded-kernel-module list: dynamic kernel data in the image.

The paper's introduction notes that asynchronous introspection goes beyond
static hashing: "a number of proof of concept approaches have been
developed to provide a more fine-grained security checking on dynamic
kernel data structures" [8, 14, 33, 48].  This module provides the classic
target of such checking — the loaded-module linked list — as real bytes in
kernel memory, so a DKOM (Direct Kernel Object Manipulation) rootkit can
unlink itself and a secure-world semantic checker can catch it.

Layout: a fixed slab of 32-byte records in ``.data``:

    0..15  module name (NUL padded)
    16..23 image-relative offset of the next record (0 = end of list)
    24..31 flags (bit 0: slot allocated/live)

plus an 8-byte list head in front of the slab.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.image import KernelImage

RECORD_SIZE = 32
NAME_SIZE = 16
FLAG_LIVE = 1

#: End-of-list marker stored in a next-pointer field.
LIST_END = 0


@dataclass(frozen=True)
class ModuleRecord:
    """Decoded view of one slab record."""

    slot: int
    offset: int
    name: str
    next_offset: int
    flags: int

    @property
    def live(self) -> bool:
        return bool(self.flags & FLAG_LIVE)


class ModuleList:
    """The in-memory module registry and linked list."""

    def __init__(self, image: KernelImage, capacity: int = 64) -> None:
        self.image = image
        self.capacity = capacity
        data = image.system_map.section_by_name(".data")
        # Park the slab past the page table's home, scaling the gap with
        # the section so down-sized test kernels still fit everything.
        gap = min(65536, data.size // 2)
        self.head_offset = (data.offset + gap + 63) & ~0x3F
        self.slab_offset = self.head_offset + 8
        if self.slab_offset + capacity * RECORD_SIZE > data.end:
            raise KernelError("module slab does not fit in .data")
        self._write_head(LIST_END, World.SECURE)
        zero = bytes(RECORD_SIZE)
        for slot in range(capacity):
            image.write(self._slot_offset(slot), zero, World.SECURE)

    # ------------------------------------------------------------------
    # Raw encoding
    # ------------------------------------------------------------------
    def _slot_offset(self, slot: int) -> int:
        if not 0 <= slot < self.capacity:
            raise KernelError(f"module slot {slot} out of range")
        return self.slab_offset + slot * RECORD_SIZE

    def _write_head(self, value: int, world: World) -> None:
        self.image.write(self.head_offset, struct.pack("<Q", value), world)

    def read_head(self, world: World = World.NORMAL) -> int:
        raw = self.image.read(self.head_offset, 8, world)
        return struct.unpack("<Q", raw)[0]

    def read_record(self, offset: int, world: World = World.NORMAL) -> ModuleRecord:
        raw = self.image.read(offset, RECORD_SIZE, world)
        name = raw[:NAME_SIZE].split(b"\x00", 1)[0].decode("ascii", "replace")
        next_offset, flags = struct.unpack("<QQ", raw[NAME_SIZE:])
        slot = (offset - self.slab_offset) // RECORD_SIZE
        return ModuleRecord(slot, offset, name, next_offset, flags)

    def _write_record(
        self, slot: int, name: str, next_offset: int, flags: int, world: World
    ) -> int:
        encoded_name = name.encode("ascii")
        if len(encoded_name) >= NAME_SIZE:
            raise KernelError(f"module name {name!r} too long")
        raw = encoded_name.ljust(NAME_SIZE, b"\x00")
        raw += struct.pack("<QQ", next_offset, flags)
        offset = self._slot_offset(slot)
        self.image.write(offset, raw, world)
        return offset

    # ------------------------------------------------------------------
    # Rich OS API (normal world)
    # ------------------------------------------------------------------
    def load(self, name: str, world: World = World.NORMAL) -> ModuleRecord:
        """insmod: allocate a slot and push it on the list head."""
        for slot in range(self.capacity):
            record = self.read_record(self._slot_offset(slot), World.SECURE)
            if not record.live:
                head = self.read_head(world)
                offset = self._write_record(slot, name, head, FLAG_LIVE, world)
                self._write_head(offset, world)
                return self.read_record(offset, world)
        raise KernelError("module slab exhausted")

    def unload(self, name: str, world: World = World.NORMAL) -> None:
        """rmmod: unlink AND free the slot (the legitimate path)."""
        prev_offset: Optional[int] = None
        cursor = self.read_head(world)
        while cursor != LIST_END:
            record = self.read_record(cursor, world)
            if record.name == name:
                if prev_offset is None:
                    self._write_head(record.next_offset, world)
                else:
                    prev = self.read_record(prev_offset, world)
                    self._write_record(
                        prev.slot, prev.name, record.next_offset, prev.flags, world
                    )
                self._write_record(record.slot, "", LIST_END, 0, world)
                return
            prev_offset = cursor
            cursor = record.next_offset
        raise KernelError(f"module {name!r} is not loaded")

    # ------------------------------------------------------------------
    # Views (used by both worlds)
    # ------------------------------------------------------------------
    def walk_list(self, world: World = World.NORMAL) -> List[ModuleRecord]:
        """The linked-list view (what ``lsmod`` sees)."""
        out: List[ModuleRecord] = []
        cursor = self.read_head(world)
        hops = 0
        while cursor != LIST_END:
            if hops > self.capacity:
                raise KernelError("module list is cyclic")
            record = self.read_record(cursor, world)
            out.append(record)
            cursor = record.next_offset
            hops += 1
        return out

    def scan_slab(self, world: World = World.SECURE) -> List[ModuleRecord]:
        """The brute-force memory view: every live record in the slab.

        This is the SigGraph-style signature scan — it needs no list
        integrity, only the record layout.
        """
        out: List[ModuleRecord] = []
        for slot in range(self.capacity):
            record = self.read_record(self._slot_offset(slot), world)
            if record.live:
                out.append(record)
        return out
