"""Synthetic System.map for the simulated rich OS kernel.

The paper's board runs an lsk-4.4 kernel whose static image is 11,916,240
bytes, which SATIN divides into 19 areas along System.map section
boundaries; the largest area is 876,616 bytes and the smallest 431,360
(Section VI-A2).  This module synthesises a section table with exactly those
properties, placing the system call table in section index 14 (the paper's
"area 14", which the sample attack hijacks) and the exception vector table
in section index 12 (where KProber-I leaves its preparation trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import (
    PAPER_AREA_COUNT,
    PAPER_HIJACKED_AREA,
    PAPER_KERNEL_SIZE,
    PAPER_LARGEST_AREA,
    PAPER_SMALLEST_AREA,
)
from repro.errors import KernelError

#: Section index that contains the system call table ("area 14").
SYSCALL_SECTION_INDEX = PAPER_HIJACKED_AREA

#: Section index that contains the exception vector table.
VECTOR_SECTION_INDEX = 12

#: Plausible lsk-4.4 arm64 section names, one per area, in link order.
SECTION_NAMES = (
    ".head.text",
    ".text",
    ".text.hot",
    ".rodata",
    "__ksymtab",
    "__ksymtab_gpl",
    "__param",
    "__modver",
    ".init.text",
    ".init.data",
    ".exit.text",
    ".altinstructions",
    ".vectors",
    "__ex_table",
    ".rodata.syscalls",
    ".notes",
    ".data",
    ".data..percpu",
    ".bss.static",
)

#: Index of the section pinned to the *largest* area size.
_LARGEST_INDEX = 1  # .text

#: Index of the section pinned to the *smallest* area size.
_SMALLEST_INDEX = len(SECTION_NAMES) - 1  # .bss.static

#: Relative weights for the 17 free interior sections; chosen to give a
#: plausible spread strictly inside (smallest, largest).
_INTERIOR_WEIGHTS = (
    0.62, 0.78, 0.55, 0.71, 0.49, 0.84, 0.58, 0.66,
    0.75, 0.52, 0.69, 0.81, 0.57, 0.64, 0.73, 0.60, 0.68,
)


@dataclass(frozen=True)
class Section:
    """One System.map section: a named, contiguous slice of the image."""

    index: int
    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    def contains(self, offset: int) -> bool:
        return self.offset <= offset < self.end


def synthesize_section_sizes(
    total: int = PAPER_KERNEL_SIZE,
    count: int = PAPER_AREA_COUNT,
    largest: int = PAPER_LARGEST_AREA,
    smallest: int = PAPER_SMALLEST_AREA,
) -> List[int]:
    """Deterministic section sizes matching the paper's constraints.

    Exactly one section has size ``largest``, one has ``smallest``, the
    rest lie strictly between, and they sum to ``total``.
    """
    if count != len(SECTION_NAMES):
        raise KernelError(
            f"section count {count} != name table size {len(SECTION_NAMES)}"
        )
    interior_total = total - largest - smallest
    weights = _INTERIOR_WEIGHTS
    if len(weights) != count - 2:
        raise KernelError("interior weight table has the wrong length")
    weight_sum = sum(weights)
    sizes = [0] * count
    sizes[_LARGEST_INDEX] = largest
    sizes[_SMALLEST_INDEX] = smallest
    interior_indices = [
        i for i in range(count) if i not in (_LARGEST_INDEX, _SMALLEST_INDEX)
    ]
    assigned = 0
    for slot, index in enumerate(interior_indices):
        # 8-byte aligned share of the interior total.
        share = int(interior_total * weights[slot] / weight_sum) & ~0x7
        sizes[index] = share
        assigned += share
    # Put the alignment residue into the first interior section.
    residue = interior_total - assigned
    sizes[interior_indices[0]] += residue
    for index in interior_indices:
        if not smallest < sizes[index] < largest:
            raise KernelError(
                f"interior section {index} size {sizes[index]} escaped "
                f"({smallest}, {largest})"
            )
    if sum(sizes) != total:
        raise KernelError("section sizes do not sum to the kernel size")
    return sizes


class SystemMap:
    """The kernel's section table plus a handful of named symbols."""

    def __init__(
        self,
        total: int = PAPER_KERNEL_SIZE,
        count: int = PAPER_AREA_COUNT,
        largest: "int | None" = None,
        smallest: "int | None" = None,
    ) -> None:
        # Default bounds: the paper's values, scaled with the kernel size
        # so down-scaled test kernels keep the same shape.
        if largest is None:
            largest = max(int(total * PAPER_LARGEST_AREA / PAPER_KERNEL_SIZE), 1)
        if smallest is None:
            smallest = max(int(total * PAPER_SMALLEST_AREA / PAPER_KERNEL_SIZE), 1)
        sizes = synthesize_section_sizes(total, count, largest, smallest)
        self.sections: List[Section] = []
        offset = 0
        for index, (name, size) in enumerate(zip(SECTION_NAMES, sizes)):
            self.sections.append(Section(index, name, offset, size))
            offset += size
        self.total_size = offset

        # Symbols are image-relative offsets.
        syscall_section = self.sections[SYSCALL_SECTION_INDEX]
        vector_section = self.sections[VECTOR_SECTION_INDEX]
        self.symbols: Dict[str, int] = {
            "_text": 0,
            "_end": self.total_size,
            # Keep both tables 2 KiB into their sections, 128-byte aligned.
            "sys_call_table": (syscall_section.offset + 2048 + 127) & ~0x7F,
            "vectors": (vector_section.offset + 2048 + 2047) & ~0x7FF,
        }

    # ------------------------------------------------------------------
    def section(self, index: int) -> Section:
        return self.sections[index]

    def section_by_name(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KernelError(f"no section named {name!r}")

    def section_at(self, offset: int) -> Section:
        """Section containing image-relative ``offset`` (binary search)."""
        lo, hi = 0, len(self.sections) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            section = self.sections[mid]
            if offset < section.offset:
                hi = mid - 1
            elif offset >= section.end:
                lo = mid + 1
            else:
                return section
        raise KernelError(f"offset {offset:#x} is outside the kernel image")

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KernelError(f"no symbol named {name!r}") from None

    def __len__(self) -> int:
        return len(self.sections)

    def __iter__(self):
        return iter(self.sections)
