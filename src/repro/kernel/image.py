"""The kernel image resident in simulated DRAM.

The image's bytes are deterministic pseudo-random data (standing in for
instruction/rodata bytes), with the system call table and exception vector
table written at their System.map symbol offsets.  All mutation goes through
the world-checked physical memory, so the secure world's view is exactly
what an attacker-modified normal world wrote — the substrate of every
detection experiment.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Tuple

import numpy as np

from repro.config import KernelConfig
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World
from repro.kernel.systemmap import Section, SystemMap

#: Process-scoped cache of generated image content keyed by what fully
#: determines it: ``(image_seed, size)``.  The bytes are a pure function of
#: the key (a private PCG64 stream, no machine RNG involved), so campaign
#: workers churning through seeds skip the ~12 MB regeneration per trial.
_CONTENT_CACHE: Dict[Tuple[int, int], bytes] = {}

#: Bound the cache so a long-lived worker sweeping image seeds cannot hold
#: an unbounded number of ~12 MB payloads alive.
_CONTENT_CACHE_MAX = 4

#: Guards cache mutation under the thread executor backend (concurrent
#: trials in one process); lookups stay lock-free.
_CONTENT_CACHE_LOCK = threading.Lock()


def _cache_enabled() -> bool:
    return not os.environ.get("REPRO_NO_BOOT_CACHE")


def image_content(image_seed: int, size: int) -> bytes:
    """Deterministic pseudo-random image bytes for ``(image_seed, size)``."""
    key = (image_seed, size)
    content = _CONTENT_CACHE.get(key)
    if content is None:
        rng = np.random.Generator(np.random.PCG64(image_seed))
        content = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        if _cache_enabled():
            with _CONTENT_CACHE_LOCK:
                if len(_CONTENT_CACHE) >= _CONTENT_CACHE_MAX:
                    _CONTENT_CACHE.pop(next(iter(_CONTENT_CACHE)))
                _CONTENT_CACHE[key] = content
    return content


class KernelImage:
    """The static kernel: bytes in DRAM plus its System.map."""

    def __init__(
        self,
        memory: PhysicalMemory,
        config: KernelConfig,
        system_map: "SystemMap | None" = None,
    ) -> None:
        self.memory = memory
        self.config = config
        self.system_map = system_map if system_map is not None else SystemMap(
            total=config.image_size, count=config.section_count
        )
        self.base = config.image_base
        self.size = self.system_map.total_size
        self._populate()

    def _populate(self) -> None:
        """Fill the image with deterministic pseudo-random content."""
        content = image_content(self.config.image_seed, self.size)
        # The boot loader owns memory before the OS runs; write as SECURE
        # (trusted boot stage) so this works regardless of region attributes.
        self.memory.write(self.base, content, World.SECURE)

    @property
    def write_count(self) -> int:
        """Writes ever made to the backing region (a cheap mutation epoch).

        A fused scan samples this before and after its span to prove no
        write interleaved while its chunks were being hashed up front.
        """
        region = self.memory.region_at(self.base)
        return region.write_count if region is not None else 0

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def addr_of(self, offset: int) -> int:
        """Physical address of image-relative ``offset``."""
        return self.base + offset

    def offset_of(self, addr: int) -> int:
        """Image-relative offset of physical address ``addr``."""
        return addr - self.base

    def symbol_addr(self, name: str) -> int:
        return self.addr_of(self.system_map.symbol(name))

    def section_at(self, offset: int) -> Section:
        return self.system_map.section_at(offset)

    # ------------------------------------------------------------------
    # World-checked byte access
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int, world: World) -> bytes:
        return self.memory.read(self.addr_of(offset), length, world)

    def write(self, offset: int, data: bytes, world: World) -> None:
        self.memory.write(self.addr_of(offset), data, world)

    def view(self, offset: int, length: int, world: World) -> memoryview:
        """Zero-copy view for bulk hashing (secure-world introspection)."""
        return self.memory.view(self.addr_of(offset), length, world)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelImage base={self.base:#x} size={self.size}>"
