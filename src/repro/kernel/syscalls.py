"""System call table resident inside the kernel image.

The table is an array of 8-byte little-endian handler addresses at the
``sys_call_table`` symbol.  The paper's sample persistent attack overwrites
the ``GETTID`` entry (arm64 syscall number 178) with a malicious handler
address — exactly 8 bytes of attack trace inside "area 14" that TrustZone
introspection can catch (Section IV-A2).
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import KernelError
from repro.hw.world import World
from repro.kernel.image import KernelImage

#: arm64 system call numbers for the calls the workloads exercise.
NR_GETTID = 178
NR_GETPID = 172
NR_READ = 63
NR_WRITE = 64
NR_OPENAT = 56
NR_CLOSE = 57
NR_CLONE = 220
NR_EXECVE = 221
NR_PIPE2 = 59

#: Number of table entries (arm64 __NR_syscalls for 4.x kernels).
SYSCALL_COUNT = 440

#: Bytes per table entry (a 64-bit function pointer).
ENTRY_SIZE = 8

#: Virtual-address base the synthetic handler pointers live at.
HANDLER_VA_BASE = 0xFFFF_0000_0800_0000


def default_handler_addr(nr: int) -> int:
    """Deterministic synthetic handler address for syscall ``nr``."""
    return HANDLER_VA_BASE + nr * 0x400


class SyscallTable:
    """Read/write interface to the in-image system call table."""

    def __init__(self, image: KernelImage) -> None:
        self.image = image
        self.table_offset = image.system_map.symbol("sys_call_table")
        section = image.section_at(self.table_offset)
        if self.table_offset + SYSCALL_COUNT * ENTRY_SIZE > section.end:
            raise KernelError("system call table does not fit in its section")
        self._original: Dict[int, int] = {}
        self._install_defaults()

    def _install_defaults(self) -> None:
        entries = bytearray()
        for nr in range(SYSCALL_COUNT):
            addr = default_handler_addr(nr)
            self._original[nr] = addr
            entries += struct.pack("<Q", addr)
        # Installed by the (trusted) boot stage.
        self.image.write(self.table_offset, bytes(entries), World.SECURE)

    # ------------------------------------------------------------------
    def entry_offset(self, nr: int) -> int:
        """Image-relative offset of entry ``nr``."""
        if not 0 <= nr < SYSCALL_COUNT:
            raise KernelError(f"syscall number {nr} out of range")
        return self.table_offset + nr * ENTRY_SIZE

    def entry_addr(self, nr: int) -> int:
        """Physical address of entry ``nr``."""
        return self.image.addr_of(self.entry_offset(nr))

    def read_entry(self, nr: int, world: World) -> int:
        raw = self.image.read(self.entry_offset(nr), ENTRY_SIZE, world)
        return struct.unpack("<Q", raw)[0]

    def write_entry(self, nr: int, handler_addr: int, world: World) -> None:
        self.image.write(self.entry_offset(nr), struct.pack("<Q", handler_addr), world)

    def original_entry(self, nr: int) -> int:
        """The authorized handler address installed at boot."""
        return self._original[nr]

    def is_hijacked(self, nr: int, world: World = World.SECURE) -> bool:
        """Ground-truth check used by tests and the harness."""
        return self.read_entry(nr, world) != self._original[nr]

    @property
    def section_index(self) -> int:
        """System.map section (== SATIN area) index holding the table."""
        return self.image.section_at(self.table_offset).index
