"""The simulated rich OS (normal world)."""

from repro.kernel.image import KernelImage
from repro.kernel.modules import ModuleList, ModuleRecord
from repro.kernel.os import RichOS, boot_rich_os
from repro.kernel.paging import PAGE_SIZE, PageTable, ProtectedKernelMemory
from repro.kernel.sched import CoreRunQueue, RichScheduler
from repro.kernel.syscalls import NR_GETTID, SyscallTable
from repro.kernel.systemmap import Section, SystemMap
from repro.kernel.threads import (
    FIFO_PRIORITY_MAX,
    SchedPolicy,
    Task,
    TaskState,
    pin_to,
)
from repro.kernel.ticks import TickManager
from repro.kernel.vectors import IRQ_VECTOR_INDEX, VectorTable

__all__ = [
    "CoreRunQueue",
    "FIFO_PRIORITY_MAX",
    "IRQ_VECTOR_INDEX",
    "KernelImage",
    "ModuleList",
    "ModuleRecord",
    "NR_GETTID",
    "PAGE_SIZE",
    "PageTable",
    "ProtectedKernelMemory",
    "RichOS",
    "RichScheduler",
    "SchedPolicy",
    "Section",
    "SyscallTable",
    "SystemMap",
    "Task",
    "TaskState",
    "TickManager",
    "VectorTable",
    "boot_rich_os",
    "pin_to",
]
