"""The rich OS facade: boots the kernel and exposes process/syscall APIs.

``RichOS`` assembles the kernel image (with its System.map, system call
table and exception vector table), the two-class scheduler, and the tick
machinery on a :class:`~repro.hw.platform.Machine`.  Workloads and attack
components interact with the normal world exclusively through this object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Generator, Optional

from repro.errors import KernelError
from repro.hw.platform import Machine
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.kernel.sched.scheduler import RichScheduler
from repro.kernel.syscalls import SyscallTable
from repro.kernel.threads import (
    FIFO_PRIORITY_MAX,
    SchedPolicy,
    Task,
    TaskBody,
)
from repro.kernel.ticks import TickManager
from repro.kernel.vectors import VectorTable
from repro.sim.process import cpu

#: A syscall interceptor: called when a hijacked entry is exercised.
SyscallInterceptor = Callable[[Task, int], None]


class RichOS:
    """The normal-world operating system of the simulated board."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        kcfg = machine.config.kernel
        self.image = KernelImage(machine.memory, kcfg)
        self.syscall_table = SyscallTable(self.image)
        self.vector_table = VectorTable(self.image)
        self.scheduler = RichScheduler(machine)
        self.ticks = TickManager(machine, self.scheduler)
        self._interceptors: Dict[int, SyscallInterceptor] = {}
        self.syscall_count = 0
        self.intercepted_syscalls = 0
        for core in machine.cores:
            core.registers.write(
                "VBAR_EL1", self.vector_table.vbar_value, World.NORMAL
            )

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        body: TaskBody,
        policy: SchedPolicy = SchedPolicy.CFS,
        priority: int = 0,
        affinity: Optional[FrozenSet[int]] = None,
        core_index: Optional[int] = None,
    ) -> Task:
        """Create and start a kernel-visible thread."""
        task = Task(name, body, policy=policy, priority=priority, affinity=affinity)
        return self.scheduler.spawn(task, core_index=core_index)

    def spawn_realtime(
        self,
        name: str,
        body: TaskBody,
        priority: int = FIFO_PRIORITY_MAX,
        affinity: Optional[FrozenSet[int]] = None,
        core_index: Optional[int] = None,
    ) -> Task:
        """``pthread_setschedparam(SCHED_FIFO, priority)`` equivalent."""
        return self.spawn(
            name, body, policy=SchedPolicy.FIFO, priority=priority,
            affinity=affinity, core_index=core_index,
        )

    # ------------------------------------------------------------------
    # System calls
    # ------------------------------------------------------------------
    def register_syscall_interceptor(
        self, handler_addr: int, interceptor: SyscallInterceptor
    ) -> None:
        """Associate behaviour with a (malicious) handler address.

        The rootkit writes ``handler_addr`` into a syscall table entry;
        whenever a task then issues that syscall, ``interceptor`` observes
        it — the key-logger behaviour of the paper's sample attack.
        """
        self._interceptors[handler_addr] = interceptor

    def syscall(self, task: Task, nr: int) -> Generator[Any, Any, int]:
        """Issue system call ``nr`` from ``task`` (a coroutine helper).

        Charges the calling core's syscall cost and dispatches through the
        *current* table entry, so a hijacked entry routes through the
        attacker's interceptor — and a restored entry does not.
        """
        if task.core_index is None:
            raise KernelError("syscall from a task that never ran")
        core = self.machine.cores[task.core_index]
        yield cpu(core.perf.syscall())
        self.syscall_count += 1
        entry = self.syscall_table.read_entry(nr, World.NORMAL)
        if entry != self.syscall_table.original_entry(nr):
            self.intercepted_syscalls += 1
            interceptor = self._interceptors.get(entry)
            if interceptor is not None:
                interceptor(task, nr)
        # All modelled syscalls return the task id (GETTID semantics); the
        # workloads only care about the timing, not the value.
        return task.tid

    # ------------------------------------------------------------------
    @property
    def kernel_size(self) -> int:
        return self.image.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RichOS kernel={self.image.size}B tasks={len(self.scheduler.tasks)}>"


def boot_rich_os(machine: Machine) -> RichOS:
    """Boot the rich OS on a machine (convenience constructor)."""
    return RichOS(machine)
