"""Task control blocks for the rich OS scheduler.

A task's behaviour is a generator (see :mod:`repro.sim.process`): it yields
``cpu(seconds)`` to compute, ``sleep(seconds)`` to block on a timer, and
``wait(signal)`` to block on an event.  The scheduler interprets these
requests; CPU time is contended, preemptible and charged against the task.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, FrozenSet, Generator, Optional

from repro.sim.process import Signal

#: A task body: receives its Task and yields scheduling requests.
TaskBody = Callable[["Task"], Generator[Any, Any, Any]]

_tid_counter = itertools.count(1)


class TaskState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    EXITED = "exited"


class SchedPolicy(enum.Enum):
    """Scheduling class: CFS (default) or SCHED_FIFO real-time."""

    CFS = "cfs"
    FIFO = "fifo"


#: Highest SCHED_FIFO priority (sched_get_priority_max(SCHED_FIFO)).
FIFO_PRIORITY_MAX = 99

#: Default CFS nice-0 weight (Linux's NICE_0_LOAD scale, simplified).
CFS_DEFAULT_WEIGHT = 1024


class Task:
    """One schedulable thread of the rich OS."""

    __slots__ = (
        "tid", "name", "body", "policy", "priority", "weight", "affinity",
        "is_fifo",
        "state", "core_index", "gen",
        "vruntime", "cpu_remaining", "has_cpu_request", "pending_send",
        "penalty_pending",
        "total_cpu", "dispatch_count", "preempt_count", "secure_preempt_count",
        "sleep_count", "exit_value", "exited_signal", "wake_event",
    )

    def __init__(
        self,
        name: str,
        body: TaskBody,
        policy: SchedPolicy = SchedPolicy.CFS,
        priority: int = 0,
        weight: int = CFS_DEFAULT_WEIGHT,
        affinity: Optional[FrozenSet[int]] = None,
    ) -> None:
        self.tid = next(_tid_counter)
        self.name = name
        self.body = body
        self.policy = policy
        #: scheduling class never changes after construction; a plain bool
        #: keeps the dispatcher's hottest branch off the property protocol.
        self.is_fifo = policy is SchedPolicy.FIFO
        self.priority = priority
        self.weight = weight
        #: allowed cores; None means any core (sched_setaffinity semantics).
        self.affinity = affinity
        self.state = TaskState.NEW
        #: core the task is queued on / running on; None before first wake.
        self.core_index: Optional[int] = None
        self.gen: Optional[Generator[Any, Any, Any]] = None
        # --- scheduling bookkeeping --------------------------------------
        self.vruntime = 0.0
        self.cpu_remaining = 0.0
        self.has_cpu_request = False
        self.pending_send: Any = None
        #: pay a cache-refill penalty at next dispatch (set on preemption).
        self.penalty_pending = False
        # --- statistics ---------------------------------------------------
        self.total_cpu = 0.0
        self.dispatch_count = 0
        self.preempt_count = 0
        self.secure_preempt_count = 0
        self.sleep_count = 0
        self.exit_value: Any = None
        self.exited_signal = Signal(f"task-{self.tid}-exit")
        self.wake_event = None  # pending sleep-wake simulator event

    # ------------------------------------------------------------------
    def ensure_started(self) -> None:
        """Instantiate the generator on first dispatch."""
        if self.gen is None:
            self.gen = self.body(self)

    def allowed_on(self, core_index: int) -> bool:
        return self.affinity is None or core_index in self.affinity

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.EXITED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.tid} {self.name!r} {self.policy.value} "
            f"{self.state.value} core={self.core_index}>"
        )


def pin_to(core_index: int) -> FrozenSet[int]:
    """Affinity mask pinning a task to a single core."""
    return frozenset((core_index,))
