"""The rich OS scheduler.

Executes task generators on the simulated cores, honouring:

* **CPU affinity** — a pinned task never migrates; when its core is taken
  into the secure world the task simply freezes, which is the side channel
  every prober in the paper exploits.
* **Scheduling classes** — SCHED_FIFO beats CFS; a waking FIFO task
  preempts a running CFS task immediately (KProber-II's guarantee).
* **Preemption accounting** — tasks preempted by a secure-world entry pay a
  cache-refill penalty on resume and are counted separately; the Figure 7
  overhead experiment reads these numbers.
* **Interrupt time stealing** — tick/IRQ handler time extends the running
  task's wall-clock quantum without crediting it CPU progress.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.kernel.sched.runqueue import CoreRunQueue
from repro.kernel.threads import SchedPolicy, Task, TaskState
from repro.sim.process import CpuRequest, SleepRequest, WaitRequest

#: CPU remainders below this are treated as complete (float dust).
_EPSILON = 1e-15

#: Listener signature for busy/idle transitions: (core_index, busy).
BusyListener = Callable[[int, bool], None]


class RichScheduler:
    """Per-core two-class scheduler over the simulated machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.trace = machine.trace
        kcfg = machine.config.kernel
        self.cfs_slice = kcfg.cfs_slice
        self.run_queues = [CoreRunQueue(core.index) for core in machine.cores]
        #: core objects indexed by core_index — dispatch-path shortcut for
        #: ``machine.cores[...]``.
        self._core_of = list(machine.cores)
        self._busy_listeners: List[BusyListener] = []
        self.tasks: List[Task] = []
        for core in machine.cores:
            core.on_enter_secure.append(self._on_enter_secure)
            core.on_exit_secure.append(self._on_exit_secure)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def spawn(self, task: Task, core_index: Optional[int] = None) -> Task:
        """Make a new task runnable (clone()/pthread_create equivalent)."""
        if task.state is not TaskState.NEW:
            raise SchedulingError(f"task {task.tid} spawned twice")
        self.tasks.append(task)
        if core_index is not None:
            if not task.allowed_on(core_index):
                raise SchedulingError(
                    f"task {task.tid} affinity excludes core {core_index}"
                )
            task.core_index = core_index
        self.wake(task)
        return task

    def wake(self, task: Task, send_value: Any = None) -> None:
        """Transition a sleeping/blocked/new task to READY and place it."""
        if task.state in (TaskState.READY, TaskState.RUNNING):
            return
        if task.state is TaskState.EXITED:
            raise SchedulingError(f"cannot wake exited task {task.tid}")
        if send_value is not None:
            task.pending_send = send_value
        task.state = TaskState.READY
        rq = self._choose_queue(task)
        rq.enqueue(task)
        self._after_enqueue(rq, task)

    def add_busy_listener(self, listener: BusyListener) -> None:
        """Subscribe to per-core busy/idle transitions (tick management)."""
        self._busy_listeners.append(listener)
        # Report current state so late subscribers start consistent.
        for rq in self.run_queues:
            listener(rq.core_index, rq.busy)

    def busy(self, core_index: int) -> bool:
        return self.run_queues[core_index].busy

    def current_task(self, core_index: int) -> Optional[Task]:
        return self.run_queues[core_index].current

    # ------------------------------------------------------------------
    # Interrupt integration
    # ------------------------------------------------------------------
    def steal_time(self, core_index: int, cost: float) -> None:
        """Account interrupt-handler time against the running quantum."""
        if cost <= 0:
            return
        rq = self.run_queues[core_index]
        event = rq.quantum_event
        if rq.current is None or event is None or not event.pending:
            return
        remaining_wall = max(event.time - self.sim.now, 0.0)
        event.cancel()
        rq.quantum_event = self.sim.schedule(
            remaining_wall + cost, self._quantum_end, rq, rq.current
        )
        rq.quantum_started += cost

    def tick(self, core_index: int) -> None:
        """Scheduling-clock tick: currently only CFS overrun protection."""
        rq = self.run_queues[core_index]
        task = rq.current
        if task is None or task.is_fifo:
            return
        # If a quantum somehow exceeds the slice (e.g. after steals) and
        # other fair tasks wait, force a round-robin switch.
        ran = self.sim.now - rq.quantum_started
        if rq.cfs and ran > self.cfs_slice:
            self._preempt_current(rq, secure=False)
            self._dispatch(rq)

    # ------------------------------------------------------------------
    # Secure-world hooks
    # ------------------------------------------------------------------
    def _on_enter_secure(self, core: Core) -> None:
        rq = self.run_queues[core.index]
        task = rq.current
        if task is not None:
            task.secure_preempt_count += 1
        self._preempt_current(rq, secure=True)

    def _on_exit_secure(self, core: Core) -> None:
        self._dispatch(self.run_queues[core.index])

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _choose_queue(self, task: Task) -> CoreRunQueue:
        affinity = task.affinity
        if affinity is not None and len(affinity) == 1:
            # Pinned task (every prober thread): its sole queue, no scan.
            for index in affinity:
                return self.run_queues[index]
        allowed = [
            rq for rq in self.run_queues if task.allowed_on(rq.core_index)
        ]
        if not allowed:
            raise SchedulingError(f"task {task.tid} has an empty affinity mask")
        if len(allowed) == 1:
            return allowed[0]
        # Prefer the previous core when it is reasonably placed (cache
        # affinity), otherwise the least loaded *available* core.
        available = [
            rq for rq in allowed
            if self.machine.cores[rq.core_index].available_to_normal_world
        ]
        candidates = available if available else allowed
        if task.core_index is not None:
            for rq in candidates:
                if rq.core_index == task.core_index and rq.load == 0:
                    return rq
        return min(candidates, key=lambda rq: (rq.load, rq.core_index))

    def _after_enqueue(self, rq: CoreRunQueue, task: Task) -> None:
        self._report_busy(rq)
        core = self._core_of[rq.core_index]
        if not core.available_to_normal_world:
            return
        current = rq.current
        if current is None:
            self._dispatch(rq)
        elif task.is_fifo and (
            not current.is_fifo or current.priority < task.priority
        ):
            # Real-time wake-up preemption: the paper's KProber-II path.
            self._preempt_current(rq, secure=False)
            self._dispatch(rq)

    # ------------------------------------------------------------------
    # Dispatch / quantum machinery
    # ------------------------------------------------------------------
    def _dispatch(self, rq: CoreRunQueue) -> None:
        core = self._core_of[rq.core_index]
        if rq.current is not None or not core.available_to_normal_world:
            return
        while True:
            task = rq.pick_next()
            if task is None:
                self._report_busy(rq)
                return
            rq.current = task
            task.state = TaskState.RUNNING
            task.core_index = rq.core_index
            task.dispatch_count += 1
            if self._advance_until_cpu(rq, task):
                self._begin_quantum(rq, task, new_dispatch=True)
                self._report_busy(rq)
                return
            # Task blocked/slept/exited during advance; pick another.
            if rq.current is task:
                rq.current = None

    def _advance_until_cpu(self, rq: CoreRunQueue, task: Task) -> bool:
        """Run the generator until it owns a CPU request or goes unrunnable.

        Returns True when the task holds a CPU request and should execute;
        False when it slept, blocked, or exited (caller re-dispatches).
        """
        task.ensure_started()
        while not task.has_cpu_request:
            send_value, task.pending_send = task.pending_send, None
            try:
                request = task.gen.send(send_value)
            except StopIteration as stop:
                self._task_exited(rq, task, stop.value)
                return False
            if isinstance(request, CpuRequest):
                if request.seconds <= _EPSILON:
                    continue  # zero-cost request completes instantly
                task.cpu_remaining = request.seconds
                task.has_cpu_request = True
            elif isinstance(request, SleepRequest):
                task.state = TaskState.SLEEPING
                task.sleep_count += 1
                if rq.current is task:
                    rq.current = None
                task.wake_event = self.sim.schedule(
                    request.seconds, self._sleep_done, task
                )
                return False
            elif isinstance(request, WaitRequest):
                task.state = TaskState.BLOCKED
                if rq.current is task:
                    rq.current = None
                request.signal.add_waiter(
                    lambda payload, t=task: self.wake(t, payload)
                )
                return False
            else:
                raise SimulationError(
                    f"task {task.tid} yielded unknown request {request!r}"
                )
        return True

    def _begin_quantum(self, rq: CoreRunQueue, task: Task, new_dispatch: bool) -> None:
        core = self._core_of[rq.core_index]
        delay = 0.0
        if new_dispatch:
            delay += core.perf.dispatch()
            if task.penalty_pending:
                delay += core.perf.preemption_penalty()
                task.penalty_pending = False
        quantum = task.cpu_remaining if task.is_fifo else min(
            task.cpu_remaining, self.cfs_slice
        )
        rq.quantum_started = self.sim.now + delay
        rq.quantum_cpu = quantum
        rq.quantum_event = self.sim.schedule(
            delay + quantum, self._quantum_end, rq, task
        )

    def _quantum_end(self, rq: CoreRunQueue, task: Task) -> None:
        if rq.current is not task:
            return  # stale event (task was preempted meanwhile)
        rq.quantum_event = None
        self._charge(rq, task, rq.quantum_cpu)
        if task.cpu_remaining <= _EPSILON:
            task.has_cpu_request = False
            task.cpu_remaining = 0.0
            if not self._advance_until_cpu(rq, task):
                self._dispatch(rq)
                self._report_busy(rq)
                return
        if self._should_requeue(rq, task):
            task.state = TaskState.READY
            task.preempt_count += 1
            rq.current = None
            rq.enqueue(task)
            self._dispatch(rq)
        else:
            self._begin_quantum(rq, task, new_dispatch=False)

    def _should_requeue(self, rq: CoreRunQueue, task: Task) -> bool:
        if task.is_fifo:
            waiting = rq.max_fifo_priority()
            return waiting is not None and waiting > task.priority
        return rq.queued_count > 0

    def _preempt_current(self, rq: CoreRunQueue, secure: bool) -> None:
        task = rq.current
        if task is None:
            return
        event = rq.quantum_event
        if event is not None:
            event.cancel()
            rq.quantum_event = None
        elapsed = min(
            max(self.sim.now - rq.quantum_started, 0.0), rq.quantum_cpu
        )
        self._charge(rq, task, elapsed)
        if task.cpu_remaining <= _EPSILON:
            task.has_cpu_request = False
            task.cpu_remaining = 0.0
        task.preempt_count += 1
        task.penalty_pending = True
        task.state = TaskState.READY
        rq.current = None
        rq.enqueue(task)
        if not secure:
            self._report_busy(rq)

    def _charge(self, rq: CoreRunQueue, task: Task, cpu_seconds: float) -> None:
        if cpu_seconds <= 0:
            return
        task.total_cpu += cpu_seconds
        task.cpu_remaining = max(task.cpu_remaining - cpu_seconds, 0.0)
        if not task.is_fifo:
            task.vruntime += cpu_seconds * (1024.0 / task.weight)
            rq.cfs_clock = max(rq.cfs_clock, task.vruntime)

    def _sleep_done(self, task: Task) -> None:
        task.wake_event = None
        if task.state is TaskState.SLEEPING:
            self.wake(task)

    def _task_exited(self, rq: CoreRunQueue, task: Task, value: Any) -> None:
        task.state = TaskState.EXITED
        task.exit_value = value
        if rq.current is task:
            rq.current = None
        task.exited_signal.fire(value)
        self.trace.emit(self.sim.now, "sched", "task exited",
                        tid=task.tid, name=task.name)

    # ------------------------------------------------------------------
    def _report_busy(self, rq: CoreRunQueue) -> None:
        busy = rq.busy
        if busy == rq.busy_reported:
            return
        rq.busy_reported = busy
        for listener in self._busy_listeners:
            listener(rq.core_index, busy)
