"""Per-core run queues with two scheduling classes.

Mirrors the Linux structure the paper's probers depend on: a SCHED_FIFO
real-time class that always beats the fair (CFS) class, and a fair class
that picks the smallest virtual runtime.  KProber-II's reliability comes
precisely from sitting at the top of the FIFO class.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulingError
from repro.kernel.threads import Task
from repro.sim.events import Event


class CoreRunQueue:
    """Runnable tasks waiting for (or holding) one core."""

    __slots__ = (
        "core_index", "cfs", "fifo", "current",
        "quantum_event", "quantum_started", "quantum_cpu",
        "cfs_clock", "busy_reported",
    )

    def __init__(self, core_index: int) -> None:
        self.core_index = core_index
        self.cfs: List[Task] = []
        self.fifo: List[Task] = []
        self.current: Optional[Task] = None
        #: event firing when the running task's quantum expires.
        self.quantum_event: Optional[Event] = None
        #: wall time at which the current quantum's CPU consumption starts
        #: (shifted forward by interrupt time steals).
        self.quantum_started = 0.0
        #: CPU seconds granted to the current quantum.
        self.quantum_cpu = 0.0
        #: monotone lower bound for newly enqueued CFS vruntimes.
        self.cfs_clock = 0.0
        #: last busy/idle state reported to listeners (tick management).
        self.busy_reported = False

    # ------------------------------------------------------------------
    def enqueue(self, task: Task) -> None:
        if task is self.current:
            raise SchedulingError(f"task {task.tid} enqueued while current")
        if task.is_fifo:
            if task in self.fifo:
                raise SchedulingError(f"task {task.tid} double-enqueued (fifo)")
            self.fifo.append(task)
        else:
            if task in self.cfs:
                raise SchedulingError(f"task {task.tid} double-enqueued (cfs)")
            # CFS: never let a sleeper return with an ancient vruntime and
            # monopolise the core.
            task.vruntime = max(task.vruntime, self.cfs_clock)
            self.cfs.append(task)
        task.core_index = self.core_index

    def pick_next(self) -> Optional[Task]:
        """Remove and return the next task: FIFO (highest prio) before CFS."""
        if self.fifo:
            best_index = 0
            best_prio = self.fifo[0].priority
            for i in range(1, len(self.fifo)):
                if self.fifo[i].priority > best_prio:
                    best_index, best_prio = i, self.fifo[i].priority
            return self.fifo.pop(best_index)
        if self.cfs:
            best_index = 0
            best_vr = self.cfs[0].vruntime
            for i in range(1, len(self.cfs)):
                if self.cfs[i].vruntime < best_vr:
                    best_index, best_vr = i, self.cfs[i].vruntime
            return self.cfs.pop(best_index)
        return None

    def remove(self, task: Task) -> None:
        """Drop a queued task (e.g. migrated elsewhere)."""
        if task in self.fifo:
            self.fifo.remove(task)
        elif task in self.cfs:
            self.cfs.remove(task)

    # ------------------------------------------------------------------
    @property
    def queued_count(self) -> int:
        return len(self.cfs) + len(self.fifo)

    @property
    def load(self) -> int:
        """Queued plus running task count (core selection metric)."""
        return self.queued_count + (1 if self.current is not None else 0)

    @property
    def busy(self) -> bool:
        """Does this core need a scheduling-clock tick right now?"""
        return self.current is not None or self.queued_count > 0

    def max_fifo_priority(self) -> Optional[int]:
        if not self.fifo:
            return None
        return max(task.priority for task in self.fifo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = self.current.tid if self.current else None
        return (
            f"<RunQueue core={self.core_index} current={cur} "
            f"fifo={len(self.fifo)} cfs={len(self.cfs)}>"
        )
