"""Rich OS scheduling: per-core run queues and the two-class scheduler."""

from repro.kernel.sched.runqueue import CoreRunQueue
from repro.kernel.sched.scheduler import RichScheduler

__all__ = ["CoreRunQueue", "RichScheduler"]
