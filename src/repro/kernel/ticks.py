"""Scheduling-clock ticks (CONFIG_HZ, NO_HZ_IDLE).

Each core raises a non-secure timer interrupt ``HZ`` times per second while
it has runnable work; idle cores stop ticking (``CONFIG_NO_HZ_IDLE``), which
is why KProber-I must keep a spinner thread on every core it wants to probe
from.  Tick interrupts route through the GIC, so a core held by the secure
world has its ticks *pended and coalesced* until the normal world resumes —
one observable consequence of an introspection round.

Tick hooks model code injected into the timer interrupt handler (KProber-I's
Time Reporter/Comparer): each hook runs during the handler and returns the
extra CPU time it consumed, which is stolen from the interrupted task.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.hw.timer import NS_TIMER_INTID
from repro.kernel.sched.scheduler import RichScheduler
from repro.sim.events import Event

#: A tick hook: runs in the handler, returns its CPU cost in seconds.
TickHook = Callable[[Core], float]


class TickManager:
    """Per-core periodic tick driver with NO_HZ_IDLE semantics."""

    def __init__(self, machine: Machine, scheduler: RichScheduler) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.scheduler = scheduler
        self.hz = machine.config.kernel.hz
        self.period = 1.0 / self.hz
        self._armed: Dict[int, Optional[Event]] = {
            core.index: None for core in machine.cores
        }
        #: per-core phase stagger so all cores do not tick simultaneously.
        self._phase = {
            core.index: (core.index * self.period) / len(machine.cores)
            for core in machine.cores
        }
        self._hooks: List[TickHook] = []
        self.tick_count = 0
        machine.gic.register_ns_handler(NS_TIMER_INTID, self._tick_irq)
        scheduler.add_busy_listener(self._busy_changed)

    # ------------------------------------------------------------------
    def add_tick_hook(self, hook: TickHook) -> Callable[[], None]:
        """Inject code into the tick handler; returns an uninstaller.

        This is the integration point KProber-I abuses after patching the
        IRQ exception vector.
        """
        self._hooks.append(hook)

        def uninstall() -> None:
            if hook in self._hooks:
                self._hooks.remove(hook)

        return uninstall

    # ------------------------------------------------------------------
    def _busy_changed(self, core_index: int, busy: bool) -> None:
        if busy and self._armed[core_index] is None:
            self._arm(core_index)
        # On !busy we simply let any armed event fire once more; the
        # handler will not re-arm for an idle core.

    def _arm(self, core_index: int) -> None:
        phase = self._phase[core_index]
        periods_elapsed = int((self.sim.now - phase) / self.period) + 1
        fire_at = phase + periods_elapsed * self.period
        if fire_at <= self.sim.now:
            fire_at += self.period
        self._armed[core_index] = self.sim.schedule_at(
            fire_at, self._raise, core_index
        )

    def _raise(self, core_index: int) -> None:
        self._armed[core_index] = None
        core = self.machine.cores[core_index]
        # Route through the GIC: pended (and coalesced) if the core is in
        # the secure world, delivered to the handler otherwise.
        self.machine.gic.trigger(core, NS_TIMER_INTID)

    def _tick_irq(self, core: Core, _intid: int) -> None:
        self.tick_count += 1
        cost = core.perf.tick()
        for hook in self._hooks:
            cost += hook(core)
        self.scheduler.steal_time(core.index, cost)
        self.scheduler.tick(core.index)
        if self.scheduler.busy(core.index) and self._armed[core.index] is None:
            self._arm(core.index)
