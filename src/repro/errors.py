"""Exception hierarchy for the SATIN reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used inconsistently."""


class SchedulingError(SimulationError):
    """A scheduler invariant was violated (e.g. two tasks on one core)."""


class HardwareError(ReproError):
    """A simulated hardware component was misconfigured or misused."""


class SecureAccessError(HardwareError):
    """Normal-world code attempted to touch a secure-world resource.

    This models the TrustZone hardware fault: the secure address space,
    secure timers, and secure registers are invisible to the normal world.
    """


class MemoryAccessError(HardwareError):
    """An access fell outside the physical memory map."""


class KernelError(ReproError):
    """The simulated rich OS detected an inconsistent operation."""


class ConfigurationError(ReproError):
    """A configuration dataclass carried out-of-range values."""


class IntrospectionError(ReproError):
    """The secure-world introspection engine was misconfigured."""


class AttackError(ReproError):
    """An attack component (rootkit / prober / evader) was misused."""


class CampaignError(ReproError):
    """A Monte-Carlo campaign was misconfigured or its cache is unusable."""


class ObservabilityError(ReproError):
    """The telemetry subsystem (metrics / trace export) was misused."""


class ServiceError(ReproError):
    """The campaign service (jobs, executors, HTTP API) was misused."""


class JobTransitionError(ServiceError):
    """A job was asked to make an invalid lifecycle transition."""


class BackpressureError(ServiceError):
    """The service refused a submission to protect itself.

    Raised when the pending queue is at capacity or a client exceeds its
    in-flight cap (HTTP 429), or while the server is draining (HTTP 503).
    ``retry_after`` is the suggested wait in seconds; the HTTP layer
    forwards it as a ``Retry-After`` header.
    """

    def __init__(
        self, message: str, retry_after: float = 1.0, status: int = 429
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.status = status


class FaultError(ReproError):
    """Base class for the fault-injection subsystem (:mod:`repro.faults`)."""


class FaultPlanError(FaultError):
    """A fault plan was unknown, malformed, or carried bad parameters."""


class FaultInjectionError(FaultError):
    """The fault injector was wired or driven inconsistently."""
