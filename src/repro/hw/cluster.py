"""big.LITTLE cluster grouping.

The Juno r1 pairs a power-efficient 4-core Cortex-A53 cluster with a
performant 2-core Cortex-A57 cluster.  Clusters only group cores and expose
cluster-level statistics; all behaviour lives on the cores themselves.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hw.core import Core


class Cluster:
    """A named group of cores sharing one timing model."""

    __slots__ = ("name", "cores")

    def __init__(self, name: str, cores: Sequence[Core]) -> None:
        self.name = name
        self.cores: List[Core] = list(cores)

    @property
    def core_indices(self) -> List[int]:
        return [core.index for core in self.cores]

    def total_secure_time(self) -> float:
        """Aggregate time this cluster's cores spent in the secure world."""
        return sum(core.secure_time_total for core in self.cores)

    def total_secure_entries(self) -> int:
        return sum(core.secure_entries for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.name} cores={self.core_indices}>"
