"""Interrupt controller model (GIC-like) with TrustZone interrupt groups.

The two routing requirements from Section II-B are implemented:

1. *Secure* interrupts always reach the secure world (via the monitor),
   even when the core currently runs the normal world.
2. *Non-secure* interrupts reach the normal world.  While a core executes
   in the secure world, delivery depends on the secure software's choice:
   SATIN blocks them for the duration of a round (``SCR_EL3.IRQ = 0`` plus
   priority configuration — the non-preemptive secure mode); a preemptive
   secure world lets the monitor pause secure execution instead.

Pended non-secure interrupts are *coalesced per interrupt ID* (level
semantics): a timer tick that fires three times while the core is away is
delivered once on return, exactly like a level-triggered line.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, List, Set

from repro.errors import HardwareError
from repro.hw.world import World
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.core import Core
    from repro.hw.monitor import SecureMonitor


class InterruptGroup(enum.Enum):
    """GIC interrupt group: G0 (secure) or G1NS (non-secure)."""

    SECURE = "secure"
    NONSECURE = "nonsecure"


class Gic:
    """Distributes interrupts to cores according to world and routing state."""

    def __init__(self, sim: Simulator, trace: TraceRecorder) -> None:
        self.sim = sim
        self.trace = trace
        self._groups: Dict[int, InterruptGroup] = {}
        self._secure_handlers: Dict[int, Callable[["Core", int], None]] = {}
        self._ns_handlers: Dict[int, Callable[["Core", int], None]] = {}
        self._pending_ns: Dict[int, List[int]] = {}
        self._pending_ns_set: Dict[int, Set[int]] = {}
        self._pending_secure: Dict[int, List[int]] = {}
        self._ns_blocked: Dict[int, bool] = {}
        self._monitor: "SecureMonitor | None" = None
        self.delivered_ns = 0
        self.delivered_secure = 0
        self.pended_ns = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor: "SecureMonitor") -> None:
        self._monitor = monitor

    def configure(self, intid: int, group: InterruptGroup) -> None:
        """Assign an interrupt ID to a group."""
        self._groups[intid] = group

    def register_secure_handler(self, intid: int, handler: Callable[["Core", int], None]) -> None:
        """Handler invoked (via the monitor) for a secure interrupt."""
        self.configure(intid, InterruptGroup.SECURE)
        self._secure_handlers[intid] = handler

    def register_ns_handler(self, intid: int, handler: Callable[["Core", int], None]) -> None:
        """Normal-world (rich OS) handler for a non-secure interrupt."""
        self.configure(intid, InterruptGroup.NONSECURE)
        self._ns_handlers[intid] = handler

    # ------------------------------------------------------------------
    # Routing configuration used by SATIN
    # ------------------------------------------------------------------
    def set_ns_blocked(self, core_index: int, blocked: bool) -> None:
        """Block (or unblock) NS interrupt delivery while in secure world.

        SATIN sets this for the duration of one integrity-checking round so
        the normal world cannot stretch the round with interrupt storms.
        """
        self._ns_blocked[core_index] = blocked

    def ns_blocked(self, core_index: int) -> bool:
        return self._ns_blocked.get(core_index, False)

    # ------------------------------------------------------------------
    # Interrupt entry point
    # ------------------------------------------------------------------
    def trigger(self, core: "Core", intid: int) -> None:
        """Raise interrupt ``intid`` targeting ``core``."""
        group = self._groups.get(intid)
        if group is None:
            raise HardwareError(f"interrupt {intid} was never configured")
        if group is InterruptGroup.SECURE:
            self._trigger_secure(core, intid)
        else:
            self._trigger_ns(core, intid)

    def _trigger_secure(self, core: "Core", intid: int) -> None:
        if self._monitor is None:
            raise HardwareError("secure interrupt raised before monitor attached")
        if core.world is World.NORMAL and not core.transitioning:
            self.delivered_secure += 1
            self._monitor.handle_secure_interrupt(core, intid)
        else:
            # Core is already in (or moving to/from) the secure world:
            # pend and deliver once it is back in the normal world.
            self._pending_secure.setdefault(core.index, []).append(intid)
            self.trace.emit(self.sim.now, "gic", "secure interrupt pended",
                            core=core.index, intid=intid)

    def _trigger_ns(self, core: "Core", intid: int) -> None:
        if core.world is World.NORMAL and not core.transitioning:
            self.delivered_ns += 1
            handler = self._ns_handlers.get(intid)
            if handler is not None:
                handler(core, intid)
            return
        if self.ns_blocked(core.index) or self._monitor is None:
            self._pend_ns(core.index, intid)
            return
        # Preemptive secure mode: the monitor pauses secure execution and
        # lets the normal-world handler run (OP-TEE-style foreign interrupt).
        if not self._monitor.preempt_secure(core, intid):
            self._pend_ns(core.index, intid)

    def _pend_ns(self, core_index: int, intid: int) -> None:
        pending = self._pending_ns_set.setdefault(core_index, set())
        if intid not in pending:
            pending.add(intid)
            self._pending_ns.setdefault(core_index, []).append(intid)
            self.pended_ns += 1

    # ------------------------------------------------------------------
    # World-transition hooks (called by the monitor)
    # ------------------------------------------------------------------
    def flush_pending(self, core: "Core") -> None:
        """Deliver interrupts pended while ``core`` was in the secure world.

        Secure interrupts are delivered first (they will immediately pull
        the core back into the secure world); NS interrupts are coalesced.
        """
        secure = self._pending_secure.pop(core.index, None)
        if secure:
            # Deliver only the first pended secure interrupt now; the rest
            # (if any) re-pend automatically because the core leaves the
            # normal world again.
            first, rest = secure[0], secure[1:]
            if rest:
                self._pending_secure[core.index] = rest
            self._trigger_secure(core, first)
            return
        ns = self._pending_ns.pop(core.index, None)
        self._pending_ns_set.pop(core.index, None)
        if ns:
            for intid in ns:
                if core.world is not World.NORMAL:
                    self._pend_ns(core.index, intid)
                    continue
                self.delivered_ns += 1
                handler = self._ns_handlers.get(intid)
                if handler is not None:
                    handler(core, intid)
