"""Simulated hardware: the multi-core TrustZone board."""

from repro.hw.cluster import Cluster
from repro.hw.core import Core
from repro.hw.gic import Gic, InterruptGroup
from repro.hw.memory import MemoryRegion, PhysicalMemory
from repro.hw.monitor import SecureExecution, SecureMonitor
from repro.hw.perf import CorePerf
from repro.hw.platform import DRAM_BASE, SECURE_SRAM_BASE, Machine, build_machine
from repro.hw.registers import RegisterFile, SCR_EL3_IRQ_BIT
from repro.hw.timer import NS_TIMER_INTID, SECURE_TIMER_INTID, SecureTimer, SystemCounter
from repro.hw.world import World

__all__ = [
    "Cluster",
    "Core",
    "CorePerf",
    "DRAM_BASE",
    "Gic",
    "InterruptGroup",
    "Machine",
    "MemoryRegion",
    "NS_TIMER_INTID",
    "PhysicalMemory",
    "RegisterFile",
    "SCR_EL3_IRQ_BIT",
    "SECURE_SRAM_BASE",
    "SECURE_TIMER_INTID",
    "SecureExecution",
    "SecureMonitor",
    "SecureTimer",
    "SystemCounter",
    "World",
    "build_machine",
]
