"""Physical memory with TrustZone secure/normal partitioning.

The TZASC (TrustZone Address Space Controller) is modelled as a per-region
``secure`` flag: a secure region is readable/writable only when the access
originates from the secure world; normal regions are accessible from both
worlds (the secure world has full visibility of normal memory — the property
all TrustZone introspection builds on).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MemoryAccessError, SecureAccessError
from repro.hw.world import World


class MemoryRegion:
    """A contiguous physical region with a security attribute."""

    __slots__ = ("name", "base", "size", "secure", "_backing", "data",
                 "read_count", "write_count")

    def __init__(self, name: str, base: int, size: int, secure: bool) -> None:
        if size <= 0:
            raise MemoryAccessError(f"region {name!r}: size must be positive")
        if base < 0:
            raise MemoryAccessError(f"region {name!r}: negative base address")
        self.name = name
        self.base = base
        self.size = size
        self.secure = secure
        # numpy's zeros() gets calloc'd (lazily zeroed) pages, so building a
        # 256 MB DRAM region costs microseconds instead of a full memset the
        # way ``bytearray(size)`` does; accesses go through the memoryview,
        # which supports the same slicing/assignment the bytearray did.
        self._backing = np.zeros(size, dtype=np.uint8)
        self.data = memoryview(self._backing)
        self.read_count = 0
        self.write_count = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "secure" if self.secure else "normal"
        return f"<MemoryRegion {self.name} [{self.base:#x}, {self.end:#x}) {kind}>"


class PhysicalMemory:
    """The board's physical address space as a set of disjoint regions."""

    def __init__(self) -> None:
        self._regions: List[MemoryRegion] = []

    def add_region(self, name: str, base: int, size: int, secure: bool = False) -> MemoryRegion:
        """Register a new region; overlapping an existing region is an error."""
        region = MemoryRegion(name, base, size, secure)
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise MemoryAccessError(
                    f"region {name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def region_named(self, name: str) -> MemoryRegion:
        for region in self._regions:
            if region.name == name:
                return region
        raise MemoryAccessError(f"no region named {name!r}")

    def region_at(self, addr: int) -> Optional[MemoryRegion]:
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def _resolve(self, addr: int, length: int, world: World, write: bool) -> MemoryRegion:
        region = self.region_at(addr)
        if region is None or not region.contains(addr, length):
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + length:#x}) is outside the memory map"
            )
        if region.secure and world is not World.SECURE:
            op = "write" if write else "read"
            raise SecureAccessError(
                f"normal world cannot {op} secure region {region.name!r}"
            )
        return region

    # ------------------------------------------------------------------
    # World-checked accessors
    # ------------------------------------------------------------------
    def read(self, addr: int, length: int, world: World) -> bytes:
        """Read ``length`` bytes at ``addr`` on behalf of ``world``."""
        region = self._resolve(addr, length, world, write=False)
        region.read_count += 1
        offset = addr - region.base
        return bytes(region.data[offset : offset + length])

    def write(self, addr: int, data: bytes, world: World) -> None:
        """Write ``data`` at ``addr`` on behalf of ``world``."""
        region = self._resolve(addr, len(data), world, write=True)
        region.write_count += 1
        offset = addr - region.base
        region.data[offset : offset + len(data)] = data

    def view(self, addr: int, length: int, world: World) -> memoryview:
        """Zero-copy world-checked view; the fast path for bulk hashing.

        The secure world uses this to hash megabytes of kernel memory
        without copying; mutation through the view is possible and is
        equivalent to :meth:`write` at the same address.
        """
        region = self._resolve(addr, length, world, write=False)
        offset = addr - region.base
        return memoryview(region.data)[offset : offset + length]

    @property
    def regions(self) -> List[MemoryRegion]:
        return list(self._regions)
