"""Per-core performance model: calibrated cost sampling.

Each core owns a :class:`CorePerf` that turns the cluster's
:class:`~repro.config.ClusterTiming` distributions into concrete samples
drawn from core-specific deterministic RNG streams.

The samplers are bound once at construction via
:func:`repro.sim.batch.bind_sampler`: on a plain stream that is
``partial(dist.sample, rng)`` (the scalar engine, one frame fewer per
draw); under a batch replay plan the stream is a
:class:`~repro.sim.batch.ReplayRandom` and the binding is its compiled
replay draw — bit-identical values either way.
"""

from __future__ import annotations

from repro.config import ClusterTiming
from repro.sim.batch import bind_sampler
from repro.sim.rng import RngRegistry


class CorePerf:
    """Samples timing costs for one core."""

    __slots__ = (
        "timing",
        "_rng",
        "hash_byte",
        "snapshot_byte",
        "world_switch",
        "recover_trace_8b",
        "syscall",
        "dispatch",
        "tick",
        "preemption_penalty",
    )

    def __init__(self, timing: ClusterTiming, rng: RngRegistry, core_index: int) -> None:
        self.timing = timing
        self._rng = rng.stream(f"core{core_index}.perf")
        #: Secure-world cost to directly hash one byte (Table I).
        self.hash_byte = bind_sampler(timing.hash_byte, self._rng)
        #: Secure-world cost to snapshot-then-hash one byte (Table I).
        self.snapshot_byte = bind_sampler(timing.snapshot_byte, self._rng)
        #: One-direction EL3 world switch (Section IV-B1).
        self.world_switch = bind_sampler(timing.world_switch, self._rng)
        #: Rootkit restoring one 8-byte attack trace (Section IV-B2).
        self.recover_trace_8b = bind_sampler(timing.recover_trace_8b, self._rng)
        #: Rich-OS system call round trip.
        self.syscall = bind_sampler(timing.syscall, self._rng)
        #: Rich-OS scheduler dispatch latency.
        self.dispatch = bind_sampler(timing.dispatch, self._rng)
        #: Timer-tick handler cost.
        self.tick = bind_sampler(timing.tick, self._rng)
        #: Cache-refill penalty paid by a task resumed after preemption.
        self.preemption_penalty = bind_sampler(timing.preemption_penalty, self._rng)

    @property
    def cluster_name(self) -> str:
        return self.timing.name
