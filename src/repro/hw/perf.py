"""Per-core performance model: calibrated cost sampling.

Each core owns a :class:`CorePerf` that turns the cluster's
:class:`~repro.config.ClusterTiming` distributions into concrete samples
drawn from core-specific deterministic RNG streams.
"""

from __future__ import annotations

from repro.config import ClusterTiming
from repro.sim.rng import RngRegistry


class CorePerf:
    """Samples timing costs for one core."""

    __slots__ = ("timing", "_rng")

    def __init__(self, timing: ClusterTiming, rng: RngRegistry, core_index: int) -> None:
        self.timing = timing
        self._rng = rng.stream(f"core{core_index}.perf")

    @property
    def cluster_name(self) -> str:
        return self.timing.name

    def hash_byte(self) -> float:
        """Secure-world cost to directly hash one byte (Table I)."""
        return self.timing.hash_byte.sample(self._rng)

    def snapshot_byte(self) -> float:
        """Secure-world cost to snapshot-then-hash one byte (Table I)."""
        return self.timing.snapshot_byte.sample(self._rng)

    def world_switch(self) -> float:
        """One-direction EL3 world switch (Section IV-B1)."""
        return self.timing.world_switch.sample(self._rng)

    def recover_trace_8b(self) -> float:
        """Rootkit restoring one 8-byte attack trace (Section IV-B2)."""
        return self.timing.recover_trace_8b.sample(self._rng)

    def syscall(self) -> float:
        """Rich-OS system call round trip."""
        return self.timing.syscall.sample(self._rng)

    def dispatch(self) -> float:
        """Rich-OS scheduler dispatch latency."""
        return self.timing.dispatch.sample(self._rng)

    def tick(self) -> float:
        """Timer-tick handler cost."""
        return self.timing.tick.sample(self._rng)

    def preemption_penalty(self) -> float:
        """Cache-refill penalty paid by a task resumed after preemption."""
        return self.timing.preemption_penalty.sample(self._rng)
