"""EL3 secure monitor: world switching and secure payload execution.

The monitor is the only software allowed to move a core between worlds.  A
secure (timer) interrupt arrives here; the monitor then

1. freezes the normal world on that core *immediately* (context saving
   starts — this is the instant ``t_start`` in the paper's Figure 3),
2. charges one ``Ts_switch`` world-switch delay,
3. runs the registered S-EL1 payload coroutine to completion on the core,
4. charges the return switch and hands the core back to the normal world,
   flushing any interrupts that pended meanwhile.

Payload coroutines yield ``cpu(...)`` requests; the monitor executes them
uncontended (the secure world owns the core outright).  In *preemptive*
secure mode (an OP-TEE-style configuration SATIN deliberately avoids) a
non-secure interrupt may pause the payload mid-request; the pause costs two
world switches plus the handler's execution before the payload resumes —
time an attacker can exploit, which is exactly why SATIN blocks NS
interrupts for the duration of a round (ablated in the benchmarks).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import HardwareError, SimulationError
from repro.hw.core import Core
from repro.hw.gic import Gic
from repro.hw.world import World
from repro.sim.events import Event, SpanEvent
from repro.sim.process import CpuBatchRequest, CpuRequest, SimCoroutine, SleepRequest
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceRecorder

#: Type of a secure payload: given the core it runs on, yields cpu requests.
SecurePayload = Callable[[Core], SimCoroutine]


class SecureExecution:
    """Drives one secure payload coroutine on a core it owns.

    Supports mid-request pausing for the preemptive-secure-mode ablation:
    progress within the current ``cpu`` request is accounted and the
    remainder re-scheduled after the pause.
    """

    __slots__ = (
        "monitor", "core", "gen", "_event", "_request_started",
        "_request_remaining", "_paused", "finished",
    )

    def __init__(self, monitor: "SecureMonitor", core: Core, gen: SimCoroutine) -> None:
        self.monitor = monitor
        self.core = core
        self.gen = gen
        self._event: Optional[Event] = None
        self._request_started = 0.0
        self._request_remaining = 0.0
        self._paused = False
        self.finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._advance(None)

    def _advance(self, send_value: object) -> None:
        sim = self.monitor.sim
        try:
            request = self.gen.send(send_value)
        except StopIteration:
            self.finished = True
            self.monitor._payload_finished(self.core)
            return
        if isinstance(request, (CpuRequest, SleepRequest)):
            seconds = request.seconds
            self._request_started = sim.now
            self._request_remaining = seconds
            self._event = sim.schedule(seconds, self._request_done)
        elif isinstance(request, CpuBatchRequest):
            # A fused scan: one span event covers the whole chunk run.  Only
            # issued when NS interrupts are blocked, so it can never need the
            # mid-request pause path (pause() refuses span events anyway).
            times = request.chunk_times
            self._request_started = sim.now
            self._request_remaining = times[-1] - sim.now
            self._event = sim.schedule_span(times, self._request_done)
        else:
            raise SimulationError(
                f"secure payload may only yield cpu()/sleep(), got {request!r}"
            )

    def _request_done(self) -> None:
        self._event = None
        self._request_remaining = 0.0
        self._advance(None)

    # ------------------------------------------------------------------
    # Preemptive-mode support
    # ------------------------------------------------------------------
    def pause(self) -> bool:
        """Suspend the current request; returns False if not pausable."""
        if self.finished or self._paused or self._event is None:
            return False
        if isinstance(self._event, SpanEvent):
            # Fused chunk runs are indivisible; the GIC pends the interrupt.
            return False
        elapsed = self.monitor.sim.now - self._request_started
        self._request_remaining = max(self._request_remaining - elapsed, 0.0)
        self._event.cancel()
        self._event = None
        self._paused = True
        return True

    def resume(self) -> None:
        """Resume the paused request for its remaining duration."""
        if not self._paused:
            raise SimulationError("resume() without a matching pause()")
        self._paused = False
        sim = self.monitor.sim
        self._request_started = sim.now
        self._event = sim.schedule(self._request_remaining, self._request_done)


class SecureMonitor:
    """The EL3 firmware: owns every world transition."""

    def __init__(
        self,
        sim: Simulator,
        gic: Gic,
        trace: TraceRecorder,
        metrics: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.gic = gic
        self.trace = trace
        self.metrics = metrics
        self._handlers: Dict[int, SecurePayload] = {}
        self._executions: Dict[int, SecureExecution] = {}
        self._entry_started: Dict[int, float] = {}
        gic.attach_monitor(self)
        #: Optional fault hook: extra seconds added to each world-switch
        #: (SMC entry/exit latency spikes).  Installed only by
        #: :mod:`repro.faults`; ``None`` keeps the baseline cost model.
        self.switch_fault: Optional[Callable[[Core], float]] = None
        # --- statistics -------------------------------------------------
        self.switches_to_secure = 0
        self.preemptions = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register_secure_handler(self, intid: int, payload: SecurePayload) -> None:
        """Install the S-EL1 payload run when secure interrupt ``intid`` fires."""
        self._handlers[intid] = payload
        self.gic.register_secure_handler(intid, lambda core, i: None)

    # ------------------------------------------------------------------
    # Entry paths
    # ------------------------------------------------------------------
    def handle_secure_interrupt(self, core: Core, intid: int) -> None:
        """GIC delivered a secure interrupt to a normal-world core."""
        payload = self._handlers.get(intid)
        if payload is None:
            raise HardwareError(f"no secure handler registered for interrupt {intid}")
        self._begin_entry(core, payload)

    def request_secure_entry(self, core: Core, payload: SecurePayload) -> None:
        """Programmatic secure entry (SMC-like), used by measurement harnesses."""
        if not core.available_to_normal_world:
            raise HardwareError(f"core {core.index} is not in the normal world")
        self._begin_entry(core, payload)

    def _begin_entry(self, core: Core, payload: SecurePayload) -> None:
        if core.world is not World.NORMAL or core.transitioning:
            raise HardwareError(
                f"world switch requested on core {core.index} in state "
                f"{core.world}/{core.transitioning}"
            )
        self.switches_to_secure += 1
        core.transitioning = True
        core.notify_enter_secure()  # the normal world loses the core NOW
        switch_cost = core.perf.world_switch()
        if self.switch_fault is not None:
            switch_cost += self.switch_fault(core)
        self._entry_started[core.index] = self.sim.now
        if self.metrics is not None:
            self.metrics.counter("monitor.world_switches").inc()
            self.metrics.histogram("monitor.switch_cost_seconds").observe(switch_cost)
        self.trace.emit(self.sim.now, "monitor", "secure entry begins",
                        core=core.index, switch_cost=switch_cost)
        self.sim.schedule(switch_cost, self._enter_secure, core, payload)

    def _enter_secure(self, core: Core, payload: SecurePayload) -> None:
        core.transitioning = False
        core.world = World.SECURE
        execution = SecureExecution(self, core, payload(core))
        self._executions[core.index] = execution
        execution.start()

    def _payload_finished(self, core: Core) -> None:
        self._executions.pop(core.index, None)
        core.transitioning = True
        core.world = World.SECURE  # still secure during the return switch
        switch_cost = core.perf.world_switch()
        if self.switch_fault is not None:
            switch_cost += self.switch_fault(core)
        if self.metrics is not None:
            self.metrics.counter("monitor.world_switches").inc()
            self.metrics.histogram("monitor.switch_cost_seconds").observe(switch_cost)
        self.sim.schedule(switch_cost, self._exit_secure, core)

    def _exit_secure(self, core: Core) -> None:
        core.world = World.NORMAL
        core.transitioning = False
        entered_at = self._entry_started.pop(core.index, None)
        if self.metrics is not None and entered_at is not None:
            self.metrics.histogram("monitor.secure_residency_seconds").observe(
                self.sim.now - entered_at
            )
        self.trace.emit(self.sim.now, "monitor", "normal world resumed", core=core.index)
        core.notify_exit_secure()
        self.gic.flush_pending(core)

    # ------------------------------------------------------------------
    # Preemptive secure mode (the configuration SATIN avoids)
    # ------------------------------------------------------------------
    def preempt_secure(self, core: Core, intid: int) -> bool:
        """Pause secure execution to service NS interrupt ``intid``.

        Returns False when the payload cannot be paused right now (the GIC
        then pends the interrupt instead).  The pause costs two world
        switches plus the NS handler's execution.
        """
        execution = self._executions.get(core.index)
        if execution is None or not execution.pause():
            return False
        self.preemptions += 1
        if self.metrics is not None:
            self.metrics.counter("monitor.preemptions").inc()
        out_switch = core.perf.world_switch()
        handler_cost = core.perf.tick()
        in_switch = core.perf.world_switch()
        pause_total = out_switch + handler_cost + in_switch
        self.trace.emit(self.sim.now, "monitor", "secure execution preempted",
                        core=core.index, intid=intid, pause=pause_total)
        handler = self.gic._ns_handlers.get(intid)

        def _back_to_secure() -> None:
            execution.resume()

        def _run_ns_handler() -> None:
            if handler is not None:
                handler(core, intid)
            self.sim.schedule(handler_cost + in_switch, _back_to_secure)

        self.sim.schedule(out_switch, _run_ns_handler)
        return True

    # ------------------------------------------------------------------
    def secure_execution_on(self, core_index: int) -> Optional[SecureExecution]:
        """The active secure execution on a core, if any (harness use)."""
        return self._executions.get(core_index)
