"""TrustZone execution worlds.

Every core is, at any instant, executing in exactly one of the two worlds.
The secure world can see all of the normal world's state; the reverse access
is blocked by hardware (modelled by :class:`repro.errors.SecureAccessError`).
"""

from __future__ import annotations

import enum


class World(enum.Enum):
    """The two TrustZone worlds of the ARMv8-A security model."""

    NORMAL = "normal"
    SECURE = "secure"

    @property
    def is_secure(self) -> bool:
        return self is World.SECURE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
