"""Per-core system register file with TrustZone access control.

Only the registers the paper's mechanisms actually touch are modelled:

* ``VBAR_EL1`` — normal-world exception vector base (KProber-I patches the
  table it points to);
* ``SCR_EL3`` — secure configuration register; SATIN clears the IRQ routing
  bit so normal-world interrupts cannot preempt an introspection round;
* ``CNTPS_CTL_EL1`` / ``CNTPS_CVAL_EL1`` — the per-core *secure* physical
  timer control/compare registers driving SATIN's self-activation;
* ``CNTP_CTL_EL0`` / ``CNTP_CVAL_EL0`` — the normal-world timer pair used by
  the rich OS tick.

Secure-only registers raise :class:`SecureAccessError` when the accessing
world is the normal world, which is precisely the hardware property SATIN's
self-activation relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import HardwareError, SecureAccessError
from repro.hw.world import World


class RegisterSpec:
    """Static description of one system register."""

    __slots__ = ("name", "secure_only", "reset_value")

    def __init__(self, name: str, secure_only: bool, reset_value: int = 0) -> None:
        self.name = name
        self.secure_only = secure_only
        self.reset_value = reset_value


#: Registers present on every core.
CORE_REGISTERS = (
    RegisterSpec("VBAR_EL1", secure_only=False),
    RegisterSpec("SCR_EL3", secure_only=True, reset_value=0b0010),  # IRQ routing bit
    RegisterSpec("CNTPS_CTL_EL1", secure_only=True),
    RegisterSpec("CNTPS_CVAL_EL1", secure_only=True),
    RegisterSpec("CNTP_CTL_EL0", secure_only=False),
    RegisterSpec("CNTP_CVAL_EL0", secure_only=False),
)

#: SCR_EL3 bit meaning "route IRQs to EL3 while in secure world".
SCR_EL3_IRQ_BIT = 0b0010


class RegisterFile:
    """One core's system registers, with world-checked access."""

    def __init__(self) -> None:
        self._specs: Dict[str, RegisterSpec] = {s.name: s for s in CORE_REGISTERS}
        self._values: Dict[str, int] = {s.name: s.reset_value for s in CORE_REGISTERS}
        self._write_hooks: Dict[str, Callable[[int], None]] = {}

    def _spec(self, name: str) -> RegisterSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise HardwareError(f"unknown system register {name!r}")
        return spec

    def read(self, name: str, world: World) -> int:
        """Read a register from the given world."""
        spec = self._spec(name)
        if spec.secure_only and world is not World.SECURE:
            raise SecureAccessError(f"{name} is not accessible from the normal world")
        return self._values[name]

    def write(self, name: str, value: int, world: World) -> None:
        """Write a register from the given world; fires any write hook."""
        spec = self._spec(name)
        if spec.secure_only and world is not World.SECURE:
            raise SecureAccessError(f"{name} is not writable from the normal world")
        self._values[name] = int(value)
        hook = self._write_hooks.get(name)
        if hook is not None:
            hook(int(value))

    def on_write(self, name: str, hook: Optional[Callable[[int], None]]) -> None:
        """Attach a hardware side-effect to writes of ``name``.

        Used by the secure timer: writing CNTPS_CTL_EL1/CNTPS_CVAL_EL1
        (re)arms the compare event.
        """
        self._spec(name)
        if hook is None:
            self._write_hooks.pop(name, None)
        else:
            self._write_hooks[name] = hook

    def peek(self, name: str) -> int:
        """Read without access checks (simulator-internal plumbing only)."""
        return self._values[self._spec(name).name]
