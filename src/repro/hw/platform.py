"""The assembled board: :class:`Machine`.

``Machine`` wires the simulator, memory map, shared counter, cores with
their secure timers, the GIC, and the EL3 monitor into one handle that the
rich OS, the secure world software, and the attack components all plug
into.  ``build_machine(juno_r1_config())`` reproduces the paper's platform.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import MachineConfig, juno_r1_config
from repro.errors import ConfigurationError
from repro.hw.cluster import Cluster
from repro.hw.core import Core
from repro.hw.gic import Gic
from repro.hw.memory import PhysicalMemory
from repro.hw.monitor import SecureMonitor
from repro.hw.perf import CorePerf
from repro.hw.timer import SystemCounter
from repro.hw.world import World
from repro.obs.metrics import MetricsRegistry, active_registry
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceRecorder

#: Physical base of the normal-world DRAM (Juno's DRAM window).
DRAM_BASE = 0x8000_0000

#: Physical base of the secure SRAM holding the trusted OS state.
SECURE_SRAM_BASE = 0x0400_0000


class Machine:
    """The simulated multi-core TrustZone board."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        # Adopt the harness-scoped registry when one is installed (the
        # campaign trial runner meters whole trials this way); otherwise
        # every machine gets its own.
        self.metrics = active_registry() or MetricsRegistry()
        self.sim.metrics = self.metrics
        self.trace = TraceRecorder(enabled=config.trace_enabled, metrics=self.metrics)

        # --- memory map ---------------------------------------------------
        self.memory = PhysicalMemory()
        self.dram = self.memory.add_region("dram", DRAM_BASE, config.dram_size, secure=False)
        self.secure_sram = self.memory.add_region(
            "secure_sram", SECURE_SRAM_BASE, config.secure_memory_size, secure=True
        )

        # --- timers, interrupts, cores -------------------------------------
        self.counter = SystemCounter(self.sim, config.counter_frequency_hz)
        self.gic = Gic(self.sim, self.trace)
        self.monitor = SecureMonitor(self.sim, self.gic, self.trace, metrics=self.metrics)

        self.cores: List[Core] = []
        self.clusters: List[Cluster] = []
        index = 0
        for cluster_cfg in config.clusters:
            cluster_cores = []
            for _ in range(cluster_cfg.core_count):
                perf = CorePerf(cluster_cfg.timing, self.rng, index)
                core = Core(self.sim, index, cluster_cfg.name, perf, self.counter, self.rng)
                core.secure_timer.interrupt_sink = self._secure_timer_fired
                self.cores.append(core)
                cluster_cores.append(core)
                index += 1
            self.clusters.append(Cluster(cluster_cfg.name, cluster_cores))

        #: Probes registered by components that may mutate or observe kernel
        #: memory concurrently with a scan (rootkits, evaders, probers).
        #: While any probe reports True, secure-world scans must keep their
        #: one-event-per-chunk timeline so races resolve chunk by chunk.
        self._interference_probes: List[Callable[[], bool]] = []
        #: The installed :class:`repro.faults.injector.FaultInjector`, if
        #: any.  Baseline runs never set this; the checker consults it to
        #: meter fused-scan fallbacks attributable to injected faults.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _secure_timer_fired(self, core_index: int) -> None:
        from repro.hw.timer import SECURE_TIMER_INTID

        self.gic.trigger(self.cores[core_index], SECURE_TIMER_INTID)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def core(self, index: int) -> Core:
        return self.cores[index]

    def cluster(self, name: str) -> Cluster:
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise ConfigurationError(f"no cluster named {name!r}")

    def cores_in_cluster(self, name: str) -> List[Core]:
        return self.cluster(name).cores

    def little_core(self) -> Core:
        """First core of the first (LITTLE) cluster."""
        return self.clusters[0].cores[0]

    def big_core(self) -> Core:
        """First core of the last (big) cluster."""
        return self.clusters[-1].cores[0]

    # ------------------------------------------------------------------
    # Harness-side visibility (NOT available to normal-world components)
    # ------------------------------------------------------------------
    def secure_world_active(self) -> bool:
        """True if any core is in (or moving to/from) the secure world."""
        # Plain loop: this is polled by every accelerated probe iteration,
        # and a generator expression costs a frame per poll.
        for core in self.cores:
            if core.world is World.SECURE or core.transitioning:
                return True
        return False

    def next_secure_timer_fire(self) -> Optional[float]:
        """Earliest armed secure-timer fire time across all cores.

        This is simulator-internal ground truth used only by the
        acceleration oracle and by tests; attack components never see it.
        """
        earliest: Optional[float] = None
        for core in self.cores:
            fire = core.secure_timer.next_fire_time()
            if fire is not None and (earliest is None or fire < earliest):
                earliest = fire
        return earliest

    def register_interference(self, probe: Callable[[], bool]) -> None:
        """Register a predicate that is True while scans may be raced.

        Attack and probe components call this at install time; the
        introspection engine consults :meth:`scan_interference` before
        fusing a scan's chunk events into one span.
        """
        self._interference_probes.append(probe)

    def attach_fault_injector(self, injector) -> None:
        """Register an installed fault injector with the platform.

        Besides exposing it via :attr:`fault_injector`, the injector's
        memory-corrupting classes register as an interference probe so
        fused-span scans automatically fall back to per-chunk scanning
        while such faults may strike (write-during-span would otherwise
        falsify the span's no-interleaving claim).
        """
        self.fault_injector = injector
        self.register_interference(injector.interferes_with_scans)

    def scan_interference(self) -> bool:
        """True while any registered component could interleave with a scan."""
        for probe in self._interference_probes:
            if probe():
                return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (delegates to the simulator)."""
        self.sim.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> None:
        self.sim.run_for(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine cores={len(self.cores)} t={self.sim.now:.6f}>"


def build_machine(config: Optional[MachineConfig] = None) -> Machine:
    """Build a :class:`Machine`; defaults to the paper's Juno r1 setup."""
    return Machine(config if config is not None else juno_r1_config())
