"""ARM generic timer model: shared counter + per-core secure timers.

The shared physical counter (``CNTPCT_EL0``) is readable from both worlds —
it is the clock the probers' Time Reporters sample.  Each core additionally
owns a *secure* physical timer (``CNTPS_CTL_EL1`` / ``CNTPS_CVAL_EL1``):
when enabled and the shared counter reaches the compare value, the core
raises a *secure* timer interrupt, which the GIC routes to the monitor.
Those registers are writable only from the secure world, which is what makes
SATIN's self-activation impossible for the rich OS to suppress or observe.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.registers import RegisterFile
from repro.hw.world import World
from repro.sim.events import Event
from repro.sim.simulator import Simulator

#: Interrupt ID of the per-core secure physical timer (GIC PPI 29 on ARM).
SECURE_TIMER_INTID = 29

#: Interrupt ID of the per-core non-secure physical timer (GIC PPI 30).
NS_TIMER_INTID = 30


class SystemCounter:
    """The shared system counter (``CNTPCT_EL0``).

    Both worlds on every core read the same monotonically increasing value;
    it advances with simulated time at ``frequency_hz``.
    """

    __slots__ = ("sim", "frequency_hz")

    def __init__(self, sim: Simulator, frequency_hz: int) -> None:
        if frequency_hz <= 0:
            raise HardwareError("counter frequency must be positive")
        self.sim = sim
        self.frequency_hz = frequency_hz

    def read_ticks(self) -> int:
        """Current counter value in timer ticks."""
        return int(self.sim.now * self.frequency_hz)

    def read_seconds(self) -> float:
        """Current counter value converted to seconds."""
        return self.sim.now

    def ticks_for(self, seconds: float) -> int:
        """Convert a duration in seconds to counter ticks (rounded up)."""
        ticks = seconds * self.frequency_hz
        whole = int(ticks)
        return whole if whole == ticks else whole + 1

    def seconds_for(self, ticks: int) -> float:
        return ticks / self.frequency_hz


class SecureTimer:
    """One core's secure physical timer.

    Writing the control/compare registers from the secure world (re)arms a
    simulator event; when it fires, ``interrupt_sink(core_index)`` is called
    — wired by the platform to the GIC's secure-interrupt path.
    """

    __slots__ = (
        "sim", "counter", "registers", "core_index", "interrupt_sink",
        "_event", "fire_count", "fault_filter", "dropped_fires", "deferred_fires",
    )

    def __init__(
        self,
        sim: Simulator,
        counter: SystemCounter,
        registers: RegisterFile,
        core_index: int,
    ) -> None:
        self.sim = sim
        self.counter = counter
        self.registers = registers
        self.core_index = core_index
        self.interrupt_sink: Optional[Callable[[int], None]] = None
        self._event: Optional[Event] = None
        self.fire_count = 0
        #: Optional fault-injection hook consulted at each hardware expiry.
        #: Returns ``None`` (deliver normally), ``"drop"`` (the expiry is
        #: lost), or a float (deliver after that many extra seconds).  Only
        #: :mod:`repro.faults` installs one; the baseline never pays for it.
        self.fault_filter: Optional[Callable[[int], object]] = None
        self.dropped_fires = 0
        self.deferred_fires = 0
        registers.on_write("CNTPS_CTL_EL1", self._rearm)
        registers.on_write("CNTPS_CVAL_EL1", self._rearm)

    # ------------------------------------------------------------------
    # Secure-world programming interface
    # ------------------------------------------------------------------
    def program_wakeup(self, at_seconds: float, world: World) -> None:
        """Program the timer to fire at absolute time ``at_seconds``.

        Mirrors the paper's sequence: stop the timer via CNTPS_CTL_EL1,
        write the compare value into CNTPS_CVAL_EL1, then restart.
        """
        self.registers.write("CNTPS_CTL_EL1", 0, world)  # stop
        cval = self.counter.ticks_for(max(at_seconds, self.sim.now))
        self.registers.write("CNTPS_CVAL_EL1", cval, world)
        self.registers.write("CNTPS_CTL_EL1", 1, world)  # enable

    def stop(self, world: World) -> None:
        """Disable the timer."""
        self.registers.write("CNTPS_CTL_EL1", 0, world)

    def next_fire_time(self) -> Optional[float]:
        """Absolute fire time if armed (simulator-internal visibility)."""
        if self._event is not None and self._event.pending:
            return self._event.time
        return None

    # ------------------------------------------------------------------
    # Hardware behaviour
    # ------------------------------------------------------------------
    def _rearm(self, _value: int) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        enabled = self.registers.peek("CNTPS_CTL_EL1") & 1
        if not enabled:
            return
        cval = self.registers.peek("CNTPS_CVAL_EL1")
        fire_at = max(self.counter.seconds_for(cval), self.sim.now)
        self._event = self.sim.schedule_at(fire_at, self._fire)

    def _fire(self) -> None:
        self._event = None
        # Condition still holds? (CTL may have been cleared since arming.)
        if not self.registers.peek("CNTPS_CTL_EL1") & 1:
            return
        if self.fault_filter is not None:
            action = self.fault_filter(self.core_index)
            if action == "drop":
                self.dropped_fires += 1
                return
            if isinstance(action, float) and action > 0.0:
                self.deferred_fires += 1
                self.sim.schedule(action, self._deliver)
                return
        self._deliver()

    def _deliver(self) -> None:
        # Deferred deliveries re-check CTL: a stop() in the meantime wins.
        if not self.registers.peek("CNTPS_CTL_EL1") & 1:
            return
        self.fire_count += 1
        if self.interrupt_sink is None:
            raise HardwareError("secure timer fired with no interrupt sink wired")
        self.interrupt_sink(self.core_index)
