"""CPU core model.

A :class:`Core` carries its TrustZone world state, its per-core system
registers and secure timer, and its calibrated performance model.  The
*observable* property everything in the paper revolves around: while a core
is in the secure world (or transitioning), the normal world cannot run
anything on it — the kernel scheduler is notified through the
``on_enter_secure`` / ``on_exit_secure`` hook lists, and the attacker can
only *infer* the state through that unavailability.
"""

from __future__ import annotations

from typing import Callable, List

from repro.hw.perf import CorePerf
from repro.hw.registers import RegisterFile
from repro.hw.timer import SecureTimer, SystemCounter
from repro.hw.world import World
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator


class Core:
    """One CPU core of the simulated board."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        cluster_name: str,
        perf: CorePerf,
        counter: SystemCounter,
        rng: RngRegistry,
    ) -> None:
        self.sim = sim
        self.index = index
        self.cluster_name = cluster_name
        self.perf = perf
        self.registers = RegisterFile()
        self.secure_timer = SecureTimer(sim, counter, self.registers, index)
        self.world: World = World.NORMAL
        #: True while EL3 is saving/restoring context (the core is lost to
        #: the normal world but the secure payload has not started yet).
        self.transitioning: bool = False
        #: hooks fired the instant the normal world loses / regains the core.
        self.on_enter_secure: List[Callable[["Core"], None]] = []
        self.on_exit_secure: List[Callable[["Core"], None]] = []
        #: Fault-model state: while ``sim.now < stalled_until`` the core is
        #: stalled/offline — interrupt delivery to it is deferred by the
        #: fault injector.  0.0 (the default) means never stalled.
        self.stalled_until: float = 0.0
        # --- statistics -------------------------------------------------
        self.secure_entries = 0
        self.secure_time_total = 0.0
        self._secure_entered_at = 0.0

    # ------------------------------------------------------------------
    @property
    def available_to_normal_world(self) -> bool:
        """Can the rich OS dispatch a task here right now?"""
        return self.world is World.NORMAL and not self.transitioning

    @property
    def stalled(self) -> bool:
        """True while a fault-injected stall/offline window is active."""
        return self.sim.now < self.stalled_until

    def stall_for(self, duration: float) -> float:
        """Open (or extend) a stall window; returns its end time."""
        self.stalled_until = max(self.stalled_until, self.sim.now + duration)
        return self.stalled_until

    def notify_enter_secure(self) -> None:
        """Called by the monitor at the instant the world switch begins."""
        self.secure_entries += 1
        self._secure_entered_at = self.sim.now
        for hook in self.on_enter_secure:
            hook(self)

    def notify_exit_secure(self) -> None:
        """Called by the monitor once the normal world owns the core again."""
        self.secure_time_total += self.sim.now - self._secure_entered_at
        for hook in self.on_exit_secure:
            hook(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Core {self.index} ({self.cluster_name}) world={self.world} "
            f"transitioning={self.transitioning}>"
        )
