"""Snapshot-based introspection primitive.

Traditional hardware-assisted introspection copies the target memory into a
protected buffer and analyses the copy (HyperCheck/SPECTRE style); on
TrustZone the secure world can instead hash normal memory *directly*.
Table I compares the two per-byte costs; this module implements the
snapshot variant: a region of secure SRAM receives the copy, and the copy
(not live kernel memory) is hashed afterwards.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from repro.errors import IntrospectionError
from repro.hw.core import Core
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World
from repro.secure.hashes import Djb2
from repro.sim.process import cpu


class SecureSnapshotBuffer:
    """A staging area in secure SRAM for kernel-memory snapshots."""

    def __init__(self, memory: PhysicalMemory, base: int, capacity: int) -> None:
        region = memory.region_at(base)
        if region is None or not region.secure:
            raise IntrospectionError("snapshot buffer must live in secure memory")
        if not region.contains(base, capacity):
            raise IntrospectionError("snapshot buffer exceeds its secure region")
        self.memory = memory
        self.base = base
        self.capacity = capacity
        self.snapshots_taken = 0
        #: Fault hook: ``(chunk_offset, chunk) -> chunk`` applied to each
        #: chunk as it lands in the buffer — models the copy (not live
        #: kernel memory) being corrupted in flight.  The returned bytes
        #: are both stored and hashed, so a corrupted copy mismatches its
        #: authorized digest while a direct re-scan still verifies clean.
        self.fault_hook: Optional[Callable[[int, bytes], bytes]] = None

    def take_and_hash(
        self,
        core: Core,
        source_addr: int,
        length: int,
        chunk_size: int = 4096,
    ) -> Generator[Any, Any, Tuple[int, bytes]]:
        """Copy ``length`` bytes into the buffer and djb2-hash the copy.

        A coroutine for secure-world execution: each chunk is read from
        live kernel memory at its position in the scan timeline (so a
        concurrent attacker race resolves at chunk granularity), then the
        combined copy+hash cost is charged per Table I's snapshot column.

        Returns ``(digest, copy)``.
        """
        if length > self.capacity:
            raise IntrospectionError(
                f"snapshot of {length} bytes exceeds buffer capacity {self.capacity}"
            )
        self.snapshots_taken += 1
        hasher = Djb2()
        copied = bytearray()
        offset = 0
        while offset < length:
            step = min(chunk_size, length - offset)
            chunk = self.memory.read(source_addr + offset, step, World.SECURE)
            if self.fault_hook is not None:
                chunk = self.fault_hook(offset, chunk)
            self.memory.write(self.base + offset, chunk, World.SECURE)
            copied += chunk
            hasher.update(chunk)
            yield cpu(step * core.perf.snapshot_byte())
            offset += step
        return hasher.digest(), bytes(copied)
