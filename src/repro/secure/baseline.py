"""Baseline asynchronous introspection mechanisms.

The mechanisms TZ-Evader defeats (Section III/IV), expressed as
configurations of the generic engine:

* :func:`pkm_like` — Samsung-KNOX-PKM-style *Periodic Kernel Measurement*:
  a fixed core scans the whole kernel at a fixed period.
* :func:`random_whole_kernel` — the "state-of-the-art defence" of
  Section III-B2: a random core scans the whole kernel at a randomized
  time.  Still loses the multi-core race, which is the paper's point.

Both violate SATIN's area-size bound by construction, so the bound check
is disabled for them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from repro.config import SatinConfig
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.secure.tsp import TestSecurePayload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.satin import Satin


def pkm_like(
    machine: Machine,
    rich_os: RichOS,
    period: float = 8.0,
    core_index: int = 0,
    tsp: Optional[TestSecurePayload] = None,
) -> "Satin":
    """Periodic whole-kernel measurement on one fixed core."""
    from repro.core.satin import Satin

    config = SatinConfig(
        tgoal=period,
        partition_mode="whole",
        random_core=False,
        random_deviation=False,
        block_ns_interrupts=True,
        enforce_area_bound=False,
    )
    engine = Satin(machine, rich_os, config=config, tsp=tsp)
    engine.activation.fixed_core_index = core_index
    return engine


def random_whole_kernel(
    machine: Machine,
    rich_os: RichOS,
    mean_period: float = 8.0,
    tsp: Optional[TestSecurePayload] = None,
) -> "Satin":
    """Whole-kernel scan at a random time on a random core."""
    from repro.core.satin import Satin

    config = SatinConfig(
        tgoal=mean_period,
        partition_mode="whole",
        random_core=True,
        random_deviation=True,
        block_ns_interrupts=True,
        enforce_area_bound=False,
    )
    return Satin(machine, rich_os, config=config, tsp=tsp)


def satin_variant(base: SatinConfig, **changes) -> SatinConfig:
    """A modified SATIN configuration (ablation helper)."""
    return replace(base, **changes)
