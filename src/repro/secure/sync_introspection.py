"""Synchronous introspection (SPROBES / TZ-RKP style), and why it fails.

The paper's related work (Sections I, VII-A, VIII-B): synchronous
mechanisms map security-critical kernel regions read-only and mediate
every write attempt from the secure world — real-time prevention.  Their
two structural weaknesses, both reproduced here:

1. **Incomplete hooking** — only the regions someone thought to protect
   are protected.  The page *table* holding the AP bits is ordinary
   kernel data, so a write-what-where primitive can flip a PTE and then
   write to the "protected" page without ever faulting (the KNOX bypass
   [26], modelled in :mod:`repro.attacks.knoxout`).
2. **No detection after the fact** — once bypassed, nothing re-examines
   memory, which is exactly the gap asynchronous introspection (SATIN)
   closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hw.platform import Machine
from repro.hw.world import World
from repro.kernel.os import RichOS
from repro.kernel.paging import PageTable, ProtectedKernelMemory


@dataclass(frozen=True)
class MediationRecord:
    """One write attempt trapped by the synchronous monitor."""

    time: float
    page_index: int
    offset: int
    length: int
    allowed: bool


class SynchronousIntrospection:
    """Write-mediation monitor over the protected kernel regions."""

    def __init__(self, machine: Machine, rich_os: RichOS) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.page_table = PageTable(rich_os.image)
        self.protected_memory = ProtectedKernelMemory(rich_os.image, self.page_table)
        self.protected_memory.mediator = self._mediate
        self.mediations: List[MediationRecord] = []
        self.protected_pages: List[int] = []
        self.installed = False

    # ------------------------------------------------------------------
    def install(self) -> "SynchronousIntrospection":
        """Protect the classic targets: vector table and syscall table.

        Mirrors SPROBES/TZ-RKP: the hook list is *finite and explicit* —
        the page table itself is conspicuously absent, as in the real
        deployments the KNOX bypass defeated.
        """
        image = self.rich_os.image
        for symbol, length in (
            ("vectors", 16 * 8),
            ("sys_call_table", 440 * 8),
        ):
            offset = image.system_map.symbol(symbol)
            self.protected_pages += self.page_table.protect_range(
                offset, length, World.SECURE
            )
        self.installed = True
        return self

    # ------------------------------------------------------------------
    def _mediate(self, page_index: int, offset: int, data: bytes) -> bool:
        """The secure-world screening of a trapped write: always deny.

        (A real RKP consults a policy; for the static tables we protect,
        every runtime write is illegitimate.)
        """
        record = MediationRecord(
            time=self.machine.sim.now,
            page_index=page_index,
            offset=offset,
            length=len(data),
            allowed=False,
        )
        self.mediations.append(record)
        self.machine.trace.emit(
            self.machine.sim.now, "sync-introspection", "write blocked",
            page=page_index, offset=offset,
        )
        return False

    # ------------------------------------------------------------------
    @property
    def blocked_count(self) -> int:
        return self.protected_memory.blocked_writes

    def write_as_attacker(self, offset: int, data: bytes) -> bool:
        """Normal-world kernel write routed through the protection."""
        return self.protected_memory.write(offset, data, World.NORMAL)
