"""Test-Secure-Payload-like S-EL1 runtime.

The paper modifies ARM Trusted Firmware's Test Secure Payload so its secure
timer interrupt handler performs the integrity check.  This module is that
runtime: it owns the secure-timer interrupt vector and forwards each firing
to a registered *service* coroutine (SATIN's wake handler, a baseline
engine, or a measurement stub).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import IntrospectionError
from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.hw.timer import SECURE_TIMER_INTID
from repro.sim.process import SimCoroutine, cpu

#: A timer service: coroutine run in S-EL1 on the core that woke up.
TimerService = Callable[[Core], SimCoroutine]


class TestSecurePayload:
    """Secure OS runtime dispatching secure timer interrupts."""

    #: The name echoes ARM-TF's "Test Secure Payload"; tell pytest this is
    #: not a test class.
    __test__ = False

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._service: Optional[TimerService] = None
        self.timer_entries = 0
        #: Per-core wake service counts — the round watchdog's evidence
        #: that a programmed wake actually reached S-EL1 on that core.
        self.timer_entries_per_core: Dict[int, int] = {}
        machine.monitor.register_secure_handler(SECURE_TIMER_INTID, self._payload)

    def set_timer_service(self, service: Optional[TimerService]) -> None:
        """Install (or clear) the secure-timer service."""
        if service is not None and self._service is not None:
            raise IntrospectionError("a secure timer service is already installed")
        self._service = service

    def _payload(self, core: Core) -> SimCoroutine:
        self.timer_entries += 1
        self.timer_entries_per_core[core.index] = (
            self.timer_entries_per_core.get(core.index, 0) + 1
        )
        if self._service is None:
            # Spurious wake-up: acknowledge and return to the normal world.
            yield cpu(1e-7)
            return
        yield from self._service(core)
