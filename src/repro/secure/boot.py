"""Trusted boot: the authorized hash table.

During the (trusted) boot stage, before any normal-world code runs, the
secure world hashes each introspection area of the pristine kernel image
and stores the digests in secure SRAM.  The table is physically backed by
bytes in the secure region — the normal world cannot even read them, which
a test asserts directly.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

from repro.errors import IntrospectionError
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.secure.hashes import djb2

#: (offset, length) pair describing one introspection area.
AreaSpan = Tuple[int, int]


class AuthorizedHashStore:
    """Per-area benign digests, resident in secure SRAM."""

    ENTRY_SIZE = 8

    def __init__(
        self,
        memory: PhysicalMemory,
        table_base: int,
        capacity_entries: int = 64,
    ) -> None:
        region = memory.region_at(table_base)
        if region is None or not region.secure:
            raise IntrospectionError("hash table must live in secure memory")
        if not region.contains(table_base, capacity_entries * self.ENTRY_SIZE):
            raise IntrospectionError("hash table exceeds its secure region")
        self.memory = memory
        self.table_base = table_base
        self.capacity_entries = capacity_entries
        self._spans: List[AreaSpan] = []
        self._index_of: Dict[AreaSpan, int] = {}

    # ------------------------------------------------------------------
    def compute_at_boot(self, image: KernelImage, areas: Sequence[AreaSpan]) -> None:
        """Hash the pristine image per area and persist the digests."""
        if len(areas) > self.capacity_entries:
            raise IntrospectionError(
                f"{len(areas)} areas exceed table capacity {self.capacity_entries}"
            )
        self._spans = list(areas)
        self._index_of = {span: i for i, span in enumerate(self._spans)}
        for i, (offset, length) in enumerate(self._spans):
            digest = djb2(image.view(offset, length, World.SECURE))
            self.memory.write(
                self.table_base + i * self.ENTRY_SIZE,
                struct.pack("<Q", digest),
                World.SECURE,
            )

    # ------------------------------------------------------------------
    def expected_digest(self, span: AreaSpan, world: World = World.SECURE) -> int:
        """Authorized digest of an area (secure-world access only)."""
        index = self._index_of.get(span)
        if index is None:
            raise IntrospectionError(f"no authorized digest for area {span}")
        raw = self.memory.read(
            self.table_base + index * self.ENTRY_SIZE, self.ENTRY_SIZE, world
        )
        return struct.unpack("<Q", raw)[0]

    @property
    def spans(self) -> List[AreaSpan]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)
