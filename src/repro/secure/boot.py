"""Trusted boot: the authorized hash table.

During the (trusted) boot stage, before any normal-world code runs, the
secure world hashes each introspection area of the pristine kernel image
and stores the digests in secure SRAM.  The table is physically backed by
bytes in the secure region — the normal world cannot even read them, which
a test asserts directly.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Dict, List, Sequence, Tuple

from repro.errors import IntrospectionError
from repro.hw.memory import PhysicalMemory
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.secure.hashes import djb2

#: (offset, length) pair describing one introspection area.
AreaSpan = Tuple[int, int]

#: Process-scoped cache of trusted-boot digest tables, keyed by the image
#: identity (seed, size, a strided content fingerprint) and the exact area
#: partition.  Fork-pool campaign workers rebuild an identical pristine
#: image every trial; re-deriving ~12 MB of djb2 per build is pure waste.
#: Hits are verified by re-hashing the first and last spans against the
#: live image, so a stale or colliding entry can never go unnoticed —
#: a mismatch falls back to the full recompute.  The cache is invisible to
#: simulated state (table bytes are still written to secure SRAM) and is
#: never metered into a trial's MetricsRegistry, keeping campaign
#: manifests byte-identical with or without it.
_DIGEST_CACHE: Dict[tuple, Tuple[int, ...]] = {}

_DIGEST_CACHE_MAX = 64

#: Guards cache mutation under the thread executor backend (concurrent
#: trials in one process); lookups stay lock-free.
_DIGEST_CACHE_LOCK = threading.Lock()

#: module-level (not per-registry) counters, exposed for the bench CLI.
DIGEST_CACHE_STATS = {"hits": 0, "misses": 0, "rejected": 0}

#: stride of the content fingerprint sample; 64 KiB over a ~12 MB image
#: touches ~182 bytes.
_FINGERPRINT_STRIDE = 1 << 16


def _boot_cache_enabled() -> bool:
    return not os.environ.get("REPRO_NO_BOOT_CACHE")


def _image_fingerprint(image: KernelImage) -> Tuple[int, int, int]:
    """Cheap identity of the pristine image content.

    Seed and size fully determine generated content, but runtime writes
    (symbol tables at boot, down-sized test images) also shape what the
    trusted boot stage hashes — the strided sample catches those.
    """
    view = image.view(0, image.size, World.SECURE)
    sample = bytes(view[::_FINGERPRINT_STRIDE])
    return (image.config.image_seed, image.size, djb2(sample))


class AuthorizedHashStore:
    """Per-area benign digests, resident in secure SRAM."""

    ENTRY_SIZE = 8

    def __init__(
        self,
        memory: PhysicalMemory,
        table_base: int,
        capacity_entries: int = 64,
    ) -> None:
        region = memory.region_at(table_base)
        if region is None or not region.secure:
            raise IntrospectionError("hash table must live in secure memory")
        if not region.contains(table_base, capacity_entries * self.ENTRY_SIZE):
            raise IntrospectionError("hash table exceeds its secure region")
        self.memory = memory
        self.table_base = table_base
        self.capacity_entries = capacity_entries
        self._spans: List[AreaSpan] = []
        self._index_of: Dict[AreaSpan, int] = {}

    # ------------------------------------------------------------------
    def compute_at_boot(
        self, image: KernelImage, areas: Sequence[AreaSpan], cache: bool = True
    ) -> None:
        """Hash the pristine image per area and persist the digests.

        ``cache=False`` (or ``REPRO_NO_BOOT_CACHE=1``) forces the full
        per-area recompute regardless of the process-level digest cache.
        """
        if len(areas) > self.capacity_entries:
            raise IntrospectionError(
                f"{len(areas)} areas exceed table capacity {self.capacity_entries}"
            )
        self._spans = list(areas)
        self._index_of = {span: i for i, span in enumerate(self._spans)}
        digests = None
        key = None
        use_cache = cache and _boot_cache_enabled()
        if use_cache:
            key = (_image_fingerprint(image), tuple(self._spans))
            digests = _DIGEST_CACHE.get(key)
        if digests is not None and self._spans:
            # Trust but verify: re-hash the first and last spans live.
            for probe in {0, len(self._spans) - 1}:
                offset, length = self._spans[probe]
                if djb2(image.view(offset, length, World.SECURE)) != digests[probe]:
                    DIGEST_CACHE_STATS["rejected"] += 1
                    digests = None
                    break
        if digests is None:
            if key is not None:
                with _DIGEST_CACHE_LOCK:
                    _DIGEST_CACHE.pop(key, None)
            digests = tuple(
                djb2(image.view(offset, length, World.SECURE))
                for offset, length in self._spans
            )
            DIGEST_CACHE_STATS["misses"] += 1
            if use_cache:
                with _DIGEST_CACHE_LOCK:
                    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
                        _DIGEST_CACHE.pop(next(iter(_DIGEST_CACHE)))
                    _DIGEST_CACHE[key] = digests
        else:
            DIGEST_CACHE_STATS["hits"] += 1
        # The table bytes always land in secure SRAM: the simulated state is
        # identical whether or not the host-side cache was consulted.
        for i, digest in enumerate(digests):
            self.memory.write(
                self.table_base + i * self.ENTRY_SIZE,
                struct.pack("<Q", digest),
                World.SECURE,
            )

    # ------------------------------------------------------------------
    def expected_digest(self, span: AreaSpan, world: World = World.SECURE) -> int:
        """Authorized digest of an area (secure-world access only)."""
        index = self._index_of.get(span)
        if index is None:
            raise IntrospectionError(f"no authorized digest for area {span}")
        raw = self.memory.read(
            self.table_base + index * self.ENTRY_SIZE, self.ENTRY_SIZE, world
        )
        return struct.unpack("<Q", raw)[0]

    @property
    def spans(self) -> List[AreaSpan]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)
