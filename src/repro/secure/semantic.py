"""Semantic (cross-view) checking of dynamic kernel data structures.

Static hashing cannot protect legitimately mutable kernel data, so the
paper's introduction points to fine-grained structure-aware checking
(OSck, SigGraph, ...).  This checker implements the canonical cross-view
diff for the loaded-module list:

* **list view** — walk the linked list, as the rich OS's own tools would;
* **scan view** — SigGraph-style brute-force signature scan of the slab,
  which needs no pointer integrity;

a live record present in the scan view but absent from the list view is a
DKOM-hidden module.  The check runs in the secure world (the views are
read with secure privilege, so the rootkit cannot intercept them) and can
be charged like any other introspection work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.hw.core import Core
from repro.hw.world import World
from repro.kernel.modules import ModuleList, ModuleRecord
from repro.sim.process import cpu


@dataclass(frozen=True)
class SemanticCheckResult:
    """Outcome of one cross-view check."""

    time: float
    list_view: tuple
    scan_view: tuple
    hidden_modules: tuple

    @property
    def clean(self) -> bool:
        return not self.hidden_modules


class SemanticChecker:
    """Cross-view module-list checker for the secure world."""

    #: per-record inspection cost (pointer chase + signature match).
    RECORD_COST = 2.5e-7

    def __init__(self, modules: ModuleList) -> None:
        self.modules = modules
        self.results: List[SemanticCheckResult] = []
        self.detections = 0

    # ------------------------------------------------------------------
    def check_now(self, now: float = 0.0) -> SemanticCheckResult:
        """Instantaneous cross-view diff (no timing; tests/harness)."""
        list_view = self.modules.walk_list(World.SECURE)
        scan_view = self.modules.scan_slab(World.SECURE)
        listed = {record.offset for record in list_view}
        hidden = tuple(r for r in scan_view if r.offset not in listed)
        result = SemanticCheckResult(
            time=now,
            list_view=tuple(list_view),
            scan_view=tuple(scan_view),
            hidden_modules=hidden,
        )
        self.results.append(result)
        if hidden:
            self.detections += 1
        return result

    def run_check(self, core: Core) -> Generator[Any, Any, SemanticCheckResult]:
        """Timed secure-world coroutine version of :meth:`check_now`."""
        scan_view = self.modules.scan_slab(World.SECURE)
        yield cpu(self.RECORD_COST * self.modules.capacity)
        list_view = self.modules.walk_list(World.SECURE)
        yield cpu(self.RECORD_COST * max(len(list_view), 1))
        listed = {record.offset for record in list_view}
        hidden = tuple(r for r in scan_view if r.offset not in listed)
        result = SemanticCheckResult(
            time=core.sim.now,
            list_view=tuple(list_view),
            scan_view=tuple(scan_view),
            hidden_modules=hidden,
        )
        self.results.append(result)
        if hidden:
            self.detections += 1
        return result


def hidden_module_names(result: SemanticCheckResult) -> List[str]:
    """Convenience: names of the modules only the scan view found."""
    return [record.name for record in result.hidden_modules]
