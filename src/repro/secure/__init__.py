"""Secure-world software: hashing, trusted boot, scanning, baselines."""

from repro.secure.baseline import pkm_like, random_whole_kernel, satin_variant
from repro.secure.boot import AuthorizedHashStore
from repro.secure.hashes import (
    Djb2,
    Sdbm,
    djb2,
    djb2_reference,
    fnv1a,
    sdbm,
    sdbm_reference,
)
from repro.secure.introspect import ScanResult, check_area, scan_area
from repro.secure.semantic import (
    SemanticChecker,
    SemanticCheckResult,
    hidden_module_names,
)
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.secure.sync_introspection import MediationRecord, SynchronousIntrospection
from repro.secure.tsp import TestSecurePayload

__all__ = [
    "AuthorizedHashStore",
    "Djb2",
    "ScanResult",
    "Sdbm",
    "MediationRecord",
    "SemanticCheckResult",
    "SemanticChecker",
    "SecureSnapshotBuffer",
    "SynchronousIntrospection",
    "TestSecurePayload",
    "check_area",
    "djb2",
    "djb2_reference",
    "fnv1a",
    "hidden_module_names",
    "pkm_like",
    "random_whole_kernel",
    "satin_variant",
    "scan_area",
    "sdbm",
    "sdbm_reference",
]
