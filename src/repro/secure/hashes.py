"""Hash functions used by the secure-world integrity checker.

The paper hashes kernel memory with djb2 [31].  We implement djb2 *really*
(the detection experiments depend on actual byte-level mismatches), with a
vectorised numpy fast path: djb2 is linear over Z/2^64 —

    h_out = h_in * 33^L  +  sum_i  c_i * 33^(L-1-i)   (mod 2^64)

so a whole chunk folds in with one dot-like product against a precomputed
power table.  A pure-Python reference implementation cross-checks it in the
tests.  sdbm (same structure, multiplier 65599) and fnv1a (non-linear,
pure Python) are provided as alternatives.
"""

from __future__ import annotations

import threading
from typing import Dict, Union

import numpy as np

_MASK64 = (1 << 64) - 1

#: djb2 initial value and multiplier.
DJB2_INIT = 5381
DJB2_MULT = 33

#: sdbm multiplier (h = h * 65599 + c).
SDBM_MULT = 65599

#: fnv1a-64 parameters.
FNV1A_INIT = 0xCBF29CE484222325
FNV1A_PRIME = 0x100000001B3

#: Chunk length of the precomputed power tables.
_TABLE_LEN = 1 << 16

_pow_tables: Dict[int, np.ndarray] = {}

Buffer = Union[bytes, bytearray, memoryview]


def _pow_table(mult: int) -> np.ndarray:
    """Descending powers [mult^(L-1), ..., mult^1, mult^0] mod 2^64."""
    table = _pow_tables.get(mult)
    if table is None:
        table = np.empty(_TABLE_LEN, dtype=np.uint64)
        value = 1
        for i in range(_TABLE_LEN - 1, -1, -1):
            table[i] = value
            value = (value * mult) & _MASK64
        _pow_tables[mult] = table
    return table


#: Reusable widening buffer for :func:`_fold_chunk`.  ``update`` runs to
#: completion synchronously (no suspension points inside a fold), but the
#: thread-backend campaign executor runs whole trials on concurrent
#: threads, so the scratch is thread-local: one buffer per hashing thread
#: still saves a fresh 8x-size uint64 allocation per <= 64 KiB chunk.
_scratch_local = threading.local()


def _scratch(n: int) -> np.ndarray:
    buffer = getattr(_scratch_local, "buffer", None)
    if buffer is None:
        buffer = np.empty(_TABLE_LEN, dtype=np.uint64)
        _scratch_local.buffer = buffer
    return buffer[:n]


def _fold_chunk(h: int, chunk: Buffer, mult: int) -> int:
    """Fold one chunk (<= table length) into ``h`` for multiplier ``mult``."""
    data = np.frombuffer(chunk, dtype=np.uint8)
    n = data.shape[0]
    if n == 0:
        return h
    scratch = _scratch(n)
    np.copyto(scratch, data, casting="unsafe")
    powers = _pow_table(mult)[_TABLE_LEN - n :]
    with np.errstate(over="ignore"):
        contrib = int(np.dot(scratch, powers))
    return (h * pow(mult, n, 1 << 64) + contrib) & _MASK64


class LinearHasher:
    """Incremental hasher for multiplier-based (djb2/sdbm) hashes."""

    __slots__ = ("mult", "value")

    def __init__(self, mult: int, init: int) -> None:
        self.mult = mult
        self.value = init

    def update(self, data: Buffer) -> "LinearHasher":
        view = memoryview(data)
        for start in range(0, len(view), _TABLE_LEN):
            self.value = _fold_chunk(self.value, view[start : start + _TABLE_LEN], self.mult)
        return self

    def digest(self) -> int:
        return self.value


class Djb2(LinearHasher):
    """Incremental djb2 (the paper's hash function)."""

    def __init__(self) -> None:
        super().__init__(DJB2_MULT, DJB2_INIT)


class Sdbm(LinearHasher):
    """Incremental sdbm."""

    def __init__(self) -> None:
        super().__init__(SDBM_MULT, 0)


def djb2(data: Buffer) -> int:
    """One-shot djb2 over ``data`` (numpy fast path)."""
    return Djb2().update(data).digest()


def sdbm(data: Buffer) -> int:
    """One-shot sdbm over ``data``."""
    return Sdbm().update(data).digest()


def fnv1a(data: Buffer) -> int:
    """One-shot FNV-1a 64 (non-linear; pure Python, for small inputs)."""
    h = FNV1A_INIT
    for byte in bytes(data):
        h = ((h ^ byte) * FNV1A_PRIME) & _MASK64
    return h


def djb2_reference(data: Buffer) -> int:
    """Textbook djb2 loop; cross-checks the vectorised path in tests."""
    h = DJB2_INIT
    for byte in bytes(data):
        h = (h * DJB2_MULT + byte) & _MASK64
    return h


def sdbm_reference(data: Buffer) -> int:
    """Textbook sdbm loop (h = c + (h << 6) + (h << 16) - h)."""
    h = 0
    for byte in bytes(data):
        h = (byte + (h << 6) + (h << 16) - h) & _MASK64
    return h
