"""Secure-world scanning primitives and round results.

``scan_area`` is the core coroutine: it reads a span of kernel memory chunk
by chunk *at the simulated time each chunk is touched* and folds it into a
djb2 digest, charging the scanning core's calibrated per-byte cost.  The
race against a concurrently hiding attacker is therefore resolved by the
event timeline itself: a byte restored before its chunk is read hashes
clean; a byte still malicious when read produces a mismatch at the end of
the area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.hw.core import Core
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.secure.boot import AuthorizedHashStore
from repro.secure.hashes import Djb2
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.sim.process import cpu


@dataclass
class ScanResult:
    """Outcome of scanning one area once."""

    offset: int
    length: int
    core_index: int
    start_time: float
    end_time: float
    digest: int
    expected: int
    #: area index within the engine's partition (-1 for ad-hoc scans).
    area_index: int = -1
    #: running round counter assigned by the engine.
    round_index: int = -1
    extra: dict = field(default_factory=dict)

    @property
    def match(self) -> bool:
        return self.digest == self.expected

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def scan_area(
    image: KernelImage,
    core: Core,
    offset: int,
    length: int,
    chunk_size: int = 4096,
    snapshot_buffer: Optional[SecureSnapshotBuffer] = None,
) -> Generator[Any, Any, int]:
    """Hash ``image[offset:offset+length]`` from the secure world.

    Yields cpu requests sized by the core's Table-I per-byte cost; returns
    the djb2 digest.  When ``snapshot_buffer`` is given the slower
    snapshot-then-hash variant is used instead of direct hashing.
    """
    if snapshot_buffer is not None:
        digest, _copy = yield from snapshot_buffer.take_and_hash(
            core, image.addr_of(offset), length, chunk_size
        )
        return digest
    hasher = Djb2()
    scanned = 0
    while scanned < length:
        step = min(chunk_size, length - scanned)
        # The chunk's bytes are observed at the *start* of its time window
        # (the load precedes the arithmetic).
        chunk = image.view(offset + scanned, step, World.SECURE)
        hasher.update(chunk)
        yield cpu(step * core.perf.hash_byte())
        scanned += step
    return hasher.digest()


def check_area(
    image: KernelImage,
    store: AuthorizedHashStore,
    core: Core,
    offset: int,
    length: int,
    chunk_size: int = 4096,
    snapshot_buffer: Optional[SecureSnapshotBuffer] = None,
) -> Generator[Any, Any, ScanResult]:
    """Scan one area and compare against its authorized digest."""
    start = core.sim.now
    digest = yield from scan_area(
        image, core, offset, length, chunk_size, snapshot_buffer
    )
    expected = store.expected_digest((offset, length))
    return ScanResult(
        offset=offset,
        length=length,
        core_index=core.index,
        start_time=start,
        end_time=core.sim.now,
        digest=digest,
        expected=expected,
    )
