"""Secure-world scanning primitives and round results.

``scan_area`` is the core coroutine: it reads a span of kernel memory chunk
by chunk *at the simulated time each chunk is touched* and folds it into a
djb2 digest, charging the scanning core's calibrated per-byte cost.  The
race against a concurrently hiding attacker is therefore resolved by the
event timeline itself: a byte restored before its chunk is read hashes
clean; a byte still malicious when read produces a mismatch at the end of
the area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.hw.core import Core
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.secure.boot import AuthorizedHashStore
from repro.secure.hashes import Djb2
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.sim.process import cpu, cpu_batch


@dataclass
class ScanResult:
    """Outcome of scanning one area once."""

    offset: int
    length: int
    core_index: int
    start_time: float
    end_time: float
    digest: int
    expected: int
    #: area index within the engine's partition (-1 for ad-hoc scans).
    area_index: int = -1
    #: running round counter assigned by the engine.
    round_index: int = -1
    #: True when the round survived a suspected platform fault by falling
    #: back (e.g. a snapshot mismatch that a direct re-scan cleared).
    degraded: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def match(self) -> bool:
        return self.digest == self.expected

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def scan_area(
    image: KernelImage,
    core: Core,
    offset: int,
    length: int,
    chunk_size: int = 4096,
    snapshot_buffer: Optional[SecureSnapshotBuffer] = None,
    coalesce: bool = False,
) -> Generator[Any, Any, int]:
    """Hash ``image[offset:offset+length]`` from the secure world.

    Yields cpu requests sized by the core's Table-I per-byte cost; returns
    the djb2 digest.  When ``snapshot_buffer`` is given the slower
    snapshot-then-hash variant is used instead of direct hashing.

    ``coalesce=True`` asserts that *nothing can interleave with this scan*
    (NS interrupts blocked, no armed attacker or prober): all chunks are
    hashed up front and a single batch request stands in for the per-chunk
    events.  The per-chunk cost draws, their order, and the resulting chunk
    completion times are replayed exactly, so the timeline and every digest
    are bit-identical to the unfused scan — the only difference is heap
    traffic.  A write to the image while the span is in flight falsifies
    the caller's no-interleaving claim and raises ``SimulationError``.
    """
    if snapshot_buffer is not None:
        digest, _copy = yield from snapshot_buffer.take_and_hash(
            core, image.addr_of(offset), length, chunk_size
        )
        return digest
    hasher = Djb2()
    if coalesce and length > chunk_size:
        hash_byte = core.perf.hash_byte
        view = image.view
        update = hasher.update
        writes_before = image.write_count
        # Replay the unfused timeline: iterative accumulation keeps every
        # intermediate float bit-identical to `now + d0 + d1 + ...`.
        time = core.sim.now
        chunk_times = []
        append = chunk_times.append
        scanned = 0
        while scanned < length:
            step = min(chunk_size, length - scanned)
            update(view(offset + scanned, step, World.SECURE))
            time = time + step * hash_byte()
            append(time)
            scanned += step
        yield cpu_batch(chunk_times)
        if image.write_count != writes_before:
            raise SimulationError(
                "memory write interleaved a coalesced scan: "
                f"image[{offset:#x}:+{length:#x}] was fused on the claim "
                "that no writer could run"
            )
        return hasher.digest()
    scanned = 0
    while scanned < length:
        step = min(chunk_size, length - scanned)
        # The chunk's bytes are observed at the *start* of its time window
        # (the load precedes the arithmetic).
        chunk = image.view(offset + scanned, step, World.SECURE)
        hasher.update(chunk)
        yield cpu(step * core.perf.hash_byte())
        scanned += step
    return hasher.digest()


def check_area(
    image: KernelImage,
    store: AuthorizedHashStore,
    core: Core,
    offset: int,
    length: int,
    chunk_size: int = 4096,
    snapshot_buffer: Optional[SecureSnapshotBuffer] = None,
    coalesce: bool = False,
) -> Generator[Any, Any, ScanResult]:
    """Scan one area and compare against its authorized digest."""
    start = core.sim.now
    digest = yield from scan_area(
        image, core, offset, length, chunk_size, snapshot_buffer, coalesce
    )
    expected = store.expected_digest((offset, length))
    return ScanResult(
        offset=offset,
        length=length,
        core_index=core.index,
        start_time=start,
        end_time=core.sim.now,
        digest=digest,
        expected=expected,
    )
