"""Kernel area partitioning for the integrity checking module.

SATIN divides the kernel into areas along System.map section boundaries —
each section belongs to exactly one area (Section VI-A2) — every area small
enough that one round finishes before a TZ-Evader can notice the secure
entry and hide (the bound from :func:`repro.core.race.max_safe_area_size`).

Three partition modes are provided:

* ``sections`` — one area per System.map section (the paper's 19 areas);
  a section larger than the bound is split (never happens on the paper's
  map, but the partitioner is defensive).
* ``packed`` — consecutive sections greedily merged up to the bound
  (fewer, larger rounds; an ablation).
* ``whole`` — the entire kernel as a single area (the baseline
  whole-kernel introspection that TZ-Evader defeats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import IntrospectionError
from repro.kernel.systemmap import SystemMap


@dataclass(frozen=True)
class Area:
    """One introspection area: a contiguous span of the kernel image."""

    index: int
    offset: int
    length: int
    #: names of the System.map sections the area covers.
    section_names: Tuple[str, ...]

    @property
    def end(self) -> int:
        return self.offset + self.length

    @property
    def span(self) -> Tuple[int, int]:
        return (self.offset, self.length)

    def contains(self, offset: int) -> bool:
        return self.offset <= offset < self.end


def _areas_from_spans(spans: List[Tuple[int, int, Tuple[str, ...]]]) -> List[Area]:
    return [
        Area(index=i, offset=offset, length=length, section_names=names)
        for i, (offset, length, names) in enumerate(spans)
    ]


def partition_sections(
    system_map: SystemMap, max_area_size: Optional[int] = None
) -> List[Area]:
    """One area per section, splitting any section above the bound."""
    spans: List[Tuple[int, int, Tuple[str, ...]]] = []
    for section in system_map:
        if max_area_size is None or section.size <= max_area_size:
            spans.append((section.offset, section.size, (section.name,)))
            continue
        pieces = -(-section.size // max_area_size)  # ceil division
        base_len = -(-section.size // pieces)
        start = section.offset
        remaining = section.size
        piece = 0
        while remaining > 0:
            length = min(base_len, remaining)
            spans.append((start, length, (f"{section.name}[{piece}]",)))
            start += length
            remaining -= length
            piece += 1
    return _areas_from_spans(spans)


def partition_packed(system_map: SystemMap, max_area_size: int) -> List[Area]:
    """Greedily merge consecutive sections up to ``max_area_size``."""
    if max_area_size <= 0:
        raise IntrospectionError("max_area_size must be positive")
    spans: List[Tuple[int, int, Tuple[str, ...]]] = []
    group_offset = None
    group_length = 0
    group_names: List[str] = []
    for section in system_map:
        if section.size > max_area_size:
            # Flush the open group, then split the oversized section.
            if group_offset is not None:
                spans.append((group_offset, group_length, tuple(group_names)))
                group_offset, group_length, group_names = None, 0, []
            for area in partition_sections_single(section, max_area_size):
                spans.append(area)
            continue
        if group_offset is None:
            group_offset, group_length, group_names = section.offset, section.size, [section.name]
        elif group_length + section.size <= max_area_size:
            group_length += section.size
            group_names.append(section.name)
        else:
            spans.append((group_offset, group_length, tuple(group_names)))
            group_offset, group_length, group_names = section.offset, section.size, [section.name]
    if group_offset is not None:
        spans.append((group_offset, group_length, tuple(group_names)))
    return _areas_from_spans(spans)


def partition_sections_single(section, max_area_size: int):
    """Split one oversized section into bound-sized spans (helper)."""
    out = []
    start = section.offset
    remaining = section.size
    piece = 0
    while remaining > 0:
        length = min(max_area_size, remaining)
        out.append((start, length, (f"{section.name}[{piece}]",)))
        start += length
        remaining -= length
        piece += 1
    return out


def partition_whole(system_map: SystemMap) -> List[Area]:
    """The whole kernel as one area (baseline whole-kernel scanning)."""
    names = tuple(section.name for section in system_map)
    return _areas_from_spans([(0, system_map.total_size, names)])


def build_partition(
    system_map: SystemMap,
    mode: str = "sections",
    max_area_size: Optional[int] = None,
) -> List[Area]:
    """Partition dispatcher keyed by :class:`SatinConfig` ``partition_mode``."""
    if mode == "sections":
        return partition_sections(system_map, max_area_size)
    if mode == "packed":
        if max_area_size is None:
            raise IntrospectionError("packed partitioning needs max_area_size")
        return partition_packed(system_map, max_area_size)
    if mode == "whole":
        return partition_whole(system_map)
    raise IntrospectionError(f"unknown partition mode {mode!r}")


def validate_partition(areas: List[Area], kernel_size: int) -> None:
    """Check the partition covers the kernel exactly once, in order."""
    if not areas:
        raise IntrospectionError("empty partition")
    cursor = 0
    for area in areas:
        if area.offset != cursor:
            raise IntrospectionError(
                f"partition gap/overlap at offset {cursor:#x} (area {area.index})"
            )
        if area.length <= 0:
            raise IntrospectionError(f"area {area.index} has non-positive length")
        cursor = area.end
    if cursor != kernel_size:
        raise IntrospectionError(
            f"partition covers {cursor} bytes of a {kernel_size}-byte kernel"
        )


def area_containing(areas: List[Area], offset: int) -> Area:
    """The area containing image-relative ``offset``."""
    lo, hi = 0, len(areas) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        area = areas[mid]
        if offset < area.offset:
            hi = mid - 1
        elif offset >= area.end:
            lo = mid + 1
        else:
            return area
    raise IntrospectionError(f"offset {offset:#x} is outside every area")
